"""Generic OPTICS (Ankerst et al., SIGMOD'99) over abstract items.

OPTICS computes a *reachability ordering*: items are visited in a
density-driven order, each annotated with the reachability distance at
which it joins its neighbourhood.  Clusters at any density level fall out
of the ordering by thresholding the reachability plot — the
``extract_dbscan`` routine below, which yields DBSCAN-equivalent clusters
for a given eps'.

Like the generic DBSCAN in :mod:`repro.cluster`, the algorithm is
distance-function-agnostic: callers supply a symmetric pairwise distance.
The NEAT paper's related work uses OPTICS via Trajectory-OPTICS (Nanni &
Pedreschi [24]); see :mod:`repro.optics.trajectory_optics`.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Sequence

#: Reachability value of items never reachable within max_eps.
UNDEFINED = math.inf

#: A symmetric pairwise distance over item indices.
DistanceFn = Callable[[int, int], float]


@dataclass(frozen=True, slots=True)
class OpticsPoint:
    """One entry of the OPTICS ordering.

    Attributes:
        index: The item's index in the input.
        reachability: Reachability distance when the item was reached
            (:data:`UNDEFINED` for each density peak's first item).
        core_distance: The item's core distance (:data:`UNDEFINED` when
            it is not a core item at ``max_eps``).
    """

    index: int
    reachability: float
    core_distance: float


def optics_ordering(
    item_count: int,
    distance: DistanceFn,
    min_pts: int,
    max_eps: float = math.inf,
) -> list[OpticsPoint]:
    """Compute the OPTICS reachability ordering.

    Args:
        item_count: Number of items, addressed ``0..item_count-1``.
        distance: Symmetric pairwise distance.
        min_pts: Core-item neighbourhood size (the item itself included).
        max_eps: Neighbourhood cut-off; ``inf`` reproduces exact OPTICS
            at the cost of all-pairs distances.

    Returns:
        One :class:`OpticsPoint` per item, in visit order.
    """
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    ordering: list[OpticsPoint] = []
    processed = [False] * item_count
    reachability = [UNDEFINED] * item_count

    def neighbors_of(index: int) -> list[tuple[float, int]]:
        found = []
        for other in range(item_count):
            if other == index:
                continue
            d = distance(index, other)
            if d <= max_eps:
                found.append((d, other))
        found.sort()
        return found

    def core_distance(neighbor_distances: list[tuple[float, int]]) -> float:
        # min_pts includes the item itself, so min_pts - 1 neighbours.
        needed = min_pts - 1
        if needed == 0:
            return 0.0
        if len(neighbor_distances) < needed:
            return UNDEFINED
        return neighbor_distances[needed - 1][0]

    for start in range(item_count):
        if processed[start]:
            continue
        start_neighbors = neighbors_of(start)
        start_core = core_distance(start_neighbors)
        processed[start] = True
        ordering.append(OpticsPoint(start, UNDEFINED, start_core))
        if start_core is UNDEFINED or math.isinf(start_core):
            continue
        # Seed list keyed by current reachability; lazy-delete heap.
        heap: list[tuple[float, int]] = []
        _update_seeds(start_neighbors, start_core, reachability, processed, heap)
        while heap:
            r, item = heapq.heappop(heap)
            if processed[item] or r > reachability[item]:
                continue
            processed[item] = True
            item_neighbors = neighbors_of(item)
            item_core = core_distance(item_neighbors)
            ordering.append(OpticsPoint(item, reachability[item], item_core))
            if not math.isinf(item_core):
                _update_seeds(
                    item_neighbors, item_core, reachability, processed, heap
                )
    return ordering


def _update_seeds(
    neighbor_distances: list[tuple[float, int]],
    core: float,
    reachability: list[float],
    processed: list[bool],
    heap: list[tuple[float, int]],
) -> None:
    """Relax reachability of unprocessed neighbours through a core item."""
    for d, neighbor in neighbor_distances:
        if processed[neighbor]:
            continue
        new_reach = max(core, d)
        if new_reach < reachability[neighbor]:
            reachability[neighbor] = new_reach
            heapq.heappush(heap, (new_reach, neighbor))


def extract_dbscan(
    ordering: Sequence[OpticsPoint], eps: float
) -> list[int]:
    """DBSCAN-equivalent labels from an OPTICS ordering at ``eps``.

    Returns one label per *item index* (not per ordering position);
    -1 marks noise.  Standard extraction: walking the ordering, an item
    with reachability > eps starts a new cluster if it is core at eps,
    else is noise.
    """
    labels = [-1] * len(ordering)
    cluster_id = -1
    for point in ordering:
        if point.reachability > eps:
            if point.core_distance <= eps:
                cluster_id += 1
                labels[point.index] = cluster_id
        else:
            labels[point.index] = cluster_id if cluster_id >= 0 else -1
    return labels
