"""Shortest-path algorithms on road networks.

Provides plain Dijkstra (the paper's reference algorithm for network
expansion), an A* variant using the Euclidean lower bound as an admissible
heuristic, and a caching :class:`ShortestPathEngine` that counts expansions
so the ELB experiments (Figure 7) can report exactly how many shortest-path
computations a clustering run performed.  The engine answers uncached
point queries through either this module's dict-of-lists walkers
(``backend="dict"``) or the flat-array bidirectional Dijkstra of
:mod:`~repro.roadnet.csr` (``backend="csr"``, the default), and can batch
uncached searches across worker processes (:meth:`ShortestPathEngine.prefetch`).

Directed searches respect one-way segments (used by the trip simulator);
undirected searches ignore direction (used by Phase 3's network proximity,
per Section III-C3 of the paper: "we consider undirected graphs").
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..errors import NoPathError, UnknownNodeError
from .network import RoadNetwork

#: Sentinel distance for unreachable nodes.
INFINITY = math.inf


@dataclass(frozen=True, slots=True)
class Route:
    """A network path: node sequence plus the segments joining them.

    Attributes:
        nodes: Junction ids ``n_0 .. n_k`` along the path.
        sids: Segment ids ``e_0 .. e_{k-1}``; ``sids[i]`` joins
            ``nodes[i]`` and ``nodes[i+1]``.
        length: Total path length in metres.
    """

    nodes: tuple[int, ...]
    sids: tuple[int, ...]
    length: float

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.sids) + 1:
            raise ValueError(
                f"route shape mismatch: {len(self.nodes)} nodes, "
                f"{len(self.sids)} segments"
            )

    @property
    def source(self) -> int:
        """First junction of the route."""
        return self.nodes[0]

    @property
    def target(self) -> int:
        """Last junction of the route."""
        return self.nodes[-1]

    def reversed(self) -> "Route":
        """The same route traversed in the opposite direction."""
        return Route(tuple(reversed(self.nodes)), tuple(reversed(self.sids)), self.length)


def _neighbor_fn(
    network: RoadNetwork, directed: bool
) -> Callable[[int], Iterable[tuple[int, int, float]]]:
    """Adapter returning ``(neighbor, sid, length)`` triples for a node."""
    if directed:
        def neighbors(node_id: int) -> Iterable[tuple[int, int, float]]:
            return [
                (edge.head, edge.sid, edge.length)
                for edge in network.out_edges(node_id)
            ]
        return neighbors
    return network.undirected_neighbors


def dijkstra_single_source(
    network: RoadNetwork,
    source: int,
    directed: bool = False,
    max_distance: float = INFINITY,
) -> dict[int, float]:
    """Distances from ``source`` to every node within ``max_distance``.

    Args:
        network: The road network.
        source: Start junction id.
        directed: Respect one-way segments when ``True``.
        max_distance: Stop expanding once the frontier exceeds this bound.

    Returns:
        Mapping of reachable node id to shortest-path distance in metres.
    """
    if not network.has_node(source):
        raise UnknownNodeError(source)
    neighbors = _neighbor_fn(network, directed)
    # ``settled`` doubles as the result: only settled nodes are reported,
    # and a push is attempted only when it improves the tentative label
    # *and* stays within the bound, so the heap never carries entries
    # already known unreachable-within-bound.
    settled: dict[int, float] = {}
    seen: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        if d > max_distance:
            break
        settled[node] = d
        for neighbor, _sid, length in neighbors(node):
            nd = d + length
            if nd <= max_distance and nd < seen.get(neighbor, INFINITY):
                seen[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return settled


def dijkstra_distance(
    network: RoadNetwork,
    source: int,
    target: int,
    directed: bool = False,
    cutoff: float = INFINITY,
) -> float:
    """Shortest-path distance between two junctions.

    Returns :data:`INFINITY` when no path exists (or none within
    ``cutoff``).
    """
    return dijkstra_distance_counted(network, source, target, directed, cutoff)[0]


def dijkstra_distance_counted(
    network: RoadNetwork,
    source: int,
    target: int,
    directed: bool = False,
    cutoff: float = INFINITY,
) -> tuple[float, int]:
    """Like :func:`dijkstra_distance`, also reporting settled-node count.

    Args:
        cutoff: Give up once the frontier exceeds this bound and report
            the pair unreachable-within-bound.  Phase 3 region queries
            pass ``eps`` here so an ELB-surviving pair never settles the
            whole graph just to learn the distance exceeds the threshold.

    Returns:
        ``(distance, expansions)`` where ``expansions`` is the number of
        nodes the search settled — the per-search work unit the telemetry
        layer aggregates as ``roadnet.sp.nodes_expanded``.
    """
    if not network.has_node(source):
        raise UnknownNodeError(source)
    if not network.has_node(target):
        raise UnknownNodeError(target)
    if source == target:
        return 0.0, 0
    neighbors = _neighbor_fn(network, directed)
    dist: dict[int, float] = {source: 0.0}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    expansions = 0
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        if node == target:
            return d, expansions
        if d > cutoff:
            break
        done.add(node)
        expansions += 1
        for neighbor, _sid, length in neighbors(node):
            nd = d + length
            if nd <= cutoff and nd < dist.get(neighbor, INFINITY):
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return INFINITY, expansions


def dijkstra_multi_target(
    network: RoadNetwork,
    source: int,
    targets: Iterable[int],
    directed: bool = False,
    cutoff: float = INFINITY,
) -> tuple[dict[int, float], int]:
    """One bounded single-source search answering a whole target set.

    Dict-backend twin of
    :meth:`~repro.roadnet.csr.CSRGraph.multi_target_distances`: settles
    outward from ``source`` until every requested target is settled or
    the frontier exceeds ``cutoff``.  Distances are plain Dijkstra sums,
    bit-identical to :func:`dijkstra_distance_counted` per pair.

    Returns:
        ``(found, settled_nodes)``; targets absent from ``found`` are
        proven farther than ``cutoff`` (or unreachable).
    """
    if not network.has_node(source):
        raise UnknownNodeError(source)
    found: dict[int, float] = {}
    remaining: set[int] = set()
    for target in targets:
        if not network.has_node(target):
            raise UnknownNodeError(target)
        if target == source:
            found[target] = 0.0
        else:
            remaining.add(target)
    if not remaining:
        return found, 0
    neighbors = _neighbor_fn(network, directed)
    dist: dict[int, float] = {source: 0.0}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    expansions = 0
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        expansions += 1
        if node in remaining:
            remaining.discard(node)
            found[node] = d
            if not remaining:
                break
        for neighbor, _sid, length in neighbors(node):
            nd = d + length
            if nd <= cutoff and nd < dist.get(neighbor, INFINITY):
                dist[neighbor] = nd
                heapq.heappush(heap, (nd, neighbor))
    return found, expansions


def plan_source_groups(
    pairs: Iterable[tuple[int, int]],
) -> list[tuple[int, tuple[int, ...]]]:
    """Group endpoint pairs into multi-target single-source searches.

    Greedy set cover over the pair graph: repeatedly pick the node with
    the most uncovered partners as the next search source, emit one
    ``(source, targets)`` group answering every uncovered pair incident
    to it, and remove those pairs.  Every input pair lands in exactly one
    group, so ``len(groups)`` searches answer all of them — at most
    ``O(distinct endpoints)`` searches instead of one per pair.

    Deterministic: ties break toward the highest node id, adjacency sets
    are iterated sorted, and the result depends only on the *set* of
    normalized pairs (callers should deduplicate first).
    """
    partners: dict[int, set[int]] = {}
    for a, b in pairs:
        if a == b:
            continue
        partners.setdefault(a, set()).add(b)
        partners.setdefault(b, set()).add(a)
    groups: list[tuple[int, tuple[int, ...]]] = []
    while partners:
        source = max(partners, key=lambda n: (len(partners[n]), n))
        targets = partners.pop(source)
        for target in targets:
            mates = partners.get(target)
            if mates is not None:
                mates.discard(source)
                if not mates:
                    del partners[target]
        groups.append((source, tuple(sorted(targets))))
    return groups


def shortest_route(
    network: RoadNetwork,
    source: int,
    target: int,
    directed: bool = True,
) -> Route:
    """The shortest route between two junctions, with path recovery.

    Uses A* with the Euclidean distance to the target as heuristic.  Since
    every segment's length is at least the straight chord between its
    junctions, the heuristic is admissible and the result optimal.

    Raises:
        NoPathError: when ``target`` is unreachable from ``source``.
    """
    if not network.has_node(source):
        raise UnknownNodeError(source)
    if not network.has_node(target):
        raise UnknownNodeError(target)
    if source == target:
        return Route((source,), (), 0.0)
    neighbors = _neighbor_fn(network, directed)
    target_point = network.node_point(target)

    def heuristic(node_id: int) -> float:
        return network.node_point(node_id).distance_to(target_point)

    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, tuple[int, int]] = {}  # node -> (previous node, sid)
    done: set[int] = set()
    heap: list[tuple[float, float, int]] = [(heuristic(source), 0.0, source)]
    while heap:
        _f, d, node = heapq.heappop(heap)
        if node in done:
            continue
        if node == target:
            return _recover_route(parent, source, target, d)
        done.add(node)
        for neighbor, sid, length in neighbors(node):
            nd = d + length
            if nd < dist.get(neighbor, INFINITY):
                dist[neighbor] = nd
                parent[neighbor] = (node, sid)
                heapq.heappush(heap, (nd + heuristic(neighbor), nd, neighbor))
    raise NoPathError(source, target)


def _recover_route(
    parent: dict[int, tuple[int, int]], source: int, target: int, length: float
) -> Route:
    """Rebuild a :class:`Route` from the A*/Dijkstra parent table."""
    nodes = [target]
    sids: list[int] = []
    node = target
    while node != source:
        node, sid = parent[node]
        nodes.append(node)
        sids.append(sid)
    nodes.reverse()
    sids.reverse()
    return Route(tuple(nodes), tuple(sids), length)


#: Engine search backends: legacy dict-of-lists vs flat-array CSR.
BACKENDS = ("dict", "csr")


@dataclass
class ShortestPathEngine:
    """A caching, instrumented shortest-path oracle for one network.

    Phase 3 of NEAT repeatedly asks for network distances between flow
    cluster endpoints.  This engine memoizes node-pair distances (symmetric
    in the undirected case) and counts how many actual searches ran, which
    is the quantity the ELB optimization of Figure 7 reduces.

    A long-lived engine is meant to be shared across runs (that is how
    :class:`~repro.core.pipeline.NEAT` amortizes Phase 3 work), so the
    counters are cumulative by default; call :meth:`reset_counters`
    between runs to report per-run Figure-7 numbers, or bind a
    per-run registry with :meth:`bind_metrics` and read the deltas there.

    Bounded queries: ``distance(..., cutoff=c)`` runs a bounded search
    that stops as soon as the frontier proves the pair farther than
    ``c`` apart, returning :data:`INFINITY`.  Such verdicts are cached in
    a *separate* bounded table keyed by the largest cutoff they hold for,
    so a later unbounded (or larger-cutoff) query recomputes correctly
    instead of inheriting a truncated answer.

    Attributes:
        network: The road network queried.
        directed: Whether searches respect one-way segments.
        computations: Number of searches actually executed (cache hits are
            free and not counted).
        oracle: Optional accelerated backend (e.g.
            :class:`~repro.roadnet.landmarks.LandmarkOracle`) — any object
            with a ``distance(source, target) -> float`` method.  Only
            valid for undirected engines; results must equal Dijkstra's.
        backend: ``"csr"`` (default) answers point queries with
            bidirectional Dijkstra over the network's flat-array
            :meth:`~repro.roadnet.network.RoadNetwork.csr` snapshot;
            ``"dict"`` keeps the legacy adjacency walk.  Both return the
            same distances (the bidirectional split can differ in the
            last ulp) and the same ``computations`` counts.
        cache_hits: Number of ``distance`` calls answered from the memo
            table (identity queries are not counted).
        nodes_expanded: Total nodes settled across all Dijkstra searches
            (0 for oracle-backed answers, which do not run a search).
        grouped_searches: Multi-target kernel runs executed by
            :meth:`prefetch_grouped` (each also counts once in
            ``computations``).
        warm_hits: Cache hits answered by entries loaded from a persisted
            distance cache (:meth:`absorb_cache` with ``mark_warm``) —
            the restart-warm-start quantity ``sp.cache.warm_hits`` tracks.
    """

    network: RoadNetwork
    directed: bool = False
    computations: int = 0
    oracle: object | None = None
    backend: str = "csr"
    cache_hits: int = 0
    nodes_expanded: int = 0
    grouped_searches: int = 0
    warm_hits: int = 0
    _cache: dict[tuple[int, int], float] = field(default_factory=dict, repr=False)
    # key -> largest cutoff the pair is proven to exceed.
    _bounded: dict[tuple[int, int], float] = field(default_factory=dict, repr=False)
    # Keys whose next lookup is the delivery of a prefetched computation;
    # consuming one is neither a cache hit nor a new computation, keeping
    # counters identical between lazy (serial) and prefetched (parallel)
    # execution.
    _prepaid: set[tuple[int, int]] = field(default_factory=set, repr=False)
    # Keys absorbed from a persisted cache; hits on them count warm_hits.
    _warm: set[tuple[int, int]] = field(default_factory=set, repr=False)
    # (network version, landmark count, LandmarkOracle) memo for the LLB
    # prune tier; rebuilt when the network mutates.
    _landmarks: tuple | None = field(default=None, repr=False, compare=False)
    _metric_computations: object | None = field(
        default=None, repr=False, compare=False
    )
    _metric_cache_hits: object | None = field(default=None, repr=False, compare=False)
    _metric_expanded: object | None = field(default=None, repr=False, compare=False)
    _metric_grouped: object | None = field(default=None, repr=False, compare=False)
    _metric_warm_hits: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.oracle is not None and self.directed:
            raise ValueError("accelerated oracles are undirected-only")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )

    # ------------------------------------------------------------------
    def _key(self, source: int, target: int) -> tuple[int, int]:
        if not self.directed and source > target:
            return (target, source)
        return (source, target)

    def _count_hit(self, key: tuple[int, int] | None = None) -> None:
        self.cache_hits += 1
        if self._metric_cache_hits is not None:
            self._metric_cache_hits.inc()
        if key is not None and key in self._warm:
            self.warm_hits += 1
            if self._metric_warm_hits is not None:
                self._metric_warm_hits.inc()

    def _count_search(self, expanded: int) -> None:
        self.computations += 1
        if self._metric_computations is not None:
            self._metric_computations.inc()
        self.nodes_expanded += expanded
        if self._metric_expanded is not None:
            self._metric_expanded.inc(expanded)

    def _search(self, source: int, target: int, limit: float) -> tuple[float, int]:
        """One uncached point query via the configured backend."""
        if self.backend == "csr":
            graph = self.network.csr(self.directed)
            return graph.bidirectional_distance_counted(source, target, limit)
        return dijkstra_distance_counted(
            self.network, source, target, directed=self.directed, cutoff=limit
        )

    def distance(
        self, source: int, target: int, cutoff: float | None = None
    ) -> float:
        """Memoized shortest-path distance between two junctions.

        Args:
            cutoff: Optional bound; when given, a result of
                :data:`INFINITY` only means "farther than ``cutoff``",
                and the bounded verdict is cached separately so later
                unbounded queries still compute the true distance.
        """
        if source == target:
            return 0.0
        key = self._key(source, target)
        cached = self._cache.get(key)
        if cached is not None:
            if key in self._prepaid:
                self._prepaid.discard(key)
            else:
                self._count_hit(key)
            return cached
        if cutoff is not None:
            bound = self._bounded.get(key)
            if bound is not None and bound >= cutoff:
                # Already proven farther than this cutoff: answered from
                # the bounded table, no search.
                if key in self._prepaid:
                    self._prepaid.discard(key)
                else:
                    self._count_hit(key)
                return INFINITY
        if self.oracle is not None:
            self._count_search(0)
            distance = self.oracle.distance(key[0], key[1])
            self._cache[key] = distance
            self._bounded.pop(key, None)
            return distance
        limit = INFINITY if cutoff is None else cutoff
        distance, expanded = self._search(key[0], key[1], limit)
        self._count_search(expanded)
        self._store(key, distance, cutoff)
        return distance

    def _store(
        self, key: tuple[int, int], distance: float, cutoff: float | None
    ) -> None:
        """File a fresh search result under exact or bounded caching."""
        if distance == INFINITY and cutoff is not None:
            if cutoff > self._bounded.get(key, 0.0):
                self._bounded[key] = cutoff
            return
        self._cache[key] = distance
        self._bounded.pop(key, None)

    # ------------------------------------------------------------------
    # Batch interface
    # ------------------------------------------------------------------
    def prefetch(
        self,
        pairs: Iterable[tuple[int, int]],
        cutoff: float | None = None,
        workers: int | None = 1,
    ) -> int:
        """Compute and cache every not-yet-known pair, possibly in parallel.

        Deduplicates ``pairs`` (after symmetric normalization), drops
        identities and pairs already answered by the exact or bounded
        cache, then runs the remaining searches — fanned out over a
        process pool when ``workers`` allows (see
        :func:`repro.parallel.map_chunked`).  Results and the
        ``computations``/``nodes_expanded`` counters merge back into this
        engine exactly as if :meth:`distance` had computed each pair
        lazily, and the next :meth:`distance` call per prefetched pair is
        counted as that computation's delivery rather than a cache hit —
        so Figure-7 accounting is identical between serial and parallel
        runs.

        Returns the number of searches executed.
        """
        needed: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for source, target in pairs:
            if source == target:
                continue
            key = self._key(source, target)
            if key in seen or key in self._cache:
                continue
            if cutoff is not None and self._bounded.get(key, -1.0) >= cutoff:
                continue
            seen.add(key)
            needed.append(key)
        if not needed:
            return 0
        limit = INFINITY if cutoff is None else cutoff
        if self.oracle is not None:
            results = [(self.oracle.distance(a, b), 0) for a, b in needed]
        else:
            results = self._batch_search(needed, limit, workers)
        for key, (value, expanded) in zip(needed, results):
            self._count_search(expanded)
            self._store(key, value, cutoff)
            self._prepaid.add(key)
        return len(needed)

    def prefetch_grouped(
        self,
        pairs: Iterable[tuple[int, int]],
        cutoff: float | None = None,
        workers: int | None = 1,
    ) -> int:
        """Warm the cache via batched multi-target single-source kernels.

        The tiered-oracle replacement for per-pair :meth:`prefetch`:
        after the same deduplication (symmetric normalization, identity
        and already-cached pairs dropped), the surviving pairs are
        grouped by :func:`plan_source_groups` and each group runs one
        eps-bounded single-source search with an early-exit target set —
        ``O(distinct endpoints)`` searches instead of one per pair.  Each
        kernel run counts once in ``computations`` (its settled nodes in
        ``nodes_expanded``), and delivery accounting matches
        :meth:`prefetch`: the next :meth:`distance` call per answered
        pair is the computation's delivery, not a cache hit — so counters
        are identical at any worker count and across backends.

        Returns the number of searches executed.
        """
        needed: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for source, target in pairs:
            if source == target:
                continue
            key = self._key(source, target)
            if key in seen or key in self._cache:
                continue
            if cutoff is not None and self._bounded.get(key, -1.0) >= cutoff:
                continue
            seen.add(key)
            needed.append(key)
        if not needed:
            return 0
        if self.oracle is not None:
            # The oracle answers point queries directly; grouping buys
            # nothing, so fall through to the per-pair path.
            for key in needed:
                self._count_search(0)
                self._cache[key] = self.oracle.distance(key[0], key[1])
                self._bounded.pop(key, None)
                self._prepaid.add(key)
            return len(needed)
        groups = plan_source_groups(needed)
        limit = INFINITY if cutoff is None else cutoff
        results = self._batch_group_search(groups, limit, workers)
        for (source, targets), (found, expanded) in zip(groups, results):
            self._count_search(expanded)
            self.grouped_searches += 1
            if self._metric_grouped is not None:
                self._metric_grouped.inc()
            for target in targets:
                key = self._key(source, target)
                self._store(key, found.get(target, INFINITY), cutoff)
                self._prepaid.add(key)
        return len(groups)

    def distance_many(
        self,
        pairs: Iterable[tuple[int, int]],
        cutoff: float | None = None,
        workers: int | None = 1,
    ) -> list[float]:
        """Distances for every pair, in order (batch of :meth:`distance`).

        Equivalent to ``[engine.distance(s, t, cutoff) for s, t in
        pairs]`` — identical values, cache state and counters — but the
        uncached searches run as one deduplicated batch, optionally
        across worker processes.
        """
        pair_list = list(pairs)
        self.prefetch(pair_list, cutoff=cutoff, workers=workers)
        return [self.distance(s, t, cutoff=cutoff) for s, t in pair_list]

    def _batch_search(
        self,
        keys: list[tuple[int, int]],
        limit: float,
        workers: int | None,
    ) -> list[tuple[float, int]]:
        """Run the searches for ``keys``, serially or across processes.

        The parallel CSR path is zero-copy: workers attach the shared
        snapshot registered with the persistent pool, and the pair list
        is shipped as one flat int64 batch segment with per-task
        (offset, length) descriptors.  The dict backend broadcasts the
        network once per pool start instead of pickling it per chunk.
        """
        from array import array
        from functools import partial

        from ..parallel import (
            csr_resource,
            effective_workers,
            map_chunked,
            map_flat,
            network_resource,
        )

        if effective_workers(workers, len(keys), MIN_PAIRS_PER_WORKER) <= 1:
            if self.backend == "csr":
                spec: tuple = ("csr", self.network.csr(self.directed))
            else:
                spec = ("dict", self.network, self.directed)
            return _compute_pairs(spec, keys, limit)
        if self.backend == "csr":
            flat = array("q", [node for pair in keys for node in pair])
            return map_flat(
                partial(_csr_pairs_kernel, limit),
                "q",
                flat,
                range(0, 2 * len(keys) + 1, 2),
                workers=workers,
                min_items_per_worker=MIN_PAIRS_PER_WORKER,
                resource=csr_resource(self.network, self.directed),
            )
        return map_chunked(
            partial(_dict_pairs_chunk, self.directed, limit),
            keys,
            workers=workers,
            min_items_per_worker=MIN_PAIRS_PER_WORKER,
            resource=network_resource(self.network),
        )

    def _batch_group_search(
        self,
        groups: list[tuple[int, tuple[int, ...]]],
        limit: float,
        workers: int | None,
    ) -> list[tuple[dict[int, float], int]]:
        """Run the grouped kernels for ``groups``, serially or in a pool.

        Parallel batches follow :meth:`_batch_search`'s zero-copy scheme;
        each group is flat-encoded as ``[source, n_targets, targets...]``
        (self-delimiting, so a worker walks exactly its span).
        """
        from array import array
        from functools import partial

        from ..parallel import (
            csr_resource,
            effective_workers,
            map_chunked,
            map_flat,
            network_resource,
        )

        if effective_workers(workers, len(groups), MIN_GROUPS_PER_WORKER) <= 1:
            if self.backend == "csr":
                spec: tuple = ("csr", self.network.csr(self.directed))
            else:
                spec = ("dict", self.network, self.directed)
            return _compute_groups(spec, groups, limit)
        if self.backend == "csr":
            flat = array("q")
            boundaries = [0]
            for source, targets in groups:
                flat.append(source)
                flat.append(len(targets))
                flat.extend(targets)
                boundaries.append(len(flat))
            return map_flat(
                partial(_csr_groups_kernel, limit),
                "q",
                flat,
                boundaries,
                workers=workers,
                min_items_per_worker=MIN_GROUPS_PER_WORKER,
                resource=csr_resource(self.network, self.directed),
            )
        return map_chunked(
            partial(_dict_groups_chunk, self.directed, limit),
            groups,
            workers=workers,
            min_items_per_worker=MIN_GROUPS_PER_WORKER,
            resource=network_resource(self.network),
        )

    # ------------------------------------------------------------------
    # Landmark lower bounds (the LLB prune tier)
    # ------------------------------------------------------------------
    def landmark_bounds(self, count: int = 8):
        """A memoized :class:`~repro.roadnet.landmarks.LandmarkOracle`.

        Built lazily on first use and rebuilt when the network mutates
        (the memo is keyed on ``network.version``) or when a larger
        ``count`` is requested.  The landmark sweeps run outside this
        engine's counters — lower bounds are free at query time, which is
        what makes them a prune *tier* rather than a search.

        Raises:
            ValueError: on a directed engine (landmark tables are
                undirected sweeps, Phase 3's setting).
        """
        if self.directed:
            raise ValueError("landmark bounds are undirected-only")
        version = self.network.version
        memo = self._landmarks
        if memo is not None and memo[0] == version and memo[1] >= count:
            return memo[2]
        from .landmarks import LandmarkOracle

        oracle = LandmarkOracle(self.network, landmark_count=count)
        self._landmarks = (version, count, oracle)
        return oracle

    # ------------------------------------------------------------------
    # Persistent-cache interchange (repro.persist.distcache)
    # ------------------------------------------------------------------
    def export_cache(
        self,
    ) -> tuple[dict[tuple[int, int], float], dict[tuple[int, int], float]]:
        """Copies of the exact and bounded memo tables, for persistence."""
        return dict(self._cache), dict(self._bounded)

    def absorb_cache(
        self,
        exact: dict[tuple[int, int], float],
        bounded: dict[tuple[int, int], float],
        mark_warm: bool = True,
    ) -> int:
        """Merge previously exported memo tables into this engine.

        Existing entries win (they were computed against this very
        network instance); absorbed keys are normalized and, with
        ``mark_warm``, tracked so hits on them count ``warm_hits``.

        Returns the number of entries absorbed.
        """
        added = 0
        for (source, target), value in exact.items():
            key = self._key(source, target)
            if key in self._cache:
                continue
            self._cache[key] = value
            self._bounded.pop(key, None)
            added += 1
            if mark_warm:
                self._warm.add(key)
        for (source, target), bound in bounded.items():
            key = self._key(source, target)
            if key in self._cache:
                continue
            if bound > self._bounded.get(key, 0.0):
                self._bounded[key] = bound
                added += 1
                if mark_warm:
                    self._warm.add(key)
        return added

    def bind_metrics(self, registry) -> None:
        """Mirror this engine's counters into ``registry`` from now on.

        Args:
            registry: A :class:`~repro.obs.metrics.MetricsRegistry`; the
                engine increments its ``roadnet.sp.computations``,
                ``roadnet.sp.cache_hits`` and ``roadnet.sp.nodes_expanded``
                counters alongside the plain attributes.  Binding a fresh
                per-run registry therefore yields per-run deltas even on a
                warm shared engine.  Pass ``None`` to unbind.
        """
        if registry is None:
            self._metric_computations = None
            self._metric_cache_hits = None
            self._metric_expanded = None
            self._metric_grouped = None
            self._metric_warm_hits = None
            return
        self._metric_computations = registry.counter(
            "roadnet.sp.computations", "Shortest-path searches actually executed"
        )
        self._metric_cache_hits = registry.counter(
            "roadnet.sp.cache_hits", "Distance queries answered from the memo table"
        )
        self._metric_expanded = registry.counter(
            "roadnet.sp.nodes_expanded", "Nodes settled across all Dijkstra searches"
        )
        self._metric_grouped = registry.counter(
            "roadnet.sp.grouped_searches",
            "Multi-target single-source kernels run by the tiered oracle",
        )
        self._metric_warm_hits = registry.counter(
            "sp.cache.warm_hits",
            "Distance queries answered by entries from a persisted cache",
        )

    def reset_counters(self) -> None:
        """Zero every counter (cache contents are kept).

        Call between back-to-back runs sharing one engine so each run
        reports its own Figure-7 numbers rather than cumulative totals.
        """
        self.computations = 0
        self.cache_hits = 0
        self.nodes_expanded = 0
        self.grouped_searches = 0
        self.warm_hits = 0

    def clear(self) -> None:
        """Drop the memo tables (exact and bounded) and zero counters."""
        self._cache.clear()
        self._bounded.clear()
        self._prepaid.clear()
        self._warm.clear()
        self.reset_counters()


#: Below this many uncached pairs per worker a batch runs serially —
#: pool startup would otherwise dominate the Dijkstra work.
MIN_PAIRS_PER_WORKER = 8

#: Grouped kernels do more work each, so the pool amortizes sooner.
MIN_GROUPS_PER_WORKER = 4


def _compute_pairs(
    spec: tuple, pairs: list[tuple[int, int]], cutoff: float = INFINITY
) -> list[tuple[float, int]]:
    """Worker-side batch: ``(distance, expansions)`` per pair, in order.

    ``spec`` selects the backend payload shipped to the process:
    ``("csr", CSRGraph)`` or ``("dict", RoadNetwork, directed)``.  Module
    level so it pickles for :class:`~concurrent.futures.ProcessPoolExecutor`.
    """
    if spec[0] == "csr":
        return spec[1].distance_batch(pairs, cutoff=cutoff, bidirectional=True)
    _kind, network, directed = spec
    return [
        dijkstra_distance_counted(network, a, b, directed=directed, cutoff=cutoff)
        for a, b in pairs
    ]


def _compute_groups(
    spec: tuple,
    groups: list[tuple[int, tuple[int, ...]]],
    cutoff: float = INFINITY,
) -> list[tuple[dict[int, float], int]]:
    """Worker-side batch of grouped kernels: ``(found, settled)`` per group.

    Same backend spec as :func:`_compute_pairs`; module level so it
    pickles for :class:`~concurrent.futures.ProcessPoolExecutor`.
    """
    if spec[0] == "csr":
        graph = spec[1]
        return [
            graph.multi_target_distances(source, targets, cutoff)
            for source, targets in groups
        ]
    _kind, network, directed = spec
    return [
        dijkstra_multi_target(
            network, source, targets, directed=directed, cutoff=cutoff
        )
        for source, targets in groups
    ]


def _csr_pairs_kernel(
    cutoff: float, graph, view, lo: int, hi: int
) -> list[tuple[float, int]]:
    """Span kernel over a flat pair batch against a shared CSR snapshot.

    ``view[lo:hi]`` holds ``(source, target)`` int64 slots back-to-back
    (stride 2).  ``graph`` is the worker's zero-copy attached snapshot —
    the searches themselves are identical to :func:`_compute_pairs`.
    """
    search = graph.bidirectional_distance_counted
    return [
        search(view[i], view[i + 1], cutoff) for i in range(lo, hi, 2)
    ]


def _csr_groups_kernel(
    cutoff: float, graph, view, lo: int, hi: int
) -> list[tuple[dict[int, float], int]]:
    """Span kernel over a flat grouped-search batch.

    Each group is self-delimiting: ``[source, n_targets, targets...]``.
    The kernel walks its ``[lo, hi)`` element range and runs one bounded
    multi-target search per group, exactly as :func:`_compute_groups`.
    """
    results = []
    i = lo
    while i < hi:
        source = view[i]
        n_targets = view[i + 1]
        targets = tuple(view[i + 2:i + 2 + n_targets])
        i += 2 + n_targets
        results.append(graph.multi_target_distances(source, targets, cutoff))
    return results


def _dict_pairs_chunk(
    directed: bool,
    cutoff: float,
    network,
    pairs: list[tuple[int, int]],
) -> list[tuple[float, int]]:
    """Chunk kernel for the dict backend over a broadcast network."""
    return [
        dijkstra_distance_counted(network, a, b, directed=directed, cutoff=cutoff)
        for a, b in pairs
    ]


def _dict_groups_chunk(
    directed: bool,
    cutoff: float,
    network,
    groups: list[tuple[int, tuple[int, ...]]],
) -> list[tuple[dict[int, float], int]]:
    """Grouped chunk kernel for the dict backend over a broadcast network."""
    return [
        dijkstra_multi_target(
            network, source, targets, directed=directed, cutoff=cutoff
        )
        for source, targets in groups
    ]
