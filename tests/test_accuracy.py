"""Tests for the ground-truth accuracy metrics."""

from __future__ import annotations

import pytest

from repro.analysis.accuracy import (
    co_clustering_agreement,
    flow_purity,
    segment_accuracy,
    true_segment_usage,
)
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT

from conftest import trajectory_through


class TestTrueSegmentUsage:
    def test_counts_distinct_trajectories(self, line3):
        trs = [
            trajectory_through(line3, 0, [0, 1]),
            trajectory_through(line3, 1, [0]),
        ]
        usage = true_segment_usage(trs)
        assert usage == {0: 2, 1: 1}

    def test_repeat_visits_count_once(self, paper_example):
        usage = true_segment_usage(paper_example.trajectories)
        # T3 visits s1 twice but counts once.
        assert usage[paper_example.s1] == 3


class TestSegmentAccuracy:
    def test_perfect_on_single_corridor(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(5)]
        result = NEAT(line3, NEATConfig(min_card=2)).run_flow(trs)
        accuracy = segment_accuracy(result, trs)
        assert accuracy.recall == pytest.approx(1.0)
        assert accuracy.precision == pytest.approx(1.0)
        assert accuracy.f1 == pytest.approx(1.0)

    def test_busy_threshold_defaults_to_min_card(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(5)]
        result = NEAT(line3, NEATConfig(min_card=3)).run_flow(trs)
        accuracy = segment_accuracy(result, trs)
        assert accuracy.busy_threshold == 3

    def test_missing_busy_segments_lower_recall(self, star4):
        # Two equally busy corridors; minCard filters one flow away.
        trs = [trajectory_through(star4, i, [0, 1]) for i in range(4)]
        trs += [trajectory_through(star4, 10 + i, [2, 3]) for i in range(2)]
        result = NEAT(star4, NEATConfig(min_card=4)).run_flow(trs)
        accuracy = segment_accuracy(result, trs, busy_threshold=2)
        assert accuracy.recall == pytest.approx(0.5)
        assert accuracy.precision == pytest.approx(1.0)

    def test_high_accuracy_on_simulated_workload(self, small_workload):
        """The paper's 'highly accurate' claim, quantified."""
        network, dataset = small_workload
        result = NEAT(network, NEATConfig(eps=500.0)).run_flow(dataset)
        accuracy = segment_accuracy(result, list(dataset))
        assert accuracy.f1 > 0.7


class TestFlowPurity:
    def test_pure_corridor(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(4)]
        result = NEAT(line3, NEATConfig(min_card=0)).run_flow(trs)
        assert flow_purity(result) == pytest.approx(1.0)

    def test_empty_result(self, line3):
        result = NEAT(line3, NEATConfig(min_card=0)).run_flow(
            [trajectory_through(line3, 0, [0])]
        )
        assert 0.0 <= flow_purity(result) <= 1.0

    def test_stitched_flow_less_pure(self, line3):
        # Segment 1 carries one through-trajectory plus local-only traffic
        # on segments 0 and 2: the flow stitches them; purity < 1.
        trs = [trajectory_through(line3, 0, [0, 1, 2])]
        trs += [trajectory_through(line3, 10 + i, [0]) for i in range(3)]
        trs += [trajectory_through(line3, 20 + i, [2]) for i in range(3)]
        result = NEAT(line3, NEATConfig(min_card=0)).run_flow(trs)
        purity = flow_purity(result)
        assert purity < 1.0


class TestCoClustering:
    def test_perfect_agreement_two_corridors(self, star4):
        trs = [trajectory_through(star4, i, [0, 1]) for i in range(3)]
        trs += [trajectory_through(star4, 10 + i, [2, 3]) for i in range(3)]
        result = NEAT(star4, NEATConfig(min_card=0)).run_flow(trs)
        agreement = co_clustering_agreement(
            result, trs, min_shared_segments=2
        )
        assert agreement == pytest.approx(1.0)

    def test_agreement_bounded(self, small_workload):
        network, dataset = small_workload
        result = NEAT(network, NEATConfig(eps=500.0)).run_flow(dataset)
        agreement = co_clustering_agreement(result, list(dataset))
        assert 0.0 <= agreement <= 1.0
