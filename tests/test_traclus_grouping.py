"""Unit tests for TraClus segment grouping."""

from __future__ import annotations


from repro.roadnet.geometry import Point
from repro.traclus.grouping import TraClusParams, group_segments
from repro.traclus.model import LineSegment


def seg(x1, y1, x2, y2, trid=0) -> LineSegment:
    return LineSegment(trid, Point(x1, y1), Point(x2, y2))


def bundle(y0: float, count: int, trid0: int) -> list[LineSegment]:
    """A tight bundle of near-parallel segments around height y0."""
    return [
        seg(0, y0 + i * 0.5, 100, y0 + i * 0.5, trid=trid0 + i)
        for i in range(count)
    ]


class TestGroupSegments:
    def test_two_bundles_two_clusters(self):
        segments = bundle(0.0, 5, 0) + bundle(500.0, 5, 10)
        clusters = group_segments(segments, TraClusParams(eps=5.0, min_lns=3))
        assert len(clusters) == 2
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [5, 5]

    def test_min_lns_discards_thin_clusters(self):
        segments = bundle(0.0, 2, 0)  # only two trajectories
        clusters = group_segments(segments, TraClusParams(eps=5.0, min_lns=3))
        assert clusters == []

    def test_cardinality_counts_trajectories_not_segments(self):
        # Five segments, but all from the same two trajectories.
        segments = [
            seg(0, 0, 50, 0, trid=0),
            seg(50, 0, 100, 0, trid=0),
            seg(0, 1, 50, 1, trid=0),
            seg(0, 2, 50, 2, trid=1),
            seg(50, 2, 100, 2, trid=1),
        ]
        clusters = group_segments(segments, TraClusParams(eps=10.0, min_lns=3))
        assert clusters == []  # cardinality 2 < min_lns 3

    def test_representatives_computed(self):
        segments = bundle(0.0, 5, 0)
        clusters = group_segments(segments, TraClusParams(eps=5.0, min_lns=3))
        assert len(clusters) == 1
        assert len(clusters[0].representative) >= 2
        assert clusters[0].representative_length > 0.0

    def test_grid_filter_matches_brute_force(self):
        segments = bundle(0.0, 4, 0) + bundle(60.0, 4, 10) + bundle(400.0, 4, 20)
        params_grid = TraClusParams(eps=8.0, min_lns=3, use_grid_filter=True)
        params_brute = TraClusParams(eps=8.0, min_lns=3, use_grid_filter=False)
        grid_clusters = group_segments(segments, params_grid)
        brute_clusters = group_segments(segments, params_brute)

        def shape(clusters):
            return sorted(
                tuple(sorted((s.trid, s.start.x, s.start.y) for s in c.segments))
                for c in clusters
            )

        assert shape(grid_clusters) == shape(brute_clusters)

    def test_empty_input(self):
        assert group_segments([], TraClusParams()) == []

    def test_cluster_ids_dense(self):
        segments = bundle(0.0, 5, 0) + bundle(500.0, 5, 10)
        clusters = group_segments(segments, TraClusParams(eps=5.0, min_lns=3))
        assert [c.cluster_id for c in clusters] == list(range(len(clusters)))
