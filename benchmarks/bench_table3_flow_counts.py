"""Table III: number of flow clusters produced by opt-NEAT on SJ datasets.

The paper's point (read with Figure 7): the flow count is set by workload
structure, not dataset size, and Phase 3's cost follows it.
"""

from __future__ import annotations

from conftest import NEAT_COUNTS

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.experiments.figures import DEFAULT_EPS, run_table3
from repro.experiments.workloads import build_suite


def bench_table3_flow_counts(benchmark, emit):
    """Time opt-NEAT on the largest SJ dataset; report all flow counts."""
    network, datasets = build_suite("SJ", NEAT_COUNTS)
    largest = datasets[-1]
    neat = NEAT(network, NEATConfig(eps=DEFAULT_EPS["SJ"]))
    result = benchmark.pedantic(
        lambda: neat.run_opt(largest), rounds=3, iterations=1
    )
    assert result.flow_count > 0

    table = run_table3(object_counts=NEAT_COUNTS)
    emit("table3_flow_counts", table.render())
