"""The durable store: atomic writes, checksummed frames, snapshot generations.

Three building blocks, each independently testable:

* :func:`atomic_write` — the temp-file + ``fsync`` + ``rename`` idiom.
  A reader never observes a half-written file: either the old bytes or
  the new bytes, nothing in between (POSIX ``rename`` is atomic).
* **Framed records** — :func:`encode_frame` / :func:`scan_frames` wrap a
  payload in a ``magic | length | crc32`` header.  A scan distinguishes
  the two on-disk failure modes: a *torn tail* (the file ends mid-frame
  — the normal residue of a crash mid-append, silently dropped and
  reported) and *corruption* (a complete frame whose checksum fails —
  raised as :class:`~repro.errors.CorruptSnapshot`, never returned).
* :class:`SnapshotStore` — generation-numbered, SHA-256-sealed snapshot
  files written atomically.  ``read_latest`` walks generations newest
  first and falls back to the last verified-good one when the newest is
  corrupt or torn, counting what it rejected.

Everything is stdlib-only and synchronous; callers inject a
:class:`~repro.resilience.FaultInjector` to script crash points
(``snapshot.pre_rename``, ``snapshot.read``) deterministically.
"""

from __future__ import annotations

import hashlib
import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import CorruptSnapshot, TornWrite
from ..obs import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from ..resilience import FaultInjector

_log = get_logger("persist.store")

#: Frame header: magic (4) | payload length u32 BE (4) | crc32 u32 BE (4).
FRAME_MAGIC = b"RPF1"
FRAME_HEADER = struct.Struct(">4sII")

#: Snapshot envelope: magic line, hex length line, sha256 line, payload.
SNAPSHOT_MAGIC = b"RPSNAP1\n"
_SNAPSHOT_NAME = re.compile(r"^gen-(\d{8})-w(\d{8})\.snap$")
_HEX_FIELD = re.compile(rb"[0-9a-f]{16}")

#: Byte-size histogram buckets for checkpoint payloads (1 KiB – 64 MiB).
SIZE_BUCKETS = tuple(float(1024 * 4**i) for i in range(9))


def _noop() -> None:
    return None


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
def atomic_write(
    path: str | Path,
    data: bytes,
    fsync: bool = True,
    faults: "FaultInjector | None" = None,
    fault_point: str = "store.pre_rename",
) -> None:
    """Write ``data`` to ``path`` so a crash never leaves a partial file.

    The bytes go to ``<name>.tmp`` in the same directory, are flushed and
    fsynced, and only then renamed over the target (``os.replace``); the
    directory entry is fsynced afterwards so the rename itself is
    durable.  An armed ``fault_point`` plan fires *between* the temp
    write and the rename — exactly where a kill -9 leaves the old file
    intact and the new bytes invisible.
    """
    target = Path(path)
    temp = target.with_name(target.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    if faults is not None:
        faults.run(fault_point, _noop)
    os.replace(temp, target)
    if fsync:
        _fsync_directory(target.parent)


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Framed records (the journal's wire format)
# ----------------------------------------------------------------------
def encode_frame(payload: bytes) -> bytes:
    """``payload`` wrapped in the ``magic | length | crc32`` header."""
    return (
        FRAME_HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload))
        + payload
    )


@dataclass
class FrameScan:
    """Outcome of :func:`scan_frames` over one byte string.

    Attributes:
        payloads: The complete, checksum-verified payloads in order.
        good_bytes: Offset of the first byte past the last good frame —
            truncating the file here repairs a torn tail.
        torn: Whether trailing bytes formed an incomplete frame.
    """

    payloads: list[bytes] = field(default_factory=list)
    good_bytes: int = 0
    torn: bool = False


def scan_frames(data: bytes, source: str | Path = "<memory>") -> FrameScan:
    """Decode consecutive frames, tolerating a torn tail.

    A file that ends mid-frame (header or payload cut short) is the
    normal residue of a crash during an append: the scan stops at the
    last complete frame and flags ``torn``.  A *complete* frame whose
    magic or CRC32 is wrong is corruption, not truncation — that raises
    :class:`~repro.errors.CorruptSnapshot` so a bit flip can never
    silently drop the records behind it.
    """
    scan = FrameScan()
    offset = 0
    total = len(data)
    while offset < total:
        remaining = total - offset
        if remaining < FRAME_HEADER.size:
            scan.torn = True
            break
        magic, length, crc = FRAME_HEADER.unpack_from(data, offset)
        if magic != FRAME_MAGIC:
            raise CorruptSnapshot(
                source, f"bad frame magic at offset {offset}"
            )
        start = offset + FRAME_HEADER.size
        if total - start < length:
            scan.torn = True
            break
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            raise CorruptSnapshot(
                source, f"frame CRC mismatch at offset {offset}"
            )
        scan.payloads.append(payload)
        offset = start + length
        scan.good_bytes = offset
    return scan


# ----------------------------------------------------------------------
# Checksummed snapshot envelope
# ----------------------------------------------------------------------
def seal_snapshot(payload: bytes) -> bytes:
    """``payload`` under the SHA-256 snapshot envelope.

    Layout: ``RPSNAP1\\n`` | 16 hex digits of payload length | ``\\n`` |
    64 hex digits of SHA-256 | ``\\n`` | payload.  The explicit length
    lets a reader tell a short file (torn write) from a full-length file
    whose digest disagrees (corruption).
    """
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    return (
        SNAPSHOT_MAGIC
        + f"{len(payload):016x}\n".encode("ascii")
        + digest
        + b"\n"
        + payload
    )


_ENVELOPE_HEADER = len(SNAPSHOT_MAGIC) + 17 + 65


def unseal_snapshot(data: bytes, source: str | Path) -> bytes:
    """Verify and strip the snapshot envelope; the inverse of ``seal``.

    Raises:
        TornWrite: The file ends before the declared payload length.
        CorruptSnapshot: Bad magic, unparseable header, or SHA mismatch.
    """
    if not data.startswith(SNAPSHOT_MAGIC):
        if SNAPSHOT_MAGIC.startswith(data):
            raise TornWrite(source, "file ends inside the snapshot magic")
        raise CorruptSnapshot(source, "not a sealed snapshot (bad magic)")
    if len(data) < _ENVELOPE_HEADER:
        raise TornWrite(source, "file ends inside the snapshot header")
    cursor = len(SNAPSHOT_MAGIC)
    length_line = data[cursor:cursor + 17]
    digest_line = data[cursor + 17:cursor + 17 + 65]
    hex_length = length_line[:16]
    # int() tolerates surrounding whitespace, which would let a bit flip
    # of a hex digit into e.g. a space slip through: require strict hex.
    if not _HEX_FIELD.fullmatch(hex_length):
        raise CorruptSnapshot(source, "unparseable length header")
    length = int(hex_length, 16)
    if length_line[16:17] != b"\n" or digest_line[64:65] != b"\n":
        raise CorruptSnapshot(source, "malformed snapshot header")
    payload = data[_ENVELOPE_HEADER:_ENVELOPE_HEADER + length]
    if len(payload) < length:
        raise TornWrite(
            source,
            f"payload truncated: {len(payload)} of {length} bytes present",
        )
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    if digest != digest_line[:64]:
        raise CorruptSnapshot(source, "payload SHA-256 mismatch")
    return payload


# ----------------------------------------------------------------------
# Generation-numbered snapshot directory
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Generation:
    """One snapshot generation on disk."""

    number: int
    watermark: int
    path: Path


class SnapshotStore:
    """Sealed snapshots under generation-numbered filenames.

    Files are named ``gen-<generation>-w<watermark>.snap``: the
    generation orders snapshots, the watermark records how many journal
    batches the snapshot already contains (so a fallback to an *older*
    generation knows where its journal replay must start — see
    ``docs/robustness.md``).

    Args:
        directory: Where generations live (created on first use).
        keep: Retained generations; older ones are pruned after a
            successful write.  Keeping more than one is what makes the
            corrupt-newest fallback possible.
        fsync: Whether writes are fsynced (tests may disable for speed).
        faults: Optional injector for the ``snapshot.pre_rename`` and
            ``snapshot.read`` crash/corruption points.
        metrics: Optional registry receiving the ``persist.*`` counters.
    """

    def __init__(
        self,
        directory: str | Path,
        keep: int = 3,
        fsync: bool = True,
        faults: "FaultInjector | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.fsync = fsync
        self.faults = faults
        self.metrics = metrics

    # -- discovery ------------------------------------------------------
    def generations(self) -> list[Generation]:
        """Every on-disk generation, oldest first."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _SNAPSHOT_NAME.match(entry.name)
            if match:
                found.append(
                    Generation(int(match.group(1)), int(match.group(2)), entry)
                )
        return sorted(found, key=lambda generation: generation.number)

    def oldest_watermark(self) -> int | None:
        """The watermark of the oldest retained generation (None if empty)."""
        generations = self.generations()
        return generations[0].watermark if generations else None

    # -- writing --------------------------------------------------------
    def write(self, payload: bytes, watermark: int = 0) -> int:
        """Durably write a new generation; returns its number.

        The write is atomic (temp + fsync + rename); after it lands,
        generations beyond ``keep`` are pruned oldest-first.
        """
        generations = self.generations()
        number = generations[-1].number + 1 if generations else 1
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"gen-{number:08d}-w{watermark:08d}.snap"
        atomic_write(
            path,
            seal_snapshot(payload),
            fsync=self.fsync,
            faults=self.faults,
            fault_point="snapshot.pre_rename",
        )
        if self.metrics is not None:
            self.metrics.inc(
                "persist.checkpoints_written",
                description="Snapshot generations durably written",
            )
            self.metrics.histogram(
                "persist.checkpoint_bytes",
                "Sealed snapshot payload sizes in bytes",
                buckets=SIZE_BUCKETS,
            ).observe(float(len(payload)))
        for stale in self.generations()[:-self.keep]:
            stale.path.unlink(missing_ok=True)
        _log.debug(
            "snapshot written",
            generation=number, watermark=watermark, bytes=len(payload),
        )
        return number

    # -- reading --------------------------------------------------------
    def read_latest(self) -> tuple[Generation, bytes] | None:
        """The newest verified-good generation and its payload.

        Generations are tried newest first; a corrupt or torn one is
        counted (``persist.checkpoints_rejected``), logged and skipped.
        Returns ``None`` when the store is empty.

        Raises:
            CorruptSnapshot: Generations exist but none verified — the
                caller must not mistake "all corrupt" for "no data".
        """
        generations = self.generations()
        for generation in reversed(generations):
            try:
                payload = self.read_generation(generation)
            except (CorruptSnapshot, TornWrite) as error:
                if self.metrics is not None:
                    self.metrics.inc(
                        "persist.checkpoints_rejected",
                        description="Corrupt/torn snapshot generations skipped",
                    )
                _log.warning(
                    "snapshot generation rejected",
                    generation=generation.number, error=repr(error),
                )
                continue
            return generation, payload
        if generations:
            raise CorruptSnapshot(
                self.directory,
                f"all {len(generations)} snapshot generation(s) failed "
                "verification",
            )
        return None

    def read_generation(self, generation: Generation) -> bytes:
        """One generation's verified payload (checksums enforced)."""
        if self.faults is not None:
            data = self.faults.run("snapshot.read", generation.path.read_bytes)
        else:
            data = generation.path.read_bytes()
        payload = unseal_snapshot(data, generation.path)
        if self.metrics is not None:
            self.metrics.inc(
                "persist.checkpoints_verified",
                description="Snapshot generations read and checksum-verified",
            )
        return payload
