"""The recovery gauntlet: every filesystem fault, recovered exactly.

For each injected fault point — crash-before-rename, crash-mid-append,
bit-flip-on-read — recovery must restore exactly the last durable state,
byte-identical (as serialized documents) to a never-crashed reference run
over the same batch prefix.  No fault may ever yield a silently-wrong
result: the acceptable outcomes are a typed ``PersistenceError`` or a
correct fallback, nothing else.

``TestGauntletDeterminism`` additionally snapshots the counters of a
fixed fault scenario; CI runs this file twice with
``REPRO_GAUNTLET_SNAPSHOT`` pointing at two files and diffs them, so any
nondeterminism in the fault/recovery path fails the build.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from conftest import trajectory_through
from repro.core import NEATConfig
from repro.core.incremental import IncrementalNEAT
from repro.core.serialize import result_to_dict
from repro.distributed.service import NeatService
from repro.errors import (
    CorruptSnapshot,
    FaultInjected,
    PersistenceError,
)
from repro.obs import Telemetry
from repro.obs.metrics import Counter
from repro.resilience import FaultInjector, FaultPlan, bit_flip

CONFIG = NEATConfig(min_card=0)


def make_batches(network, count, per_batch=3):
    batches = []
    trid = 0
    for index in range(count):
        batch = []
        for _ in range(per_batch):
            route = [trid % 2, (trid % 2) + 1]
            batch.append(
                trajectory_through(network, trid, route, t0=float(index))
            )
            trid += 1
        batches.append(batch)
    return batches


def document_of(clusterer) -> str:
    """Canonical bytes of a clusterer's state, for exact comparison."""
    return json.dumps(
        result_to_dict(clusterer.snapshot_result(), "gauntlet"),
        sort_keys=True,
    )


def reference_document(network, batches) -> str:
    """The never-crashed run over the same prefix."""
    reference = IncrementalNEAT(network, CONFIG)
    for batch in batches:
        reference.add_batch(batch)
    return document_of(reference)


class TestCrashBeforeRename:
    def test_failed_checkpoint_loses_nothing(self, grid3x3, tmp_path):
        batches = make_batches(grid3x3, 3)
        faults = FaultInjector()
        clusterer = IncrementalNEAT(grid3x3, CONFIG)
        clusterer.enable_persistence(
            tmp_path, checkpoint_every=1, fsync=False, faults=faults
        )
        clusterer.add_batch(batches[0])
        clusterer.add_batch(batches[1])
        # The 3rd batch's checkpoint dies between temp-write and rename.
        faults.arm("snapshot.pre_rename", FaultPlan(fail_nth=1))
        with pytest.raises(FaultInjected):
            clusterer.add_batch(batches[2])
        # The batch itself committed (journal first): nothing was lost.
        assert clusterer.batch_count == 3
        recovered = IncrementalNEAT.recover(tmp_path, grid3x3, CONFIG)
        assert recovered.batch_count == 3
        assert document_of(recovered) == reference_document(grid3x3, batches)
        # And no half-written generation is ever visible.
        snaps = [p.name for p in (tmp_path / "snapshots").iterdir()]
        assert all(name.endswith(".snap") or name.endswith(".tmp")
                   for name in snaps)


class TestCrashMidAppend:
    def test_torn_batch_is_rolled_back_and_dropped(self, grid3x3, tmp_path):
        batches = make_batches(grid3x3, 3)
        faults = FaultInjector()
        clusterer = IncrementalNEAT(grid3x3, CONFIG)
        clusterer.enable_persistence(tmp_path, fsync=False, faults=faults)
        clusterer.add_batch(batches[0])
        clusterer.add_batch(batches[1])
        faults.arm("journal.mid_append", FaultPlan(fail_nth=1))
        with pytest.raises(FaultInjected):
            clusterer.add_batch(batches[2])
        # Acknowledged == durable: the torn batch is gone in memory too.
        assert clusterer.batch_count == 2
        assert document_of(clusterer) == reference_document(
            grid3x3, batches[:2]
        )
        recovered = IncrementalNEAT.recover(tmp_path, grid3x3, CONFIG)
        assert recovered.batch_count == 2
        assert document_of(recovered) == reference_document(
            grid3x3, batches[:2]
        )
        # The repaired journal accepts new batches afterwards.
        recovered.add_batch(batches[2])
        assert document_of(recovered) == reference_document(grid3x3, batches)


class TestBitFlipOnRead:
    def test_corrupt_newest_snapshot_falls_back(self, grid3x3, tmp_path):
        batches = make_batches(grid3x3, 4)
        clusterer = IncrementalNEAT(grid3x3, CONFIG)
        clusterer.enable_persistence(
            tmp_path, checkpoint_every=2, keep=3, fsync=False
        )
        for batch in batches:
            clusterer.add_batch(batch)
        faults = FaultInjector()
        # First snapshot read (the newest generation) is bit-flipped; the
        # fallback generation plus the journal must reconstruct exactly.
        faults.arm(
            "snapshot.read", FaultPlan(corrupt_nth=1, corruptor=bit_flip)
        )
        telemetry = Telemetry.create()
        recovered = IncrementalNEAT.recover(
            tmp_path, grid3x3, CONFIG, telemetry=telemetry, faults=faults
        )
        assert recovered.batch_count == 4
        assert document_of(recovered) == reference_document(grid3x3, batches)
        metrics = telemetry.metrics
        assert metrics.value("persist.checkpoints_rejected") == 1
        assert metrics.value("persist.journal_replayed_batches") == 2
        assert metrics.value("persist.recoveries") == 1

    def test_corrupt_journal_read_is_typed_never_silent(
        self, grid3x3, tmp_path
    ):
        batches = make_batches(grid3x3, 2)
        clusterer = IncrementalNEAT(grid3x3, CONFIG)
        clusterer.enable_persistence(tmp_path, fsync=False)
        for batch in batches:
            clusterer.add_batch(batch)
        faults = FaultInjector()
        faults.arm(
            "journal.read", FaultPlan(corrupt_nth=1, corruptor=bit_flip)
        )
        with pytest.raises(PersistenceError):
            IncrementalNEAT.recover(tmp_path, grid3x3, CONFIG, faults=faults)

    def test_all_generations_corrupt_is_typed(self, grid3x3, tmp_path):
        clusterer = IncrementalNEAT(grid3x3, CONFIG)
        clusterer.enable_persistence(tmp_path, checkpoint_every=1, fsync=False)
        for batch in make_batches(grid3x3, 2):
            clusterer.add_batch(batch)
        for snap in (tmp_path / "snapshots").glob("*.snap"):
            blob = bytearray(snap.read_bytes())
            blob[len(blob) // 2] ^= 0x01
            snap.write_bytes(bytes(blob))
        with pytest.raises(CorruptSnapshot, match="failed"):
            IncrementalNEAT.recover(tmp_path, grid3x3, CONFIG)


class TestRecoverySemantics:
    def test_recover_then_continue_then_recover_again(self, grid3x3, tmp_path):
        batches = make_batches(grid3x3, 5)
        clusterer = IncrementalNEAT(grid3x3, CONFIG)
        clusterer.enable_persistence(tmp_path, checkpoint_every=2, fsync=False)
        for batch in batches[:3]:
            clusterer.add_batch(batch)
        first = IncrementalNEAT.recover(tmp_path, grid3x3, CONFIG)
        assert document_of(first) == reference_document(grid3x3, batches[:3])
        for batch in batches[3:]:
            first.add_batch(batch)
        second = IncrementalNEAT.recover(tmp_path, grid3x3, CONFIG)
        assert document_of(second) == reference_document(grid3x3, batches)

    def test_wrong_network_is_a_recovery_error(self, grid3x3, star4, tmp_path):
        clusterer = IncrementalNEAT(grid3x3, CONFIG)
        clusterer.enable_persistence(tmp_path, fsync=False)
        clusterer.add_batch(make_batches(grid3x3, 1)[0])
        clusterer.checkpoint()
        with pytest.raises(PersistenceError):
            IncrementalNEAT.recover(tmp_path, star4, CONFIG)


class TestServiceRestart:
    def test_restart_restores_state_and_serves(self, grid3x3, tmp_path):
        service = NeatService(grid3x3, CONFIG, state_dir=tmp_path)
        for batch in make_batches(grid3x3, 3):
            service.submit(batch)
        before = service.get_clustering()
        flow_count = service.stats().flow_count

        restarted = NeatService(grid3x3, CONFIG, state_dir=tmp_path)
        assert restarted.stats().flow_count == flow_count
        after = restarted.get_clustering()
        assert json.dumps(after, sort_keys=True) == json.dumps(
            before, sort_keys=True
        )

    def test_restart_serves_stale_when_refresh_fails(self, grid3x3, tmp_path):
        service = NeatService(grid3x3, CONFIG, state_dir=tmp_path)
        for batch in make_batches(grid3x3, 2):
            service.submit(batch)
        reference = service.get_clustering()

        restarted = NeatService(grid3x3, CONFIG, state_dir=tmp_path)
        # Every refresh attempt fails: a freshly restarted process with a
        # persisted serving document degrades to stale, not unavailable.
        restarted.faults.arm("refresh", FaultPlan(kill_from=1))
        response = restarted.get_clustering()
        assert response["stale"] is True
        assert restarted.stats().stale_queries == 1
        body = {k: v for k, v in response.items() if k != "stale"}
        expected = {k: v for k, v in reference.items() if k != "stale"}
        assert json.dumps(body, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )


class TestGauntletDeterminism:
    """A fixed fault scenario must produce identical counters every run."""

    def test_counter_snapshot_is_deterministic(self, grid3x3, tmp_path):
        batches = make_batches(grid3x3, 4)
        faults = FaultInjector()
        telemetry = Telemetry.create()
        clusterer = IncrementalNEAT(grid3x3, CONFIG, telemetry=telemetry)
        clusterer.enable_persistence(
            tmp_path, checkpoint_every=2, fsync=False, faults=faults
        )
        clusterer.add_batch(batches[0])
        faults.arm("journal.mid_append", FaultPlan(fail_nth=1))
        with pytest.raises(FaultInjected):
            clusterer.add_batch(batches[1])
        faults.disarm("journal.mid_append")
        clusterer.add_batch(batches[1])
        clusterer.add_batch(batches[2])
        clusterer.add_batch(batches[3])
        # Two generations now exist (watermarks 2 and 4); flip a bit in
        # the newest so recovery must fall back and replay the journal.
        faults.arm(
            "snapshot.read", FaultPlan(corrupt_nth=1, corruptor=bit_flip)
        )
        recovery_telemetry = Telemetry.create()
        recovered = IncrementalNEAT.recover(
            tmp_path, grid3x3, CONFIG,
            telemetry=recovery_telemetry, faults=faults,
        )
        assert document_of(recovered) == reference_document(grid3x3, batches)

        # Counters only: histograms carry wall-clock timings and would
        # never diff clean across runs.
        counters = {
            instrument.name: instrument.value
            for registry in (telemetry.metrics, recovery_telemetry.metrics)
            for instrument in registry
            if isinstance(instrument, Counter)
            and instrument.name.startswith(("persist.", "incremental."))
        }
        assert counters["persist.journal_appends"] == 4
        assert counters["persist.checkpoints_written"] == 2
        assert counters["persist.checkpoints_rejected"] == 1
        assert counters["persist.journal_replayed_batches"] == 2
        assert counters["persist.recoveries"] == 1
        assert counters["incremental.rolled_back_batches"] == 1

        snapshot_path = os.environ.get("REPRO_GAUNTLET_SNAPSHOT")
        if snapshot_path:
            Path(snapshot_path).write_text(
                json.dumps(counters, sort_keys=True, indent=2) + "\n"
            )
