"""Data nodes and coordinator for distributed Phase 1.

Base-cluster formation (Phase 1) is a *distributive* aggregation: a base
cluster is "all t-fragments with this sid", so fragments extracted on any
shard can be merged by sid without loss.  That makes the paper's data-node
preprocessing exact:

1. each :class:`DataNode` fragments its trajectory shard and groups the
   fragments into partial base clusters;
2. :func:`merge_base_clusters` unions the partial clusters by sid;
3. the :class:`NeatCoordinator` runs Phases 2-3 on the merged clusters,
   producing bit-identical results to a centralized run.

Everything is synchronous and in-process — the point is the dataflow
decomposition the paper sketches, not an RPC stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.base_cluster import BaseCluster, form_base_clusters
from ..core.config import NEATConfig
from ..core.flow_formation import form_flow_clusters
from ..core.model import Trajectory
from ..core.refinement import RefinementStats, refine_flow_clusters
from ..core.result import NEATResult, PhaseTimings
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine


def shard_round_robin(
    trajectories: Sequence[Trajectory], shard_count: int
) -> list[list[Trajectory]]:
    """Partition trajectories across ``shard_count`` shards round-robin."""
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    shards: list[list[Trajectory]] = [[] for _ in range(shard_count)]
    for index, trajectory in enumerate(trajectories):
        shards[index % shard_count].append(trajectory)
    return shards


@dataclass
class DataNode:
    """One data node: holds a trajectory shard, runs Phase 1 locally.

    Attributes:
        node_id: Identifier within the cluster.
        network: The (replicated) road network.
        trajectories: The node's trajectory shard.
    """

    node_id: int
    network: RoadNetwork
    trajectories: list[Trajectory] = field(default_factory=list)

    def ingest(self, trajectories: Iterable[Trajectory]) -> None:
        """Add trajectories to this node's shard."""
        self.trajectories.extend(trajectories)

    def preprocess(self, keep_interior_points: bool = False) -> list[BaseCluster]:
        """Run Phase 1 over the local shard (the paper's node-side task)."""
        return form_base_clusters(
            self.network, self.trajectories,
            keep_interior_points=keep_interior_points,
        )


def merge_base_clusters(
    partials: Iterable[Sequence[BaseCluster]],
) -> list[BaseCluster]:
    """Union partial base clusters by sid (exact, order-independent).

    Returns the merged clusters sorted density-descending, sid ascending —
    the same contract as centralized Phase 1 output.
    """
    merged: dict[int, BaseCluster] = {}
    for partial in partials:
        for cluster in partial:
            target = merged.get(cluster.sid)
            if target is None:
                target = BaseCluster(cluster.sid)
                merged[cluster.sid] = target
            for fragment in cluster.fragments:
                target.add(fragment)
    return sorted(merged.values(), key=lambda s: (-s.density, s.sid))


class NeatCoordinator:
    """The server tier: shards input, gathers Phase 1, runs Phases 2-3.

    Args:
        network: The road network (replicated to every node).
        config: NEAT parameters.
        node_count: Number of data nodes to simulate.
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: NEATConfig | None = None,
        node_count: int = 4,
    ) -> None:
        if node_count < 1:
            raise ValueError("node_count must be >= 1")
        self.network = network
        self.config = config if config is not None else NEATConfig()
        self.nodes = [DataNode(i, network) for i in range(node_count)]
        self.engine = ShortestPathEngine(network, directed=False)

    def run(self, trajectories: Sequence[Trajectory], mode: str = "opt") -> NEATResult:
        """Distribute, preprocess on nodes, merge, finish centrally.

        Produces exactly the result of ``NEAT(network, config).run(...)``
        — the tests assert bit-equality of flow routes.
        """
        if mode not in ("base", "flow", "opt"):
            raise ValueError(f"unknown mode {mode!r}")
        for node in self.nodes:
            node.trajectories.clear()
        for shard, node in zip(
            shard_round_robin(trajectories, len(self.nodes)), self.nodes
        ):
            node.ingest(shard)

        partials = [
            node.preprocess(self.config.keep_interior_points)
            for node in self.nodes
        ]
        result = NEATResult(mode=mode, timings=PhaseTimings())
        result.base_clusters = merge_base_clusters(partials)
        if mode == "base":
            return result

        formation = form_flow_clusters(
            self.network, result.base_clusters, self.config
        )
        result.flows = formation.flows
        result.noise_flows = formation.noise_flows
        result.min_card_used = formation.min_card_used
        if mode == "flow":
            return result

        stats = RefinementStats()
        result.clusters = refine_flow_clusters(
            self.network, result.flows, self.config,
            engine=self.engine, stats=stats,
        )
        result.refinement_stats = stats
        return result
