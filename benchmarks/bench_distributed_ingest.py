"""Ingest scaling of the real multi-process distributed tier.

One measurement, one artifact
(``output/BENCH_distributed_ingest.json``): the same opt-NEAT workload
clustered serially and through 1/2/4 local ``repro shard-node`` worker
processes — real OS processes, real TCP, region sharding over the
consistent-hash ring, pooled persistent connections, pipelined dispatch
and shard-side Phase 3.  For every shard count the run must produce a
result document *byte-identical* to the serial one (the distributed
tier's core invariant); the artifact records the SHA-256 digest match
alongside wall times, the per-shard trajectory split, the per-rung wire
profile (``rpc_count`` / ``bytes_sent`` / ``batched_calls`` /
``reconnects`` — the *why* behind a scaling change, not just the what)
and the deterministic result counters (flows, clusters, boundary
segments) that ``check_perf_regression.py`` gates against the committed
baseline.

``vs_serial`` is a *speedup* (serial best over distributed best, higher
is better; ≥ 1.0 means the distributed tier at least breaks even), and
the flat ``vs_serial_by_shards`` map exists so CI can gate it with
``--key-min vs_serial_by_shards.4=1.0 --skip-unless cpu_count=4``: on a
single-core host every shard process time-slices the same CPU, so the
ratio there measures pure dispatch overhead, not parallel speedup —
the artifact's ``cpu_count`` field says which regime a run measured.  Every rung times only
``coordinator.run`` — shard spawn and teardown are excluded — and takes
the best of ``--rounds`` (default 3) to shave scheduler noise.
``--smoke`` shrinks the workload for CI; ``--append-history`` feeds the
trend ledger of ``bench_history.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import time
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"
ARTIFACT = OUTPUT_DIR / "BENCH_distributed_ingest.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import NEATConfig  # noqa: E402
from repro.core.pipeline import NEAT  # noqa: E402
from repro.core.serialize import result_to_dict  # noqa: E402
from repro.distributed import (  # noqa: E402
    NeatCoordinator,
    RegionShardMap,
    RemoteDataNode,
    TransportClient,
    spawn_local_shards,
    stop_shards,
)
from repro.experiments.harness import export_metrics, format_table  # noqa: E402
from repro.experiments.workloads import (  # noqa: E402
    WorkloadSpec,
    build_dataset,
    build_network,
)
from repro.obs import Telemetry  # noqa: E402
from repro.roadnet.io import save_network  # noqa: E402

ROUNDS = 3
OBJECTS = 200
# The paper's Phase 3 threshold for the Atlanta-like evaluation
# (eps = 6500 m for ATL500).  A real eps gives Phase 3 real distance
# work, which is exactly the part shard-side Phase 3 distributes for
# free wire-wise — benching at a token eps would hide that.
EPS = 6500.0
REGION = "ATL"
SHARD_COUNTS = (1, 2, 4)
RPC_TIMEOUT_S = 60.0


def _digest(document: dict) -> str:
    return hashlib.sha256(
        json.dumps(document, sort_keys=True).encode("utf-8")
    ).hexdigest()


def run_ingest_scaling(
    objects: int = OBJECTS,
    rounds: int = ROUNDS,
    region: str = REGION,
    network_scale: float | None = None,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    pool_size: int = 1,
    remote_phase3: bool = True,
) -> dict:
    """Serial vs N-shard-process wall time, digest-checked per rung.

    Each rung reports the best of ``rounds`` timings of
    ``coordinator.run`` alone (spawn and teardown excluded) plus the
    wire profile of its last round — RPC and byte counts are
    deterministic across rounds, so "last" is as good as any.
    """
    network = build_network(region, network_scale)
    dataset = build_dataset(
        network, WorkloadSpec(region, objects, network_scale=network_scale)
    )
    trajectories = list(dataset.trajectories)
    config = NEATConfig(eps=EPS)

    serial_best = float("inf")
    serial_result = None
    for _ in range(rounds):
        # Fresh NEAT per round: a warm distance memo from round 1 would
        # turn rounds 2+ into cache-hit replays and make serial look
        # faster than a cold run ever is.  The distributed rungs below
        # are reset to cold per round too — best-of-N compares like
        # with like.
        serial_neat = NEAT(network, config)
        started = time.perf_counter()
        serial_result = serial_neat.run(trajectories, mode="opt")
        serial_best = min(serial_best, time.perf_counter() - started)
    serial_doc = result_to_dict(serial_result, network_name=network.name)
    serial_digest = _digest(serial_doc)

    rungs = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-shards-") as tmp:
        network_path = Path(tmp) / "network.json"
        save_network(network, network_path)
        for count in shard_counts:
            shards = spawn_local_shards(
                network_path, count, work_dir=Path(tmp) / f"shards-{count}"
            )
            try:
                best = float("inf")
                result = None
                wire: dict = {}
                for _ in range(rounds):
                    # Fresh nodes/ring/telemetry per round: a node death,
                    # rebalance or counter in one round must not leak
                    # into the next.
                    telemetry = Telemetry()
                    nodes = [
                        RemoteDataNode(
                            s.node_id,
                            TransportClient(
                                s.host, s.port,
                                timeout_s=RPC_TIMEOUT_S,
                                metrics=telemetry.metrics,
                                pool_size=pool_size,
                            ),
                        )
                        for s in shards
                    ]
                    # trid routing: near-uniform shard load.  Region
                    # routing piles hotspot-started trips onto a few
                    # nodes, and the largest shard's share caps the
                    # parallel speedup.
                    shardmap = RegionShardMap(
                        network, [s.node_id for s in shards], route="trid"
                    )
                    coordinator = NeatCoordinator(
                        network, config, nodes=nodes, shardmap=shardmap,
                        telemetry=telemetry, remote_phase3=remote_phase3,
                    )
                    started = time.perf_counter()
                    result = coordinator.run(trajectories, mode="opt")
                    best = min(best, time.perf_counter() - started)
                    metrics = telemetry.metrics
                    wire = {
                        "rpc_count": int(metrics.value("transport.requests")),
                        "bytes_sent": int(metrics.value("transport.bytes_sent")),
                        "batched_calls": int(
                            metrics.value("transport.batched_calls")
                        ),
                        "reconnects": int(metrics.value("transport.reconnects")),
                        "handshakes": int(metrics.value("transport.handshakes")),
                    }
                    for node in nodes:
                        # Cold next round: drop each shard's warm
                        # distance engine (outside the timed window),
                        # then the pooled connections.
                        try:
                            node.client.call("reset")
                        except Exception:
                            pass
                        node.client.close()
                split = [
                    len(shard)
                    for _, shard in sorted(shardmap.shard(trajectories).items())
                ]
            finally:
                stop_shards(shards)
            document = result_to_dict(result, network_name=network.name)
            rungs.append({
                "shards": count,
                "wall_s": round(best, 4),
                "vs_serial": round(serial_best / best, 3),
                "digest_match": _digest(document) == serial_digest,
                "shard_split": split,
                "dropped_shards": list(result.dropped_shards),
                **wire,
            })

    try:
        cpu_count = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        cpu_count = os.cpu_count() or 1
    return {
        "network": region,
        "objects": objects,
        "rounds": rounds,
        "eps": EPS,
        "pool_size": pool_size,
        "remote_phase3": remote_phase3,
        # Scaling context for gates: on a single-core host the shard
        # processes time-slice one CPU, so vs_serial measures pure
        # dispatch overhead, not parallel speedup — CI skips the
        # speedup floor unless cpu_count says the parallelism exists.
        "cpu_count": cpu_count,
        "trajectories": len(trajectories),
        "serial_s": round(serial_best, 4),
        "flows": len(serial_result.flows),
        "clusters": len(serial_result.clusters),
        "digest": serial_digest,
        "all_digests_match": all(r["digest_match"] for r in rungs),
        # Flat speedup-by-shard-count map (string keys) so the CI gate
        # can assert e.g. --key-min vs_serial_by_shards.4=1.0 without
        # indexing into the rungs list.
        "vs_serial_by_shards": {
            str(r["shards"]): r["vs_serial"] for r in rungs
        },
        "rungs": rungs,
    }


def render_ingest_scaling(report: dict) -> str:
    rows = [(
        "serial", f"{report['serial_s']:.4f}", "1.000", "—", "—", "—", "—",
    )]
    for rung in report["rungs"]:
        rows.append((
            f"{rung['shards']} shard proc(s)",
            f"{rung['wall_s']:.4f}",
            f"{rung['vs_serial']:.3f}",
            "yes" if rung["digest_match"] else "NO",
            "/".join(str(n) for n in rung["shard_split"]),
            str(rung.get("rpc_count", "—")),
            f"{rung.get('bytes_sent', 0) / 1024:.0f}",
        ))
    table = format_table(
        ("configuration", f"best-of-{report['rounds']} (s)",
         "speedup", "byte-identical", "split", "rpcs", "KiB sent"),
        rows,
    )
    return "\n".join([
        "Distributed ingest scaling over local shard processes "
        f"({report['network']}, {report['objects']} objects, "
        f"eps={report['eps']}, pool_size={report['pool_size']}, "
        f"remote_phase3={report['remote_phase3']}, "
        f"cpus={report.get('cpu_count', '?')})",
        table,
        f"serial result: {report['flows']} flows, "
        f"{report['clusters']} clusters, digest {report['digest'][:16]}…",
    ])


def bench_distributed_ingest(emit):
    """Pytest entry point: smoke-scale scaling run, digests must match."""
    report = run_ingest_scaling(objects=40, rounds=1, shard_counts=(1, 2))
    export_metrics(report, ARTIFACT)
    emit("distributed_ingest", render_ingest_scaling(report))
    assert report["all_digests_match"], (
        "a distributed rung diverged from the serial result: "
        + json.dumps(report["rungs"], indent=2)
    )


def main(argv: list[str] | None = None) -> int:
    """Standalone runner (CI smoke mode shrinks the workload)."""
    import argparse

    from repro.tune.profiles import add_profile_argument, resolve_profile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload: checks the harness runs, not the scaling",
    )
    parser.add_argument(
        "--append-history",
        action="store_true",
        help="append the artifact to benchmarks/history/BENCH_history.jsonl",
    )
    add_profile_argument(parser)
    options = parser.parse_args(argv)

    if options.profile:
        spec = resolve_profile(options.profile).bench_spec(smoke=options.smoke)
        report = run_ingest_scaling(
            objects=spec.object_count,
            region=spec.region,
            network_scale=spec.network_scale,
        )
    elif options.smoke:
        report = run_ingest_scaling(objects=120)
    else:
        report = run_ingest_scaling()
    export_metrics(report, ARTIFACT)
    print(render_ingest_scaling(report))
    print(f"\nwrote {ARTIFACT}")
    if options.append_history:
        from bench_history import append_entry

        entry = append_entry(ARTIFACT, profile=options.profile)
        print(f"appended ledger entry for workload {entry['workload']!r}")
    if not report["all_digests_match"]:
        print("FAIL: a distributed rung diverged from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
