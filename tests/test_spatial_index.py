"""Unit tests for the uniform-grid segment index."""

from __future__ import annotations

import pytest

from repro.roadnet.geometry import Point
from repro.roadnet.spatial_index import SegmentGridIndex


class TestCandidates:
    def test_candidates_are_superset(self, grid3x3):
        index = SegmentGridIndex(grid3x3, cell_size=100.0)
        point = Point(50.0, 0.0)
        candidates = set(index.candidates_near(point, 10.0))
        exact = {sid for sid, _d in index.segments_within(point, 10.0)}
        assert exact <= candidates

    def test_candidates_sorted(self, grid3x3):
        index = SegmentGridIndex(grid3x3)
        candidates = index.candidates_near(Point(100.0, 100.0), 150.0)
        assert candidates == sorted(candidates)

    def test_far_point_no_exact_hits(self, grid3x3):
        index = SegmentGridIndex(grid3x3)
        assert index.segments_within(Point(5000.0, 5000.0), 50.0) == []


class TestSegmentsWithin:
    def test_on_segment_distance_zero(self, grid3x3):
        index = SegmentGridIndex(grid3x3)
        hits = index.segments_within(Point(50.0, 0.0), 1.0)
        assert hits
        sid, distance = hits[0]
        assert distance == pytest.approx(0.0)
        a, b = grid3x3.segment_endpoints(sid)
        assert {a, b} == {Point(0, 0), Point(100, 0)}

    def test_sorted_by_distance(self, grid3x3):
        index = SegmentGridIndex(grid3x3)
        hits = index.segments_within(Point(50.0, 20.0), 200.0)
        distances = [d for _sid, d in hits]
        assert distances == sorted(distances)

    def test_radius_respected(self, grid3x3):
        index = SegmentGridIndex(grid3x3)
        for _sid, distance in index.segments_within(Point(42.0, 33.0), 60.0):
            assert distance <= 60.0


class TestNearestSegment:
    def test_nearest_expands_rings(self, grid3x3):
        index = SegmentGridIndex(grid3x3)
        hit = index.nearest_segment(Point(105.0, 55.0), initial_radius=1.0)
        assert hit is not None
        sid, distance = hit
        assert distance == pytest.approx(5.0)
        a, b = grid3x3.segment_endpoints(sid)
        assert {a, b} == {Point(100, 0), Point(100, 100)}

    def test_nearest_gives_up_beyond_max(self, grid3x3):
        index = SegmentGridIndex(grid3x3)
        assert index.nearest_segment(
            Point(1e7, 1e7), initial_radius=1.0, max_radius=100.0
        ) is None

    def test_cell_count_positive(self, grid3x3):
        assert SegmentGridIndex(grid3x3).cell_count > 0

    def test_default_cell_size_from_average(self, grid3x3):
        index = SegmentGridIndex(grid3x3)
        assert index.cell_size == pytest.approx(200.0)  # 2 * 100 m average
