"""Tests for the in-process NEAT service facade."""

from __future__ import annotations

import pytest

from repro.core.config import NEATConfig
from repro.core.model import Location, Trajectory
from repro.core.serialize import result_from_dict
from repro.distributed.service import NeatService
from repro.errors import RetriesExhausted, TrajectoryError
from repro.resilience import FaultPlan, RetryPolicy

from conftest import trajectory_through


@pytest.fixture
def service(small_workload):
    network, dataset = small_workload
    return network, list(dataset), NeatService(network, NEATConfig(eps=500.0))


class TestSubmit:
    def test_acknowledgement_fields(self, service):
        _network, trajectories, svc = service
        ack = svc.submit(trajectories[:20])
        assert ack["batch"] == 0
        assert ack["accepted"] == 20
        assert ack["total_flows"] >= ack["new_flows"] >= 0

    def test_batches_accumulate(self, service):
        _network, trajectories, svc = service
        svc.submit(trajectories[:20])
        ack = svc.submit(trajectories[20:40])
        assert ack["batch"] == 1
        stats = svc.stats()
        assert stats.batches_ingested == 2
        assert stats.trajectories_ingested == 40

    def test_clients_need_not_coordinate_ids(self, service):
        # Two clients both submit trajectories ids 0..19: the service
        # re-ids internally, no collision.
        _network, trajectories, svc = service
        svc.submit(trajectories[:20])
        svc.submit(trajectories[:20])  # same ids again
        assert svc.stats().trajectories_ingested == 40


class TestSubmitErrorPaths:
    def test_malformed_batch_rejected_at_admission(self, line3):
        svc = NeatService(line3, NEATConfig(min_card=0))
        bad = Trajectory(0, (
            Location(999, 0.0, 0.0, 0.0), Location(999, 1.0, 0.0, 5.0),
        ))
        with pytest.raises(TrajectoryError, match="unknown segment"):
            svc.submit([bad])
        stats = svc.stats()
        assert stats.rejected_batches == 1
        assert stats.batches_ingested == 0
        assert stats.pending_batches == 0  # never admitted to the queue

    def test_duplicate_trids_in_batch_rejected(self, line3):
        svc = NeatService(line3, NEATConfig(min_card=0))
        duplicate = [
            trajectory_through(line3, 7, [0, 1]),
            trajectory_through(line3, 7, [1, 2]),
        ]
        with pytest.raises(TrajectoryError, match="duplicate"):
            svc.submit(duplicate)
        assert svc.stats().rejected_batches == 1

    def test_rejected_batch_does_not_poison_later_submits(self, line3):
        svc = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        with pytest.raises(TrajectoryError):
            svc.submit([
                trajectory_through(line3, 0, [0, 1]),
                trajectory_through(line3, 0, [0, 1]),
            ])
        svc.submit([trajectory_through(line3, i, [0, 1]) for i in range(3)])
        stats = svc.stats()
        assert stats.batches_ingested == 1
        assert stats.trajectories_ingested == 3

    def test_stats_after_failed_ingest(self, line3):
        svc = NeatService(
            line3, NEATConfig(min_card=0, eps=500.0),
            retry_policy=RetryPolicy(max_retries=2, base_delay_s=0.0, jitter=0.0),
        )
        svc.faults.arm("ingest", FaultPlan(fail_nth=(1, 2, 3)))
        with pytest.raises(RetriesExhausted):
            svc.submit([trajectory_through(line3, i, [0, 1]) for i in range(3)])
        stats = svc.stats()
        assert stats.retries == 2
        assert stats.pending_batches == 1  # batch kept for a later flush
        assert stats.batches_ingested == 0
        assert stats.trajectories_ingested == 0
        # The schedule is spent, so the queued batch recovers.
        assert svc.flush_pending() == 0
        assert svc.stats().batches_ingested == 1


class TestQueries:
    def test_clustering_document_round_trips(self, service):
        network, trajectories, svc = service
        svc.submit(trajectories[:30])
        document = svc.get_clustering()
        assert document["format"] == "repro-clustering"
        restored = result_from_dict(document, network)
        assert len(restored.flows) == svc.stats().flow_count

    def test_document_is_validated(self, service):
        _network, trajectories, svc = service
        svc.submit(trajectories[:30])
        svc.get_clustering()  # raises if invalid; reaching here is the test

    def test_flow_summaries(self, service):
        _network, trajectories, svc = service
        svc.submit(trajectories[:30])
        summaries = svc.get_flow_summaries()
        assert len(summaries) == svc.stats().flow_count
        for summary in summaries:
            assert summary["cardinality"] >= 1
            assert summary["route_length_m"] > 0
            assert len(summary["endpoints"]) == 2

    def test_empty_service_clustering(self, line3):
        # Query before any ingest: an empty (but fresh) document, not an
        # error — the service has validated "nothing yet" successfully.
        svc = NeatService(line3, NEATConfig(min_card=0))
        document = svc.get_clustering()
        assert document["flows"] == []
        assert document["clusters"] == []
        assert document["stale"] is False
        assert svc.stats().queries_served == 1


class TestEndToEnd:
    def test_streaming_session(self, line3):
        svc = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        for batch_start in range(0, 9, 3):
            batch = [
                trajectory_through(line3, batch_start + i, [0, 1, 2])
                for i in range(3)
            ]
            svc.submit(batch)
        stats = svc.stats()
        assert stats.batches_ingested == 3
        assert stats.flow_count == 3  # one flow per batch over the corridor
        document = svc.get_clustering()
        # All three flows merge into one cluster (identical routes).
        assert len(document["clusters"]) == 1


class TestQuarantine:
    """Bad trajectories are counted and skipped, not whole-batch fatal."""

    def _nan_trajectory(self, network, trid):
        import math

        return Trajectory(trid, (
            Location(0, math.nan, 0.0, 0.0),
            Location(1, 1.0, 0.0, 5.0),
        ))

    def test_nan_coordinate_quarantined_rest_ingested(self, line3):
        svc = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        batch = [
            trajectory_through(line3, 0, [0, 1]),
            self._nan_trajectory(line3, 1),
            trajectory_through(line3, 2, [1, 2]),
        ]
        ack = svc.submit(batch)
        assert ack["quarantined"] == 1
        stats = svc.stats()
        assert stats.quarantined_trajectories == 1
        assert stats.trajectories_ingested == 2
        assert stats.rejected_batches == 0

    def test_nan_timestamp_quarantined(self, line3):
        # NaN compares false to everything, so it slips past the
        # constructor's ordering check; admission must still catch it.
        import math

        svc = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        bad_time = Trajectory(1, (
            Location(0, 0.0, 0.0, math.nan),
            Location(1, 1.0, 0.0, 5.0),
        ))
        ack = svc.submit([trajectory_through(line3, 0, [0, 1]), bad_time])
        assert ack["quarantined"] == 1
        assert svc.stats().quarantined_trajectories == 1

    def test_all_bad_batch_still_rejected_whole(self, line3):
        svc = NeatService(line3, NEATConfig(min_card=0))
        with pytest.raises(TrajectoryError, match="unknown segment"):
            svc.submit([Trajectory(0, (
                Location(999, 0.0, 0.0, 0.0), Location(999, 1.0, 0.0, 5.0),
            ))])
        stats = svc.stats()
        assert stats.rejected_batches == 1
        assert stats.quarantined_trajectories == 0

    def test_duplicates_still_reject_whole_batch(self, line3):
        # Duplicate ids are a batch-level defect: no quarantine shortcut.
        svc = NeatService(line3, NEATConfig(min_card=0))
        with pytest.raises(TrajectoryError, match="duplicate"):
            svc.submit([
                trajectory_through(line3, 7, [0, 1]),
                self._nan_trajectory(line3, 7),
            ])
        assert svc.stats().quarantined_trajectories == 0

    def test_quarantine_does_not_skew_clustering(self, line3):
        clean = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        dirty = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        good = [trajectory_through(line3, i, [0, 1, 2]) for i in range(3)]
        clean.submit(good)
        dirty.submit(good + [self._nan_trajectory(line3, 99)])
        import json

        a = clean.get_clustering()
        b = dirty.get_clustering()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
