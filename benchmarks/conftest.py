"""Shared benchmark plumbing.

Every bench module regenerates one table/figure of the paper and reports a
"paper vs measured" text block.  The block is written to
``benchmarks/output/<name>.txt`` (so results survive the run) and echoed
to the terminal past pytest's capture, alongside pytest-benchmark's own
timing table.

Scale knobs (environment variables):

* ``REPRO_BENCH_COUNTS`` — comma-separated object counts for the NEAT
  sweeps (default ``50,100,200,300,500``).
* ``REPRO_BENCH_TRACLUS_COUNTS`` — counts for sweeps that include the
  O(n^2) TraClus baseline (default ``50,100,200``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


def _counts(name: str, default: tuple[int, ...]) -> tuple[int, ...]:
    raw = os.environ.get(name)
    if not raw:
        return default
    return tuple(int(part) for part in raw.split(",") if part.strip())


#: Object counts for NEAT-only sweeps (Figures 6, 7; Tables II, III).
NEAT_COUNTS = _counts("REPRO_BENCH_COUNTS", (50, 100, 200, 300, 500))

#: Object counts for sweeps including TraClus (Figures 4, 5, variant).
TRACLUS_COUNTS = _counts("REPRO_BENCH_TRACLUS_COUNTS", (50, 100, 200))


@pytest.fixture
def emit(capsys):
    """Write an experiment report to disk and the terminal.

    Pass ``metrics=<telemetry snapshot>`` (e.g. ``NEATResult.telemetry``
    or :func:`repro.experiments.harness.result_metrics`) to also persist
    the run's operational counters as ``output/<name>.metrics.json``
    alongside the text report.
    """

    def _emit(name: str, text: str, metrics: dict | None = None) -> None:
        OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        if metrics is not None:
            from repro.experiments.harness import export_metrics

            export_metrics(metrics, OUTPUT_DIR / f"{name}.metrics.json")
        with capsys.disabled():
            print(f"\n===== {name} =====")
            print(text)

    return _emit
