"""Tests for bounding-box network crops and trajectory clipping."""

from __future__ import annotations

import pytest

from repro.roadnet.subnetwork import clip_trajectories, crop_network

from conftest import trajectory_through


class TestCropNetwork:
    def test_crop_keeps_inside_structure(self, grid3x3):
        # The 3x3 grid spans 0..200 in both axes; crop the left 2 columns.
        cropped = crop_network(grid3x3, -10, -10, 110, 210)
        assert cropped.junction_count == 6
        # Surviving segments connect kept nodes only.
        for segment in cropped.segments():
            assert cropped.has_node(segment.node_u)
            assert cropped.has_node(segment.node_v)

    def test_ids_preserved(self, grid3x3):
        cropped = crop_network(grid3x3, -10, -10, 110, 210)
        for sid in cropped.segment_ids():
            original = grid3x3.segment(sid)
            copy = cropped.segment(sid)
            assert copy.endpoints == original.endpoints
            assert copy.length == original.length

    def test_boundary_crossing_segments_dropped(self, grid3x3):
        cropped = crop_network(grid3x3, -10, -10, 110, 210)
        # Horizontal segments from column 1 to column 2 must be gone.
        for segment in cropped.segments():
            a, b = cropped.segment_endpoints(segment.sid)
            assert a.x <= 110 and b.x <= 110

    def test_empty_box_rejected(self, grid3x3):
        with pytest.raises(ValueError):
            crop_network(grid3x3, 10, 10, 10, 20)

    def test_crop_name(self, grid3x3):
        assert crop_network(grid3x3, 0, 0, 50, 50).name == "grid3x3-crop"
        assert crop_network(grid3x3, 0, 0, 50, 50, name="west").name == "west"

    def test_full_box_is_identity(self, grid3x3):
        cropped = crop_network(grid3x3, -1, -1, 201, 201)
        assert cropped.segment_count == grid3x3.segment_count
        assert cropped.junction_count == grid3x3.junction_count


class TestClipTrajectories:
    def test_inside_trajectory_survives_whole(self, grid3x3):
        cropped = crop_network(grid3x3, -10, -10, 110, 210)
        inside_sids = cropped.segment_ids()
        tr = trajectory_through(grid3x3, 5, inside_sids[:2])
        clipped = clip_trajectories(cropped, [tr])
        assert len(clipped) == 1
        assert len(clipped[0]) == len(tr)

    def test_crossing_trajectory_is_cut(self, grid3x3):
        # A route using segment 0 (inside the left crop) then segments in
        # the right column: only the inside run survives.
        cropped = crop_network(grid3x3, -10, -10, 110, 210)
        outside = [
            sid for sid in grid3x3.segment_ids()
            if not cropped.has_segment(sid)
        ]
        inside = cropped.segment_ids()
        route = [inside[0], *outside[:1]]
        # Ensure connectivity of the chosen route in the full network.
        if not grid3x3.are_adjacent(route[0], route[1]):
            route = [inside[0]]
        tr = trajectory_through(grid3x3, 7, route)
        clipped = clip_trajectories(cropped, [tr])
        for piece in clipped:
            for location in piece.locations:
                assert cropped.has_segment(location.sid)

    def test_run_ids_encode_provenance(self, grid3x3):
        cropped = crop_network(grid3x3, -10, -10, 110, 210)
        inside = cropped.segment_ids()
        tr = trajectory_through(grid3x3, 42, inside[:1])
        clipped = clip_trajectories(cropped, [tr])
        assert clipped[0].trid == 42000

    def test_short_runs_dropped(self, grid3x3):
        from repro.core.model import Location, Trajectory

        cropped = crop_network(grid3x3, -10, -10, 110, 210)
        inside_sid = cropped.segment_ids()[0]
        outside_sid = next(
            sid for sid in grid3x3.segment_ids()
            if not cropped.has_segment(sid)
        )
        # One inside sample sandwiched by outside samples: run too short.
        tr = Trajectory(
            0,
            (
                Location(outside_sid, 150.0, 0.0, 0.0),
                Location(inside_sid, 50.0, 0.0, 10.0),
                Location(outside_sid, 150.0, 0.0, 20.0),
            ),
        )
        assert clip_trajectories(cropped, [tr]) == []

    def test_cropped_clustering_runs(self, small_workload):
        """End to end: crop a district, clip its traffic, cluster it."""
        from repro.core.config import NEATConfig
        from repro.core.pipeline import NEAT

        network, dataset = small_workload
        min_x, min_y, max_x, max_y = network.bounds()
        mid_x = (min_x + max_x) / 2
        cropped = crop_network(network, min_x, min_y, mid_x, max_y)
        clipped = clip_trajectories(cropped, dataset)
        assert clipped
        result = NEAT(cropped, NEATConfig(min_card=0, eps=400.0)).run_opt(clipped)
        assert result.base_clusters
