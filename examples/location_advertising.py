#!/usr/bin/env python3
"""Location-based advertising: pick billboard/offer placements.

The paper's second motivating application (Section I): "It would be
beneficial for local stores to place advertisements ... to mobile devices
taking path in major traffic flows passing by their stores."

This example clusters a city's traffic with NEAT, then, for a set of
candidate store locations, scores each by the traffic volume of the flow
clusters passing within walking distance, and recommends which stores
should buy mobile ads on which traffic stream.

Run:  python examples/location_advertising.py
"""

import random

from repro.core import NEAT, NEATConfig
from repro.mobisim import SimulationConfig, simulate_dataset
from repro.roadnet import SegmentGridIndex, atlanta_like

WALKING_DISTANCE = 120.0  # metres from a flow to count as "passing by"

network = atlanta_like(scale=0.1)
dataset = simulate_dataset(
    network, SimulationConfig(object_count=500, sample_interval=5.0, name="ads")
)
print(f"Traffic sample: {len(dataset)} trips, {dataset.total_points} points")

# Flow-emphasising weights: advertisers care about how many *distinct*
# devices ride a stream end to end.
result = NEAT(network, NEATConfig(wq=1.0, wk=0.0, wv=0.0, eps=800.0)).run_flow(
    dataset
)
print(f"{result.flow_count} major traffic flows discovered\n")

# Candidate store locations: a geocoded store list would go here.  For
# the demo, half the candidates sit on major corridors (the realistic
# case — retail clusters along traffic) and half at random junctions.
rng = random.Random(4)
on_corridor = [
    node
    for flow in result.flows[:3]
    for node in flow.route_nodes()[1:-1]
]
stores = {}
for i in range(6):
    if i % 2 == 0 and on_corridor:
        stores[f"store-{chr(65 + i)}"] = rng.choice(on_corridor)
    else:
        stores[f"store-{chr(65 + i)}"] = rng.choice(network.node_ids())

index = SegmentGridIndex(network)


def flows_near(node_id):
    """Flows with at least one segment within walking distance."""
    point = network.node_point(node_id)
    nearby_segments = {
        sid for sid, _d in index.segments_within(point, WALKING_DISTANCE)
    }
    return [
        (flow_id, flow)
        for flow_id, flow in enumerate(result.flows)
        if nearby_segments & set(flow.sids)
    ]


print(f"{'store':>8}  {'junction':>8}  {'impressions/trip-set':>20}  streams")
recommendations = []
for store, node_id in sorted(stores.items()):
    hits = flows_near(node_id)
    impressions = len(
        {trid for _fid, flow in hits for trid in flow.participants}
    )
    streams = ", ".join(f"flow {fid}" for fid, _ in hits) or "-"
    recommendations.append((impressions, store))
    print(f"{store:>8}  {node_id:>8}  {impressions:>20}  {streams}")

best = max(recommendations)
print(
    f"\nBest placement: {best[1]} "
    f"(reaches {best[0]} of {len(dataset)} travellers)"
)

# A store off the main flows gets a concrete, data-backed "don't buy".
worst = min(recommendations)
if worst[0] == 0:
    print(f"Skip: {worst[1]} sees no major flow within {WALKING_DISTANCE:.0f} m")
