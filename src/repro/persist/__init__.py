"""Crash-safe persistence: durable store, batch journal, checkpoints.

Layering (each layer only knows the one below):

* :mod:`repro.persist.store` — byte-level durability: atomic writes,
  checksummed frames, SHA-256 sealed snapshots, generation-numbered
  snapshot directories with verified-good fallback.
* :mod:`repro.persist.journal` — an append-only WAL of checksummed
  records with truncation-tolerant replay.
* :mod:`repro.persist.checkpoint` — the snapshot + journal protocol
  (watermarks, compaction, sequence-checked recovery) and the payload
  codecs for trajectory batches and incremental clustering state.

Consumers (``IncrementalNEAT.recover``, ``NeatService``, the pipeline's
resumable runner, ``save_result``/``load_result``) sit on top of
:class:`CheckpointManager` / :class:`~repro.persist.store.SnapshotStore`
and surface failures through the typed
:class:`~repro.errors.PersistenceError` taxonomy.
"""

from .checkpoint import (
    BATCH_FORMAT,
    BATCH_VERSION,
    STATE_FORMAT,
    STATE_VERSION,
    CheckpointManager,
    RecoveredState,
    decode_batch_record,
    encode_batch_record,
    encode_state_payload,
    open_state_document,
    seal_state_document,
)
from .distcache import (
    DISTCACHE_FORMAT,
    DISTCACHE_VERSION,
    decode_distance_cache,
    encode_distance_cache,
    load_distance_cache,
    save_distance_cache,
)
from .journal import BatchJournal
from .store import (
    FrameScan,
    Generation,
    SnapshotStore,
    atomic_write,
    encode_frame,
    scan_frames,
    seal_snapshot,
    unseal_snapshot,
)

__all__ = [
    "BATCH_FORMAT",
    "BATCH_VERSION",
    "DISTCACHE_FORMAT",
    "DISTCACHE_VERSION",
    "STATE_FORMAT",
    "STATE_VERSION",
    "BatchJournal",
    "CheckpointManager",
    "FrameScan",
    "Generation",
    "RecoveredState",
    "SnapshotStore",
    "atomic_write",
    "decode_batch_record",
    "decode_distance_cache",
    "encode_batch_record",
    "encode_distance_cache",
    "encode_frame",
    "encode_state_payload",
    "load_distance_cache",
    "open_state_document",
    "save_distance_cache",
    "scan_frames",
    "seal_snapshot",
    "seal_state_document",
    "unseal_snapshot",
]
