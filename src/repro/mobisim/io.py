"""JSON (de)serialization of trajectory datasets.

Schema (version 1)::

    {
      "format": "repro-trajectories", "version": 1,
      "name": "...", "network_name": "...", "metadata": {...},
      "trajectories": [
        {"trid": 0, "locations": [[sid, x, y, t, node_id|null], ...]},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..core.model import Location, Trajectory, TrajectoryDataset
from ..errors import TrajectoryError

FORMAT_TAG = "repro-trajectories"
FORMAT_VERSION = 1


def dataset_to_dict(dataset: TrajectoryDataset) -> dict[str, Any]:
    """Serialize a dataset to a JSON-compatible dictionary."""
    return {
        "format": FORMAT_TAG,
        "version": FORMAT_VERSION,
        "name": dataset.name,
        "network_name": dataset.network_name,
        "metadata": dict(dataset.metadata),
        "trajectories": [
            {
                "trid": tr.trid,
                "locations": [
                    [loc.sid, loc.x, loc.y, loc.t, loc.node_id]
                    for loc in tr.locations
                ],
            }
            for tr in dataset.trajectories
        ],
    }


def dataset_from_dict(data: dict[str, Any]) -> TrajectoryDataset:
    """Deserialize a dataset from :func:`dataset_to_dict` output."""
    if data.get("format") != FORMAT_TAG:
        raise TrajectoryError(f"not a trajectory document: {data.get('format')!r}")
    if data.get("version") != FORMAT_VERSION:
        raise TrajectoryError(f"unsupported version: {data.get('version')!r}")
    trajectories = []
    for entry in data["trajectories"]:
        locations = tuple(
            Location(
                int(sid), float(x), float(y), float(t),
                None if node_id is None else int(node_id),
            )
            for sid, x, y, t, node_id in entry["locations"]
        )
        trajectories.append(Trajectory(int(entry["trid"]), locations))
    return TrajectoryDataset(
        name=data.get("name", "dataset"),
        trajectories=tuple(trajectories),
        network_name=data.get("network_name", ""),
        metadata=dict(data.get("metadata", {})),
    )


def save_dataset(dataset: TrajectoryDataset, path: str | Path) -> None:
    """Write a dataset to a JSON file."""
    Path(path).write_text(json.dumps(dataset_to_dict(dataset)))


def load_dataset(path: str | Path) -> TrajectoryDataset:
    """Read a dataset from a JSON file produced by :func:`save_dataset`."""
    return dataset_from_dict(json.loads(Path(path).read_text()))
