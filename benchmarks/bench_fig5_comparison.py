"""Figure 5: flow-NEAT vs TraClus across ATL dataset sizes.

The paper's four panels in one table per size: average representative
route length (5a), maximum route length (5b), resulting cluster count
(5c) and running time (5d, the semi-log orders-of-magnitude gap).

TraClus's grouping is O(n^2) in line segments, so the default sweep uses
the ``REPRO_BENCH_TRACLUS_COUNTS`` sizes; the speedup only grows with
scale (the measured column shows it climbing already).
"""

from __future__ import annotations

from conftest import TRACLUS_COUNTS

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.experiments.figures import DEFAULT_EPS, run_fig5
from repro.experiments.workloads import build_suite


def bench_fig5_flow_neat_largest(benchmark, emit):
    """Time flow-NEAT on the largest compared size; report the sweep."""
    network, datasets = build_suite("ATL", TRACLUS_COUNTS)
    neat = NEAT(network, NEATConfig(eps=DEFAULT_EPS["ATL"]))
    result = benchmark.pedantic(
        lambda: neat.run_flow(datasets[-1]), rounds=3, iterations=1
    )
    assert result.flow_count > 0

    fig = run_fig5(object_counts=TRACLUS_COUNTS)
    emit("fig5_comparison", fig.render())
    _emit_charts(fig)

    # Shape assertions mirroring the paper's claims.
    for row in fig.rows:
        assert row.neat_avg_route_m > row.traclus_avg_route_m, "Fig 5a shape"
        assert row.neat_clusters < row.traclus_clusters, "Fig 5c shape"
        assert row.speedup > 10.0, "Fig 5d shape"


def _emit_charts(fig) -> None:
    """Regenerate Figure 5's plots as SVG next to the text table."""
    from conftest import OUTPUT_DIR

    from repro.analysis.charts import LineChart

    runtime = LineChart(
        "Figure 5(d): running time, flow-NEAT vs TraClus",
        x_label="points in dataset",
        y_label="seconds (log scale)",
        log_y=True,
    )
    runtime.add_series("NEAT", [(r.points, r.neat_seconds) for r in fig.rows])
    runtime.add_series(
        "TraClus", [(r.points, r.traclus_seconds) for r in fig.rows]
    )
    runtime.save(OUTPUT_DIR / "fig5d_runtime.svg")

    routes = LineChart(
        "Figure 5(a): average representative route length",
        x_label="points in dataset",
        y_label="metres",
    )
    routes.add_series(
        "NEAT", [(r.points, r.neat_avg_route_m) for r in fig.rows]
    )
    routes.add_series(
        "TraClus", [(r.points, r.traclus_avg_route_m) for r in fig.rows]
    )
    routes.save(OUTPUT_DIR / "fig5a_route_length.svg")
