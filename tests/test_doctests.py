"""Runs the doctest-style examples embedded in docstrings.

Documentation examples that drift from reality are worse than none, so
the modules whose docstrings show runnable snippets are checked here.
"""

from __future__ import annotations

import doctest

import pytest

import repro.core.pipeline
import repro.roadnet.builder
import repro.roadnet.network

MODULES = (
    repro.core.pipeline,
    repro.roadnet.builder,
    repro.roadnet.network,
)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_docstring_examples(module):
    failures, tests = doctest.testmod(
        module, verbose=False, report=True
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert tests > 0, f"{module.__name__} has no doctest examples"
    assert failures == 0
