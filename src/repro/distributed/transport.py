"""The shard-node wire protocol: framed JSON RPC over localhost TCP.

This is the real transport behind the distributed tier — shard nodes
run as separate OS processes (``repro shard-node``) and the coordinator
talks to them through :class:`TransportClient`, so node loss is a
killed process and a refused connect, not a simulated exception.

**Framing** follows :mod:`repro.persist.store`: every message is one
frame of ``magic | payload-length u32 BE | crc32 u32 BE | payload``
with its own magic (``RPW1``).  A frame that ends early is *torn* (the
peer died mid-send — the connection is closed); a complete frame whose
CRC fails is *garbled* (the server answers with a typed error so the
client can tell corruption from loss).

**Handshake**: the first exchange on every connection is a versioned
hello — the client sends ``{"op": "hello", "proto": N}``, the server
accepts or rejects with its own version.  A mismatch raises
:class:`~repro.errors.HandshakeFailed` before any payload moves.

**RPCs** are JSON objects (``sort_keys=True`` end to end, so two
identical runs put byte-identical frames on the wire): ``ping``,
``preprocess`` (Phase 1 over shipped trajectories), ``stats`` and
``shutdown``.  Trajectories and base clusters travel in the location-row
schema of :mod:`repro.core.serialize`.

**Fault injection** is scheduled by the ordinary
:class:`~repro.resilience.FaultPlan` connection-fault fields and
*performed* here, at the socket layer, so the observed errors are
organic:

* ``refuse`` — the client never connects (as if the process is gone);
* ``drop``   — the client sends half the request frame and closes; the
  server sees a torn frame, the client reads EOF;
* ``stall``  — the request carries a ``_stall_s`` chaos field the server
  honors before replying, so the client's real socket timeout fires;
* ``garble`` — one payload bit of the outgoing frame is flipped; the
  server's CRC check rejects it.

Every wire call and failure is counted in the ``transport.*`` family
(requests, bytes, handshakes, errors and one counter per fault kind).
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import struct
import subprocess
import sys
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..core.base_cluster import BaseCluster, form_base_clusters
from ..core.model import Location, TFragment, Trajectory
from ..errors import HandshakeFailed, NodeDown, TransportError
from ..obs import get_logger
from ..resilience import FaultInjector
from ..roadnet.network import RoadNetwork

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteDataNode",
    "ShardNodeServer",
    "ShardProcess",
    "TransportClient",
    "clusters_from_wire",
    "clusters_to_wire",
    "decode_frame",
    "encode_frame",
    "spawn_local_shards",
    "stop_shards",
    "trajectories_from_wire",
    "trajectories_to_wire",
]

_log = get_logger("distributed.transport")

#: Wire protocol version; bumped on any frame- or message-schema change.
PROTOCOL_VERSION = 1

#: Frame header: magic (4) | payload length u32 BE (4) | crc32 u32 BE (4).
FRAME_MAGIC = b"RPW1"
FRAME_HEADER = struct.Struct(">4sII")

#: Upper bound on a single frame payload (a shard of trajectories is
#: megabytes, not gigabytes; anything larger is a corrupt length field).
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Ceiling on the honored chaos stall (a runaway plan must not wedge a
#: server thread forever).
MAX_STALL_S = 30.0


class FrameError(Exception):
    """A complete-but-wrong frame (bad magic, bad CRC, absurd length)."""


class TornFrame(Exception):
    """The stream ended mid-frame (peer died or dropped mid-send)."""


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
def encode_frame(payload: bytes) -> bytes:
    """One wire frame around ``payload``."""
    return FRAME_HEADER.pack(
        FRAME_MAGIC, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    ) + payload


def decode_frame(data: bytes) -> bytes:
    """The payload of a complete frame in ``data`` (exact length).

    Raises:
        TornFrame: ``data`` is shorter than the frame declares.
        FrameError: Bad magic, oversized length, or CRC mismatch.
    """
    if len(data) < FRAME_HEADER.size:
        raise TornFrame(f"{len(data)} byte(s), header needs {FRAME_HEADER.size}")
    magic, length, crc = FRAME_HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    payload = data[FRAME_HEADER.size : FRAME_HEADER.size + length]
    if len(payload) < length:
        raise TornFrame(f"payload {len(payload)}/{length} byte(s)")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameError("crc mismatch")
    return payload


def _read_exact(rfile: Any, count: int) -> bytes:
    """Exactly ``count`` bytes from a socket file, or what EOF left."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = rfile.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(rfile: Any) -> bytes | None:
    """The next frame payload from a socket file.

    Returns ``None`` on a clean EOF at a frame boundary (the peer closed
    the connection between messages — the normal end of a session).

    Raises:
        TornFrame: EOF inside a frame.
        FrameError: A complete frame that fails validation.
    """
    header = _read_exact(rfile, FRAME_HEADER.size)
    if not header:
        return None
    if len(header) < FRAME_HEADER.size:
        raise TornFrame(f"header {len(header)}/{FRAME_HEADER.size} byte(s)")
    magic, length, crc = FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    payload = _read_exact(rfile, length)
    if len(payload) < length:
        raise TornFrame(f"payload {len(payload)}/{length} byte(s)")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameError("crc mismatch")
    return payload


def _encode_message(message: dict[str, Any]) -> bytes:
    return encode_frame(
        json.dumps(message, sort_keys=True).encode("utf-8")
    )


# ----------------------------------------------------------------------
# Payload schemas (the location-row format of repro.core.serialize)
# ----------------------------------------------------------------------
def trajectories_to_wire(
    trajectories: Iterable[Trajectory],
) -> list[dict[str, Any]]:
    """Trajectories as JSON-compatible rows."""
    return [
        {
            "trid": tr.trid,
            "locations": [
                [l.sid, l.x, l.y, l.t, l.node_id] for l in tr.locations
            ],
        }
        for tr in trajectories
    ]


def trajectories_from_wire(rows: Iterable[dict[str, Any]]) -> list[Trajectory]:
    """Trajectories rebuilt from :func:`trajectories_to_wire` output."""
    return [
        Trajectory(
            int(row["trid"]),
            tuple(
                Location(
                    int(sid), float(x), float(y), float(t),
                    None if node_id is None else int(node_id),
                )
                for sid, x, y, t, node_id in row["locations"]
            ),
        )
        for row in rows
    ]


def clusters_to_wire(clusters: Iterable[BaseCluster]) -> list[dict[str, Any]]:
    """Base clusters as JSON-compatible rows (serialize schema)."""
    return [
        {
            "sid": cluster.sid,
            "fragments": [
                {
                    "trid": fragment.trid,
                    "locations": [
                        [l.sid, l.x, l.y, l.t, l.node_id]
                        for l in fragment.locations
                    ],
                }
                for fragment in cluster.fragments
            ],
        }
        for cluster in clusters
    ]


def clusters_from_wire(rows: Iterable[dict[str, Any]]) -> list[BaseCluster]:
    """Base clusters rebuilt from :func:`clusters_to_wire` output."""
    clusters: list[BaseCluster] = []
    for row in rows:
        cluster = BaseCluster(int(row["sid"]))
        for fragment in row["fragments"]:
            locations = tuple(
                Location(
                    int(sid), float(x), float(y), float(t),
                    None if node_id is None else int(node_id),
                )
                for sid, x, y, t, node_id in fragment["locations"]
            )
            cluster.add(
                TFragment(int(fragment["trid"]), locations[0].sid, locations)
            )
        clusters.append(cluster)
    return clusters


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class _ShardTCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Bound by ShardNodeServer before serving starts.
    shard: "ShardNodeServer"


class _ShardHandler(socketserver.StreamRequestHandler):
    """One connection: hello handshake, then request frames until EOF."""

    def handle(self) -> None:  # noqa: D102 - socketserver contract
        shard = self.server.shard  # type: ignore[attr-defined]
        greeted = False
        while True:
            try:
                payload = read_frame(self.rfile)
            except TornFrame as error:
                shard.torn_frames += 1
                _log.debug("torn frame", peer=self.client_address, error=str(error))
                return
            except FrameError as error:
                shard.bad_frames += 1
                self._reply({
                    "ok": False, "kind": "garbled",
                    "error": f"rejected frame: {error}",
                })
                return
            if payload is None:
                return
            try:
                message = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as error:
                shard.bad_frames += 1
                self._reply({
                    "ok": False, "kind": "protocol",
                    "error": f"payload is not JSON: {error}",
                })
                return
            if not greeted:
                if not self._handshake(shard, message):
                    return
                greeted = True
                continue
            if not self._serve_request(shard, message):
                return

    # -- steps ----------------------------------------------------------
    def _handshake(self, shard: "ShardNodeServer", message: dict) -> bool:
        if message.get("op") != "hello":
            shard.bad_frames += 1
            self._reply({
                "ok": False, "kind": "handshake",
                "error": "first message must be a hello",
            })
            return False
        proto = message.get("proto")
        if proto != PROTOCOL_VERSION:
            self._reply({
                "ok": False, "kind": "handshake",
                "error": (
                    f"unsupported protocol version {proto!r} "
                    f"(server speaks {PROTOCOL_VERSION})"
                ),
            })
            return False
        self._reply({
            "ok": True,
            "proto": PROTOCOL_VERSION,
            "node_id": shard.node_id,
            "network": shard.network.name,
        })
        return True

    def _serve_request(self, shard: "ShardNodeServer", message: dict) -> bool:
        stall_s = message.get("_stall_s")
        if stall_s:
            # The chaos hook behind FaultPlan.stall_nth: hold the reply
            # past the client's read deadline so its timeout fires for
            # real.  Bounded so a bad plan cannot wedge the thread.
            time.sleep(min(float(stall_s), MAX_STALL_S))
        op = message.get("op")
        shard.requests += 1
        try:
            if op == "ping":
                self._reply({"ok": True, "result": {"node_id": shard.node_id}})
            elif op == "preprocess":
                payload = message.get("payload") or {}
                trajectories = trajectories_from_wire(
                    payload.get("trajectories", [])
                )
                clusters = form_base_clusters(
                    shard.network,
                    trajectories,
                    keep_interior_points=bool(
                        payload.get("keep_interior_points", False)
                    ),
                )
                shard.preprocess_calls += 1
                shard.trajectories_processed += len(trajectories)
                self._reply({
                    "ok": True,
                    "result": {"clusters": clusters_to_wire(clusters)},
                })
            elif op == "stats":
                self._reply({"ok": True, "result": shard.stats()})
            elif op == "shutdown":
                self._reply({"ok": True, "result": {"stopping": True}})
                shard.request_shutdown()
                return False
            else:
                self._reply({
                    "ok": False, "kind": "protocol",
                    "error": f"unknown op {op!r}",
                })
        except Exception as error:  # surface, never kill the connection loop
            _log.error("request failed", op=op, error=repr(error))
            self._reply({
                "ok": False, "kind": "protocol",
                "error": f"{type(error).__name__}: {error}",
            })
        return True

    def _reply(self, message: dict[str, Any]) -> None:
        try:
            self.wfile.write(_encode_message(message))
            self.wfile.flush()
        except OSError:  # peer vanished mid-reply; nothing to salvage
            pass


class ShardNodeServer:
    """One shard node: serves Phase 1 over its road network on TCP.

    Args:
        network: The (replicated) road network this node preprocesses on.
        node_id: Identifier reported in handshakes and stats.
        host: Bind address (loopback by default).
        port: TCP port; 0 picks an ephemeral one.
    """

    def __init__(
        self,
        network: RoadNetwork,
        node_id: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.network = network
        self.node_id = node_id
        self.requests = 0
        self.preprocess_calls = 0
        self.trajectories_processed = 0
        self.bad_frames = 0
        self.torn_frames = 0
        self._server = _ShardTCPServer((host, port), _ShardHandler)
        self._server.shard = self
        self._thread: threading.Thread | None = None
        self._shutdown_requested = threading.Event()

    # -- address --------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ShardNodeServer":
        """Serve on a daemon thread (idempotent while running)."""
        if self.running:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-shard-node:{self.port}",
            daemon=True,
        )
        self._thread.start()
        _log.info("shard node listening", node=self.node_id, address=self.address)
        return self

    def serve_until_shutdown(self, poll_s: float = 0.2) -> None:
        """Serve on the calling thread until a ``shutdown`` op or signal.

        The blocking mode ``repro shard-node`` uses: :meth:`stop` (e.g.
        from a signal handler) and the wire ``shutdown`` op both return
        control here.
        """
        self.start()
        while self.running and not self._shutdown_requested.wait(poll_s):
            pass
        self.stop()

    def request_shutdown(self) -> None:
        """Ask the serving loop to stop (safe from handler threads)."""
        self._shutdown_requested.set()

    def stop(self) -> None:
        """Shut down and join the serving thread (idempotent)."""
        self._shutdown_requested.set()
        thread = self._thread
        if thread is None:
            return
        self._server.shutdown()
        thread.join(timeout=5.0)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "ShardNodeServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stats(self) -> dict[str, Any]:
        """Served-request counters (the ``stats`` RPC body)."""
        return {
            "node_id": self.node_id,
            "requests": self.requests,
            "preprocess_calls": self.preprocess_calls,
            "trajectories_processed": self.trajectories_processed,
            "bad_frames": self.bad_frames,
            "torn_frames": self.torn_frames,
        }


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class TransportClient:
    """A wire client for one shard node (one connection per call).

    Args:
        host: Shard node address.
        port: Shard node port.
        timeout_s: Socket timeout for connect and reads — the *real*
            deadline a stalled peer runs into.
        faults: Optional injector; when armed against
            ``fault_operation``, connection faults fire at their
            scheduled 1-based call indexes.
        fault_operation: The injection-point name for this client
            (convention: ``transport.node{id}``).
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving the ``transport.*`` counters.
        proto: Protocol version offered in the handshake (overridable
            only to test mismatch handling).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 5.0,
        faults: FaultInjector | None = None,
        fault_operation: str | None = None,
        metrics: Any = None,
        proto: int = PROTOCOL_VERSION,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.faults = faults
        self.fault_operation = fault_operation
        self.metrics = metrics
        self.proto = proto
        self.calls = 0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _inc(self, name: str, description: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount=amount, description=description)

    def _fail(self, kind: str, detail: str) -> TransportError:
        self._inc("transport.errors", "Wire calls that failed")
        counter = {
            "refused": "transport.refused",
            "dropped": "transport.dropped",
            "stalled": "transport.stalled",
            "garbled": "transport.garbled",
        }.get(kind)
        if counter is not None:
            self._inc(counter, f"Wire calls that failed as {kind!r}")
        return TransportError(self.address, kind, detail)

    def call(self, op: str, payload: dict[str, Any] | None = None) -> Any:
        """One RPC: connect, handshake, request, response.

        Returns the response's ``result`` value.

        Raises:
            HandshakeFailed: Version mismatch or a rejected hello.
            TransportError: Any socket-level or protocol failure, with
                ``kind`` naming the failure mode.
        """
        self.calls += 1
        fault = None
        plan = None
        if self.faults is not None and self.fault_operation is not None:
            fault, plan = self.faults.connection_fault(self.fault_operation)
        if fault is not None:
            self.faults.record_injected(self.fault_operation)
        self._inc("transport.requests", "Wire calls issued")

        if fault == "refuse":
            # Never reaches the peer — indistinguishable from a dead
            # process as far as the caller can tell.
            raise self._fail(
                "refused", f"connection refused (injected, call #{self.calls})"
            )
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as error:
            raise self._fail("refused", str(error)) from error

        try:
            with sock:
                rfile = sock.makefile("rb")
                self._handshake(sock, rfile)
                request: dict[str, Any] = {"op": op}
                if payload is not None:
                    request["payload"] = payload
                if fault == "stall":
                    request["_stall_s"] = plan.stall_s
                frame = _encode_message(request)
                if fault == "garble":
                    # Flip one payload bit: the header stays parseable,
                    # the CRC check fails server-side.
                    damaged = bytearray(frame)
                    damaged[FRAME_HEADER.size] ^= 0x01
                    frame = bytes(damaged)
                if fault == "drop":
                    # Half a frame, then a close: the server reads a torn
                    # frame, this client reads EOF where the response
                    # should be.
                    sock.sendall(frame[: max(1, len(frame) // 2)])
                    self._inc(
                        "transport.bytes_sent", "Payload bytes written to the wire",
                        amount=max(1, len(frame) // 2),
                    )
                    sock.shutdown(socket.SHUT_WR)
                else:
                    sock.sendall(frame)
                    self._inc(
                        "transport.bytes_sent", "Payload bytes written to the wire",
                        amount=len(frame),
                    )
                return self._read_response(rfile)
        except TransportError:
            raise
        except socket.timeout as error:
            raise self._fail(
                "stalled", f"no response within {self.timeout_s}s"
            ) from error
        except OSError as error:
            raise self._fail("dropped", str(error)) from error

    # ------------------------------------------------------------------
    def _handshake(self, sock: socket.socket, rfile: Any) -> None:
        hello = _encode_message({"op": "hello", "proto": self.proto})
        sock.sendall(hello)
        self._inc(
            "transport.bytes_sent", "Payload bytes written to the wire",
            amount=len(hello),
        )
        try:
            payload = read_frame(rfile)
        except socket.timeout as error:
            raise self._fail(
                "stalled", f"no handshake within {self.timeout_s}s"
            ) from error
        except (TornFrame, OSError) as error:
            raise self._fail("dropped", f"handshake: {error}") from error
        except FrameError as error:
            raise self._fail("garbled", f"handshake: {error}") from error
        if payload is None:
            raise self._fail("dropped", "connection closed during handshake")
        self._inc(
            "transport.bytes_received", "Payload bytes read from the wire",
            amount=len(payload),
        )
        message = json.loads(payload.decode("utf-8"))
        if not message.get("ok"):
            self._inc("transport.errors", "Wire calls that failed")
            raise HandshakeFailed(
                self.address, str(message.get("error", "rejected"))
            )
        self._inc("transport.handshakes", "Versioned handshakes completed")

    def _read_response(self, rfile: Any) -> Any:
        try:
            payload = read_frame(rfile)
        except socket.timeout as error:
            raise self._fail(
                "stalled", f"no response within {self.timeout_s}s"
            ) from error
        except (TornFrame, OSError) as error:
            raise self._fail("dropped", str(error)) from error
        except FrameError as error:
            raise self._fail("garbled", str(error)) from error
        if payload is None:
            raise self._fail("dropped", "connection closed before the response")
        self._inc(
            "transport.bytes_received", "Payload bytes read from the wire",
            amount=len(payload),
        )
        message = json.loads(payload.decode("utf-8"))
        if message.get("ok"):
            return message.get("result")
        kind = str(message.get("kind", "protocol"))
        detail = str(message.get("error", "request rejected"))
        if kind not in ("refused", "dropped", "stalled", "garbled"):
            kind = "protocol"
        raise self._fail(kind, detail)


# ----------------------------------------------------------------------
# Remote data node (the coordinator-facing adapter)
# ----------------------------------------------------------------------
class RemoteDataNode:
    """A :class:`~repro.distributed.nodes.DataNode` twin over the wire.

    Duck-types the coordinator's node contract (``node_id`` /
    ``healthy`` / ``trajectories`` / ``ingest`` / ``kill`` / ``revive``
    / ``preprocess_batch``) while the actual Phase 1 runs in a shard
    process reached through ``client``.  ``kill`` marks this *stub* dead
    (the coordinator's view); the process itself lives and dies on its
    own.
    """

    def __init__(self, node_id: int, client: TransportClient) -> None:
        self.node_id = node_id
        self.client = client
        self.healthy = True
        self.trajectories: list[Trajectory] = []

    def ingest(self, trajectories: Iterable[Trajectory]) -> None:
        self.trajectories.extend(trajectories)

    def kill(self) -> None:
        self.healthy = False

    def revive(self) -> None:
        self.healthy = True

    def ping(self) -> bool:
        """Whether the shard process answers (never raises)."""
        try:
            self.client.call("ping")
            return True
        except Exception:
            return False

    def preprocess_batch(
        self,
        trajectories: Sequence[Trajectory],
        keep_interior_points: bool = False,
    ) -> list[BaseCluster]:
        """Phase 1 over ``trajectories``, executed in the shard process."""
        if not self.healthy:
            raise NodeDown(self.node_id)
        result = self.client.call(
            "preprocess",
            {
                "trajectories": trajectories_to_wire(trajectories),
                "keep_interior_points": bool(keep_interior_points),
            },
        )
        return clusters_from_wire(result["clusters"])


# ----------------------------------------------------------------------
# Local shard processes
# ----------------------------------------------------------------------
@dataclass
class ShardProcess:
    """One spawned ``repro shard-node`` worker."""

    node_id: int
    process: subprocess.Popen
    host: str
    port: int
    log_path: Path | None = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


def spawn_local_shards(
    network_path: str | Path,
    count: int,
    work_dir: str | Path | None = None,
    log_dir: str | Path | None = None,
    host: str = "127.0.0.1",
    python: str = sys.executable,
    startup_timeout_s: float = 30.0,
) -> list[ShardProcess]:
    """Start ``count`` shard-node worker processes on ephemeral ports.

    Each worker is ``python -m repro shard-node`` over the saved network
    at ``network_path``; its bound port is read back through a
    ``--port-file`` rendezvous.  On any startup failure every spawned
    process is killed before raising — no orphans.

    Args:
        network_path: A saved road-network JSON (``repro.roadnet.io``).
        count: Worker count.
        work_dir: Directory for port files (a temp dir when omitted).
        log_dir: When given, each worker's stdout+stderr goes to
            ``shard-{i}.log`` there (the CI failure artifact).
        host: Bind address for the workers.
        python: Interpreter to launch (defaults to this one).
        startup_timeout_s: Budget for all workers to report their port.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    base = Path(work_dir) if work_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro-shards-")
    )
    base.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = (
        src_root + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src_root
    )

    shards: list[ShardProcess] = []
    handles: list[Any] = []
    try:
        for node_id in range(count):
            port_file = base / f"shard-{node_id}.port"
            port_file.unlink(missing_ok=True)
            log_path = None
            stdout: Any = subprocess.DEVNULL
            if log_dir is not None:
                log_path = Path(log_dir) / f"shard-{node_id}.log"
                log_path.parent.mkdir(parents=True, exist_ok=True)
                stdout = open(log_path, "wb")
                handles.append(stdout)
            process = subprocess.Popen(
                [
                    python, "-m", "repro", "shard-node",
                    "--network", str(network_path),
                    "--node-id", str(node_id),
                    "--host", host,
                    "--port", "0",
                    "--port-file", str(port_file),
                ],
                stdout=stdout,
                stderr=subprocess.STDOUT if log_dir is not None else subprocess.DEVNULL,
                env=env,
            )
            shards.append(ShardProcess(node_id, process, host, 0, log_path))

        deadline = time.monotonic() + startup_timeout_s
        for node_id, shard in enumerate(shards):
            port_file = base / f"shard-{node_id}.port"
            while True:
                text = ""
                if port_file.exists():
                    text = port_file.read_text(encoding="utf-8").strip()
                if text:
                    shard.port = int(text)
                    break
                if shard.process.poll() is not None:
                    raise TransportError(
                        f"{host}:?", "refused",
                        f"shard {node_id} exited with "
                        f"{shard.process.returncode} before binding",
                    )
                if time.monotonic() > deadline:
                    raise TransportError(
                        f"{host}:?", "stalled",
                        f"shard {node_id} did not report a port within "
                        f"{startup_timeout_s}s",
                    )
                time.sleep(0.05)
        # Write pid files after the rendezvous so a supervisor (or a
        # chaos test) can deliver real signals to a specific shard.
        for shard in shards:
            (base / f"shard-{shard.node_id}.pid").write_text(
                f"{shard.process.pid}\n", encoding="utf-8"
            )
    except BaseException:
        stop_shards(shards)
        for handle in handles:
            handle.close()
        raise
    for handle in handles:
        handle.close()
    return shards


def stop_shards(shards: Iterable[ShardProcess], grace_s: float = 5.0) -> None:
    """Terminate shard processes: polite shutdown op, then SIGKILL."""
    shards = list(shards)
    for shard in shards:
        if not shard.alive:
            continue
        try:
            TransportClient(shard.host, shard.port, timeout_s=1.0).call("shutdown")
        except Exception:
            pass
    deadline = time.monotonic() + grace_s
    for shard in shards:
        if not shard.alive:
            continue
        shard.process.terminate()
    for shard in shards:
        try:
            shard.process.wait(timeout=max(0.1, deadline - time.monotonic()))
        except subprocess.TimeoutExpired:
            shard.process.kill()
            shard.process.wait()
