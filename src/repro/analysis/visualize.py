"""SVG visualization of networks, trajectories and clusters.

Regenerates the *kind* of pictures in Figures 3 and 4 of the paper: the
road network in light gray, input trajectories in green, flow clusters /
final clusters as coloured polylines over the map.  Output is plain SVG
with no third-party dependencies, written by :func:`render_svg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..core.flow_cluster import FlowCluster
from ..core.model import Trajectory
from ..core.refinement import TrajectoryCluster
from ..roadnet.network import RoadNetwork

#: Qualitative palette for cluster polylines (colour-blind-safe-ish).
PALETTE = (
    "#c23b22", "#1f6f8b", "#e08e29", "#5a7d2a", "#7b4b94",
    "#b0508e", "#2a9d8f", "#8a5a44", "#4059ad", "#97872b",
)

#: Sequential blue ramp (light -> dark) for magnitude encodings such as
#: the base-cluster density map; one hue, monotone lightness.
SEQUENTIAL_BLUE = (
    "#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5", "#256abf", "#184f95",
    "#0d366b",
)


@dataclass
class SvgScene:
    """An SVG document under construction, in network coordinates.

    The scene flips the y-axis (SVG grows downward, maps grow upward) and
    fits the viewport to the network bounds plus a margin.
    """

    network: RoadNetwork
    width: int = 1000
    margin: float = 30.0
    _elements: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        min_x, min_y, max_x, max_y = self.network.bounds()
        self._min_x, self._min_y = min_x, min_y
        span_x = max(max_x - min_x, 1.0)
        span_y = max(max_y - min_y, 1.0)
        self._scale = (self.width - 2 * self.margin) / span_x
        self.height = int(span_y * self._scale + 2 * self.margin)
        self._max_y = max_y

    # ------------------------------------------------------------------
    def _tx(self, x: float) -> float:
        return (x - self._min_x) * self._scale + self.margin

    def _ty(self, y: float) -> float:
        return (self._max_y - y) * self._scale + self.margin

    def _polyline(self, points, color: str, width: float, opacity: float) -> None:
        coords = " ".join(
            f"{self._tx(p.x):.1f},{self._ty(p.y):.1f}" for p in points
        )
        self._elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="{width}" stroke-opacity="{opacity}" '
            'stroke-linecap="round" stroke-linejoin="round"/>'
        )

    # ------------------------------------------------------------------
    def draw_network(self, color: str = "#cccccc", width: float = 0.8) -> None:
        """Draw every road segment as a light backdrop."""
        for segment in self.network.segments():
            a, b = self.network.segment_endpoints(segment.sid)
            self._polyline((a, b), color, width, 1.0)

    def draw_trajectories(
        self,
        trajectories: Sequence[Trajectory],
        color: str = "#3a7d44",
        width: float = 1.0,
        opacity: float = 0.35,
    ) -> None:
        """Draw raw trajectories (Figure 3a's green traces)."""
        for trajectory in trajectories:
            self._polyline(
                [loc.point for loc in trajectory.locations], color, width, opacity
            )

    def draw_flow(
        self, flow: FlowCluster, color: str, width: float = 3.0, label: str | None = None
    ) -> None:
        """Draw one flow cluster's representative route."""
        points = [self.network.node_point(n) for n in flow.route_nodes()]
        self._polyline(points, color, width, 0.9)
        if label and points:
            mid = points[len(points) // 2]
            self._elements.append(
                f'<text x="{self._tx(mid.x):.1f}" y="{self._ty(mid.y):.1f}" '
                f'font-size="11" fill="{color}">{label}</text>'
            )

    def draw_flows(self, flows: Sequence[FlowCluster], numbered: bool = True) -> None:
        """Draw flows in palette colours (Figure 3b)."""
        for index, flow in enumerate(flows):
            self.draw_flow(
                flow,
                PALETTE[index % len(PALETTE)],
                label=str(index) if numbered else None,
            )

    def draw_clusters(self, clusters: Sequence[TrajectoryCluster]) -> None:
        """Draw final clusters, one colour per cluster (Figure 3c)."""
        for cluster in clusters:
            color = PALETTE[cluster.cluster_id % len(PALETTE)]
            for flow in cluster.flows:
                self.draw_flow(flow, color)

    def draw_density(
        self,
        base_clusters,
        min_density: int = 1,
        width: float = 2.5,
    ) -> None:
        """Shade road segments by base-cluster density (base-NEAT view).

        The paper notes (Section IV-C) that thresholded base clusters
        already show where traffic concentrates; this renders that view:
        each segment carrying at least ``min_density`` t-fragments is
        drawn in the sequential blue ramp, light for sparse, dark for
        dense.  Draw the plain network first for context.
        """
        clusters = [c for c in base_clusters if c.density >= min_density]
        if not clusters:
            return
        top = max(c.density for c in clusters)
        ramp = SEQUENTIAL_BLUE
        for cluster in clusters:
            fraction = cluster.density / top
            step = min(len(ramp) - 1, int(fraction * len(ramp)))
            a, b = self.network.segment_endpoints(cluster.sid)
            self._polyline((a, b), ramp[step], width, 0.95)

    def draw_markers(
        self, node_ids: Sequence[int], color: str = "#d00000", size: float = 6.0
    ) -> None:
        """Draw X markers at junctions (the paper's destination X-signs)."""
        for node_id in node_ids:
            p = self.network.node_point(node_id)
            x, y = self._tx(p.x), self._ty(p.y)
            s = size / 2.0
            self._elements.append(
                f'<path d="M {x - s} {y - s} L {x + s} {y + s} '
                f'M {x - s} {y + s} L {x + s} {y - s}" stroke="{color}" '
                'stroke-width="2" fill="none"/>'
            )

    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        """The finished SVG document."""
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n{body}\n</svg>\n'
        )

    def save(self, path: str | Path) -> Path:
        """Write the SVG to disk and return the path."""
        target = Path(path)
        target.write_text(self.to_svg())
        return target


def render_svg(
    network: RoadNetwork,
    path: str | Path,
    trajectories: Sequence[Trajectory] = (),
    flows: Sequence[FlowCluster] = (),
    clusters: Sequence[TrajectoryCluster] = (),
    markers: Sequence[int] = (),
) -> Path:
    """One-call rendering of the usual map + overlay combination."""
    scene = SvgScene(network)
    scene.draw_network()
    if trajectories:
        scene.draw_trajectories(trajectories)
    if flows:
        scene.draw_flows(flows)
    if clusters:
        scene.draw_clusters(clusters)
    if markers:
        scene.draw_markers(markers)
    return scene.save(path)
