"""OPTICS and Trajectory-OPTICS: the whole-trajectory baseline [24].

The second baseline family the NEAT paper positions against (Section V):
density-based clustering of *entire* trajectories under a synchronized
Euclidean distance.  Included to make the paper's "whole-trajectory
clustering misses partial co-movement" argument measurable.
"""

from .optics import OpticsPoint, UNDEFINED, extract_dbscan, optics_ordering
from .trajectory_optics import (
    TrajectoryOptics,
    TrajectoryOpticsResult,
    position_at,
    trajectory_distance,
)

__all__ = [
    "OpticsPoint",
    "TrajectoryOptics",
    "TrajectoryOpticsResult",
    "UNDEFINED",
    "extract_dbscan",
    "optics_ordering",
    "position_at",
    "trajectory_distance",
]
