"""Unit tests for analysis metrics."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    cluster_summary,
    compare_results,
    flow_continuity,
    flow_route_lengths,
    fragment_coverage,
    trajectory_coverage,
)
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.traclus.grouping import TraClusParams
from repro.traclus.traclus import TraClus

from conftest import trajectory_through


@pytest.fixture
def neat_result(line3):
    trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(4)]
    trs.append(trajectory_through(line3, 9, [0]))
    return NEAT(line3, NEATConfig(min_card=2, eps=500.0)).run_opt(trs), len(trs)


class TestRouteLengths:
    def test_flow_route_lengths(self, neat_result):
        result, _n = neat_result
        summary = flow_route_lengths(result.flows)
        assert summary.count == len(result.flows)
        assert 0.0 < summary.average_m <= summary.maximum_m

    def test_empty(self):
        summary = flow_route_lengths([])
        assert summary.count == 0
        assert summary.average_m == 0.0
        assert summary.maximum_m == 0.0


class TestCoverage:
    def test_fragment_coverage_bounds(self, neat_result):
        result, _n = neat_result
        coverage = fragment_coverage(result)
        assert 0.0 < coverage <= 1.0

    def test_trajectory_coverage(self, neat_result):
        result, n = neat_result
        coverage = trajectory_coverage(result, n)
        # All 5 trajectories touch the kept flow: trajectory 9 joins it
        # through the segment-0 base cluster even though it rides one
        # segment only.
        assert coverage == pytest.approx(1.0)

    def test_trajectory_coverage_zero_inputs(self, neat_result):
        result, _n = neat_result
        assert trajectory_coverage(result, 0) == 0.0


class TestContinuity:
    def test_continuity_reflects_through_traffic(self, neat_result):
        # 4 of the flow's 5 participants traverse every consecutive pair;
        # trajectory 9 rides only the first segment: continuity 4/5.
        result, _n = neat_result
        flow = result.flows[0]
        assert flow_continuity(flow) == pytest.approx(0.8)

    def test_uniform_flow_is_perfectly_continuous(self, line3):
        from repro.core.pipeline import NEAT

        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(4)]
        result = NEAT(line3, NEATConfig(min_card=0, eps=500.0)).run_flow(trs)
        assert flow_continuity(result.flows[0]) == pytest.approx(1.0)

    def test_single_member_flow_is_continuous(self, line3):
        from repro.core.base_cluster import form_base_clusters
        from repro.core.flow_cluster import FlowCluster

        trs = [trajectory_through(line3, 0, [0])]
        clusters = form_base_clusters(line3, trs)
        assert flow_continuity(FlowCluster(line3, clusters[0])) == 1.0


class TestComparison:
    def test_compare_results_row(self, small_workload):
        network, dataset = small_workload
        neat = NEAT(network, NEATConfig(eps=500.0)).run_flow(dataset)
        traclus = TraClus(TraClusParams(eps=10.0, min_lns=3)).run(dataset)
        row = compare_results(dataset.name, dataset.total_points, neat, traclus)
        assert row.dataset == dataset.name
        assert row.points == dataset.total_points
        assert row.neat_seconds > 0.0
        assert row.traclus_seconds > 0.0
        assert row.speedup == pytest.approx(
            row.traclus_seconds / row.neat_seconds
        )

    def test_neat_routes_longer_than_traclus(self, small_workload):
        """The Figure 5a claim on a real workload."""
        network, dataset = small_workload
        neat = NEAT(network, NEATConfig(eps=500.0)).run_flow(dataset)
        traclus = TraClus(TraClusParams(eps=10.0, min_lns=3)).run(dataset)
        row = compare_results(dataset.name, dataset.total_points, neat, traclus)
        assert row.neat_avg_route_m > row.traclus_avg_route_m
        assert row.neat_max_route_m >= row.traclus_max_route_m


class TestClusterSummary:
    def test_summary_rows(self, neat_result):
        result, _n = neat_result
        rows = cluster_summary(result.clusters)
        assert len(rows) == len(result.clusters)
        for row in rows:
            assert row["flows"] >= 1
            assert row["cardinality"] >= 1
