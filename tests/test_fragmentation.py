"""Unit tests for Phase 1 t-fragment extraction."""

from __future__ import annotations

import pytest

from repro.core.fragmentation import (
    fragment_all,
    fragment_trajectory,
    insert_junction_points,
)
from repro.core.model import Location, Trajectory

from conftest import trajectory_through


class TestInsertJunctionPoints:
    def test_same_segment_inserts_nothing(self, line3):
        tr = trajectory_through(line3, 0, [0])
        augmented = insert_junction_points(line3, tr)
        assert len(augmented) == len(tr.locations)
        assert all(not l.is_junction for l in augmented)

    def test_adjacent_segments_insert_shared_junction(self, line3):
        tr = trajectory_through(line3, 0, [0, 1])
        augmented = insert_junction_points(line3, tr)
        junctions = [l for l in augmented if l.is_junction]
        # One crossing -> two co-located marked points (closing/opening).
        assert len(junctions) == 2
        assert junctions[0].node_id == junctions[1].node_id == 1
        assert junctions[0].sid == 0  # closes segment 0
        assert junctions[1].sid == 1  # opens segment 1

    def test_skipped_segment_inserts_both_crossings(self, line3):
        # Samples on segments 0 and 2 only: the object crossed segment 1.
        tr = Trajectory(
            0,
            (
                Location(0, 50.0, 0.0, 0.0),
                Location(2, 250.0, 0.0, 30.0),
            ),
        )
        augmented = insert_junction_points(line3, tr)
        junction_nodes = [l.node_id for l in augmented if l.is_junction]
        assert junction_nodes == [1, 1, 2, 2]

    def test_junction_timestamps_interpolated(self, line3):
        tr = Trajectory(
            0, (Location(0, 50.0, 0.0, 0.0), Location(2, 250.0, 0.0, 30.0))
        )
        augmented = insert_junction_points(line3, tr)
        times = [l.t for l in augmented]
        assert times == sorted(times)
        junction_times = sorted({l.t for l in augmented if l.is_junction})
        assert junction_times == [pytest.approx(10.0), pytest.approx(20.0)]

    def test_junction_coordinates_are_node_positions(self, line3):
        tr = trajectory_through(line3, 0, [0, 1])
        augmented = insert_junction_points(line3, tr)
        for location in augmented:
            if location.is_junction:
                assert location.point == line3.node_point(location.node_id)


class TestFragmentTrajectory:
    def test_single_segment_single_fragment(self, line3):
        fragments = fragment_trajectory(line3, trajectory_through(line3, 7, [0]))
        assert len(fragments) == 1
        assert fragments[0].sid == 0
        assert fragments[0].trid == 7

    def test_route_gives_one_fragment_per_segment(self, line3):
        fragments = fragment_trajectory(line3, trajectory_through(line3, 0, [0, 1, 2]))
        assert [f.sid for f in fragments] == [0, 1, 2]

    def test_consecutive_fragments_adjacent(self, line3):
        fragments = fragment_trajectory(line3, trajectory_through(line3, 0, [0, 1, 2]))
        for a, b in zip(fragments, fragments[1:]):
            assert line3.are_adjacent(a.sid, b.sid)

    def test_boundary_points_only_by_default(self, line3):
        # "only the first and the last point in the original trajectory are
        # kept, together with the newly inserted road junction points".
        tr = Trajectory(
            0,
            tuple(
                Location(0, x, 0.0, float(i))
                for i, x in enumerate((10.0, 30.0, 50.0, 70.0, 90.0))
            ),
        )
        fragments = fragment_trajectory(line3, tr)
        assert len(fragments) == 1
        assert len(fragments[0].locations) == 2
        assert fragments[0].first.x == 10.0
        assert fragments[0].last.x == 90.0

    def test_keep_interior_points(self, line3):
        tr = Trajectory(
            0,
            tuple(
                Location(0, x, 0.0, float(i))
                for i, x in enumerate((10.0, 30.0, 50.0))
            ),
        )
        fragments = fragment_trajectory(line3, tr, keep_interior_points=True)
        assert len(fragments[0].locations) == 3

    def test_middle_fragment_is_junction_to_junction(self, line3):
        fragments = fragment_trajectory(line3, trajectory_through(line3, 0, [0, 1, 2]))
        middle = fragments[1]
        assert middle.first.is_junction
        assert middle.last.is_junction
        assert middle.first.node_id == 1
        assert middle.last.node_id == 2

    def test_direction_preserved(self, line3):
        # Reverse route: direction of movement shows in fragment order and
        # in each fragment's first/last timestamps.
        fragments = fragment_trajectory(line3, trajectory_through(line3, 0, [2, 1, 0]))
        assert [f.sid for f in fragments] == [2, 1, 0]
        for fragment in fragments:
            assert fragment.first.t <= fragment.last.t

    def test_revisited_segment_gives_two_fragments(self, paper_example):
        # T3 leaves and re-enters n1n2 -> two distinct fragments on s1.
        t3 = paper_example.trajectories[2]
        fragments = fragment_trajectory(paper_example.network, t3)
        s1_fragments = [f for f in fragments if f.sid == paper_example.s1]
        assert len(s1_fragments) == 2


class TestFragmentAll:
    def test_concatenates_in_order(self, line3):
        trs = [
            trajectory_through(line3, 0, [0, 1]),
            trajectory_through(line3, 1, [2]),
        ]
        fragments = fragment_all(line3, trs)
        assert [f.trid for f in fragments] == [0, 0, 1]

    def test_empty_input(self, line3):
        assert fragment_all(line3, []) == []
