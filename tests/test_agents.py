"""Unit tests for route-walk kinematics."""

from __future__ import annotations

import pytest

from repro.mobisim.agents import RouteWalk
from repro.roadnet.builder import line_network
from repro.roadnet.shortest_path import Route, shortest_route


@pytest.fixture
def walk3():
    net = line_network(3, segment_length=100.0, speed_limit=10.0)
    route = shortest_route(net, 0, 3)
    return net, RouteWalk(net, route, start_time=100.0)


class TestConstruction:
    def test_rejects_empty_route(self, line3):
        with pytest.raises(ValueError):
            RouteWalk(line3, Route((0,), (), 0.0))

    def test_rejects_bad_speed_factor(self, line3):
        route = shortest_route(line3, 0, 1)
        with pytest.raises(ValueError):
            RouteWalk(line3, route, speed_factor=0.0)
        with pytest.raises(ValueError):
            RouteWalk(line3, route, speed_factor=1.5)


class TestTiming:
    def test_duration_at_speed_limit(self, walk3):
        _net, walk = walk3
        # 300 m at 10 m/s = 30 s.
        assert walk.duration == pytest.approx(30.0)
        assert walk.arrival_time == pytest.approx(130.0)

    def test_speed_factor_slows_travel(self):
        net = line_network(1, segment_length=100.0, speed_limit=10.0)
        route = shortest_route(net, 0, 1)
        walk = RouteWalk(net, route, speed_factor=0.5)
        assert walk.duration == pytest.approx(20.0)


class TestPositions:
    def test_before_departure_clamps_to_start(self, walk3):
        net, walk = walk3
        sample = walk.position_at(0.0)
        assert sample.point == net.node_point(0)
        assert sample.sid == 0

    def test_after_arrival_clamps_to_destination(self, walk3):
        net, walk = walk3
        sample = walk.position_at(1e9)
        assert sample.point == net.node_point(3)
        assert sample.sid == 2

    def test_midway_position(self, walk3):
        _net, walk = walk3
        # 15 s in: 150 m along, i.e. middle of the second segment.
        sample = walk.position_at(115.0)
        assert sample.sid == 1
        assert sample.point.x == pytest.approx(150.0)

    def test_positions_progress_monotonically(self, walk3):
        _net, walk = walk3
        xs = [walk.position_at(100.0 + t).point.x for t in range(0, 31, 3)]
        assert xs == sorted(xs)

    def test_position_at_segment_boundary(self, walk3):
        _net, walk = walk3
        sample = walk.position_at(110.0)  # exactly at node 1
        assert sample.point.x == pytest.approx(100.0)


class TestSampleTimes:
    def test_includes_departure_and_arrival(self, walk3):
        _net, walk = walk3
        times = walk.sample_times(10.0)
        assert times[0] == pytest.approx(100.0)
        assert times[-1] == pytest.approx(130.0)

    def test_interval_spacing(self, walk3):
        _net, walk = walk3
        times = walk.sample_times(7.0)
        for a, b in zip(times[:-2], times[1:-1]):
            assert b - a == pytest.approx(7.0)

    def test_rejects_non_positive_interval(self, walk3):
        _net, walk = walk3
        with pytest.raises(ValueError):
            walk.sample_times(0.0)
