"""Tests for the HMM (Viterbi) map matcher."""

from __future__ import annotations

import pytest

from repro.errors import MapMatchError
from repro.mapmatch.hmm import HmmConfig, HmmMatcher
from repro.mapmatch.slamm import MatchConfig, SlammMatcher
from repro.mobisim.noise import degrade_dataset
from repro.mobisim.simulator import SimulationConfig, simulate_dataset
from repro.roadnet.builder import network_from_edges
from repro.roadnet.generators import GridConfig, generate_grid_network


class TestBasics:
    def test_needs_two_fixes(self, grid3x3):
        with pytest.raises(MapMatchError):
            HmmMatcher(grid3x3).match_fixes(0, [(50.0, 0.0, 0.0)])

    def test_unmatchable_fix_raises(self, grid3x3):
        with pytest.raises(MapMatchError):
            HmmMatcher(grid3x3).match_fixes(
                0, [(50.0, 0.0, 0.0), (1e7, 1e7, 1.0)]
            )

    def test_clean_drive_matches(self, grid3x3):
        matcher = HmmMatcher(grid3x3)
        fixes = [(20.0, 0.0, 0.0), (80.0, 0.0, 6.0), (120.0, 0.0, 12.0),
                 (180.0, 0.0, 18.0)]
        matched = matcher.match_fixes(3, fixes)
        sids = [l.sid for l in matched.locations]
        assert sids[0] == sids[1]
        assert sids[2] == sids[3]
        assert grid3x3.are_adjacent(sids[0], sids[2])

    def test_snapped_and_timed(self, grid3x3):
        from repro.roadnet.geometry import point_segment_distance

        matched = HmmMatcher(grid3x3).match_fixes(
            0, [(20.0, 4.0, 1.0), (80.0, -4.0, 7.0)]
        )
        assert [l.t for l in matched.locations] == [1.0, 7.0]
        for location in matched.locations:
            a, b = grid3x3.segment_endpoints(location.sid)
            assert point_segment_distance(location.point, a, b) < 1e-9


class TestGlobalDecoding:
    def test_viterbi_resists_single_outlier(self):
        # Lower road driven end to end; the middle fix leans toward a
        # parallel upper road.  Global decoding must keep the whole path
        # on the lower road (a greedy matcher may or may not).
        net = network_from_edges(
            [(0, 0), (400, 0), (0, 30), (400, 30)],
            [(0, 1), (2, 3), (0, 2), (1, 3)],
        )
        matcher = HmmMatcher(net, HmmConfig(sigma=10.0))
        fixes = [
            (50.0, 2.0, 0.0),
            (200.0, 17.0, 10.0),  # outlier leaning to the upper road
            (350.0, 1.0, 20.0),
        ]
        matched = matcher.match_fixes(0, fixes)
        assert [l.sid for l in matched.locations] == [0, 0, 0]

    def test_accuracy_on_noisy_traces(self):
        net = generate_grid_network(GridConfig(rows=9, cols=9, seed=33))
        dataset = simulate_dataset(net, SimulationConfig(object_count=15, seed=33))
        raws = degrade_dataset(dataset, sigma=6.0, seed=33)
        matcher = HmmMatcher(net, HmmConfig(sigma=6.0))
        correct = total = 0
        for truth, raw in zip(dataset, raws):
            matched = matcher.match_trace(raw)
            for a, b in zip(truth.locations, matched.locations):
                total += 1
                correct += a.sid == b.sid
        assert correct / total > 0.85

    def test_hmm_comparable_to_slamm_on_heavy_noise(self):
        net = generate_grid_network(GridConfig(rows=9, cols=9, seed=34))
        dataset = simulate_dataset(net, SimulationConfig(object_count=15, seed=34))
        raws = degrade_dataset(dataset, sigma=12.0, seed=34)

        def accuracy(matcher):
            correct = total = 0
            for truth, raw in zip(dataset, raws):
                matched = matcher.match_trace(raw)
                for a, b in zip(truth.locations, matched.locations):
                    total += 1
                    correct += a.sid == b.sid
            return correct / total

        hmm = accuracy(HmmMatcher(net, HmmConfig(sigma=12.0)))
        slamm = accuracy(SlammMatcher(net, MatchConfig(sigma=12.0)))
        # The matchers trade within a few samples of each other at this
        # scale; both must stay in the mid-80s under 12 m noise.
        assert hmm > 0.8
        assert abs(hmm - slamm) < 0.05
