"""Checkpoint orchestration: snapshot generations + journal, as one unit.

A :class:`CheckpointManager` owns the two halves of a state directory::

    <state_dir>/
      snapshots/gen-00000007-w00000042.snap   sealed state snapshots
      journal.wal                             committed-batch WAL

and enforces the protocol between them:

* a **batch record** is appended (and fsynced) only after the batch was
  applied in memory — the journal is a redo log of *committed* batches,
  so replay can never introduce a batch the live process rolled back;
* a **checkpoint** writes a new snapshot generation whose filename
  carries the *watermark* (how many batches it contains), then compacts
  the journal down to the records still needed by the **oldest retained
  generation** — which is what keeps the corrupt-newest fallback exact:
  an older generation plus the surviving journal suffix reconstructs
  precisely the newest durable state;
* :meth:`load` returns the newest verified snapshot, the decoded journal
  records past its watermark (sequence-checked: a gap is corruption,
  not data), and repairs any torn tail so future appends are clean.

Payload codecs for trajectory batches and the incremental-state envelope
live here too, so the store/journal layers stay byte-oriented.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from ..core.model import Location, Trajectory
from ..errors import CorruptSnapshot
from ..obs import get_logger
from .journal import BatchJournal
from .store import SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from ..resilience import FaultInjector

_log = get_logger("persist.checkpoint")

STATE_FORMAT = "repro-incremental-state"
STATE_VERSION = 1
BATCH_FORMAT = "repro-journal-batch"
BATCH_VERSION = 1


# ----------------------------------------------------------------------
# Batch record codec
# ----------------------------------------------------------------------
def _trajectory_to_lists(trajectory: Trajectory) -> dict[str, Any]:
    return {
        "trid": trajectory.trid,
        "locations": [
            [l.sid, l.x, l.y, l.t, l.node_id] for l in trajectory.locations
        ],
    }


def _trajectory_from_lists(data: dict[str, Any]) -> Trajectory:
    locations = tuple(
        Location(int(sid), float(x), float(y), float(t),
                 None if node_id is None else int(node_id))
        for sid, x, y, t, node_id in data["locations"]
    )
    return Trajectory(int(data["trid"]), locations)


def encode_batch_record(seq: int, trajectories: Sequence[Trajectory]) -> bytes:
    """One committed batch as a canonical JSON payload."""
    document = {
        "format": BATCH_FORMAT,
        "version": BATCH_VERSION,
        "seq": seq,
        "trajectories": [_trajectory_to_lists(tr) for tr in trajectories],
    }
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_batch_record(
    payload: bytes, source: str | Path
) -> tuple[int, list[Trajectory]]:
    """The inverse of :func:`encode_batch_record`.

    Raises:
        CorruptSnapshot: The payload passed its frame checksum but does
            not decode to a well-formed batch record (never returns a
            partially-built batch).
    """
    try:
        document = json.loads(payload.decode("utf-8"))
        if document.get("format") != BATCH_FORMAT:
            raise ValueError(f"not a batch record: {document.get('format')!r}")
        if document.get("version") != BATCH_VERSION:
            raise ValueError(f"unsupported version: {document.get('version')!r}")
        seq = int(document["seq"])
        trajectories = [
            _trajectory_from_lists(entry) for entry in document["trajectories"]
        ]
    except CorruptSnapshot:
        raise
    except Exception as error:
        raise CorruptSnapshot(source, f"undecodable batch record: {error}") from error
    return seq, trajectories


_SEQ_PEEK = re.compile(rb'"seq":\s*(\d+)')


def peek_seq(payload: bytes, source: str | Path) -> int:
    """The record's sequence number without decoding its trajectories.

    ``sort_keys`` places ``"seq"`` right after the format tag, so the
    scan never has to look past the first hundred bytes; anything the
    pattern misses falls back to the full (typed) decode.
    """
    match = _SEQ_PEEK.search(payload[:128])
    if match is not None:
        return int(match.group(1))
    seq, _ = decode_batch_record(payload, source)
    return seq


# ----------------------------------------------------------------------
# Incremental-state envelope
# ----------------------------------------------------------------------
def _dumps_canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_state_payload(
    document: dict[str, Any],
    text_cache: dict[int, tuple[Any, ...]] | None = None,
) -> bytes:
    """Serialize a state envelope to JSON bytes, memoizing fragment text.

    The hot cost of a per-batch checkpoint is re-encoding the base
    clusters, which never change once built (``result_to_dict``'s
    ``fragment_cache`` returns the *same* entry dicts each call).  With
    a ``text_cache`` (keyed by entry identity, each record pinning its
    entry so ids are never recycled), only clusters new since the last
    checkpoint are rendered; the rest is string assembly.  The output
    is plain JSON that parses back to the identical document either
    way.
    """
    if text_cache is None:
        return _dumps_canonical(document).encode("utf-8")

    def clusters_bytes(entries: list[dict[str, Any]]) -> bytes:
        # Prefix memo: base clusters only ever *append* between
        # checkpoints (``result_to_dict``'s fragment cache returns the
        # *same* entry dicts for unchanged clusters), so the previously
        # rendered bytes are reused verbatim when the new list starts
        # with the same entries — checked by identity — and only the new
        # suffix is rendered, in a single C-speed ``json.dumps`` call.
        # Caching *bytes* (not str) means unchanged clusters are never
        # UTF-8 re-encoded either.
        ids = [id(e) for e in entries]
        hit = text_cache.get("__clusters__")
        if hit is not None and hit[1] <= len(ids) and hit[2] == ids[: hit[1]]:
            joined = hit[3]
            if len(ids) > hit[1]:
                suffix = _dumps_canonical(entries[hit[1]:])[1:-1].encode("utf-8")
                joined = joined + b"," + suffix if joined else suffix
        else:
            joined = _dumps_canonical(entries)[1:-1].encode("utf-8")
        # Entries are pinned so the recorded ids stay unambiguous.
        text_cache["__clusters__"] = (list(entries), len(ids), ids, joined)
        return b"[%s]" % joined

    parts = []
    for key in sorted(document):
        if key == "result":
            result = document["result"]
            inner = []
            for rkey in sorted(result):
                if rkey == "base_clusters":
                    value = clusters_bytes(result["base_clusters"])
                else:
                    value = _dumps_canonical(result[rkey]).encode("utf-8")
                inner.append(b'"%s":%s' % (rkey.encode("utf-8"), value))
            value = b"{%s}" % b",".join(inner)
        else:
            value = _dumps_canonical(document[key]).encode("utf-8")
        parts.append(b'"%s":%s' % (key.encode("utf-8"), value))
    return b"{%s}" % b",".join(parts)


def seal_state_document(
    watermark: int,
    seen_trids: Sequence[int],
    network_name: str,
    result_document: dict[str, Any],
) -> dict[str, Any]:
    """The versioned envelope around a serialized incremental state."""
    return {
        "format": STATE_FORMAT,
        "version": STATE_VERSION,
        "watermark": int(watermark),
        "seen_trids": sorted(int(trid) for trid in seen_trids),
        "network_name": network_name,
        "result": result_document,
    }


def open_state_document(
    document: dict[str, Any], source: str | Path
) -> tuple[int, list[int], str, dict[str, Any]]:
    """Validate and unpack a state envelope.

    Raises:
        CorruptSnapshot: Wrong format tag/version or missing fields.
    """
    try:
        if document.get("format") != STATE_FORMAT:
            raise ValueError(
                f"not an incremental state: {document.get('format')!r}"
            )
        if document.get("version") != STATE_VERSION:
            raise ValueError(f"unsupported version: {document.get('version')!r}")
        watermark = int(document["watermark"])
        seen_trids = [int(trid) for trid in document["seen_trids"]]
        network_name = str(document.get("network_name", ""))
        result_document = document["result"]
    except CorruptSnapshot:
        raise
    except Exception as error:
        raise CorruptSnapshot(source, f"undecodable state envelope: {error}") from error
    return watermark, seen_trids, network_name, result_document


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------
@dataclass
class RecoveredState:
    """What :meth:`CheckpointManager.load` found on disk.

    Attributes:
        generation: The verified snapshot generation used (None: no
            snapshot — recovery starts from an empty state).
        watermark: Batches already contained in that snapshot (0 without
            one).
        state: The decoded state envelope (None without a snapshot).
        batches: ``(seq, trajectories)`` journal records past the
            watermark, contiguous and in order.
        torn_tail: Whether a half-written journal record was dropped.
    """

    generation: int | None = None
    watermark: int = 0
    state: dict[str, Any] | None = None
    batches: list[tuple[int, list[Trajectory]]] = field(default_factory=list)
    torn_tail: bool = False


class CheckpointManager:
    """Snapshot store + batch journal under one state directory."""

    def __init__(
        self,
        state_dir: str | Path,
        keep: int = 3,
        fsync: bool = True,
        faults: "FaultInjector | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.snapshots = SnapshotStore(
            self.state_dir / "snapshots",
            keep=keep, fsync=fsync, faults=faults, metrics=metrics,
        )
        self.journal = BatchJournal(
            self.state_dir / "journal.wal",
            fsync=fsync, faults=faults, metrics=metrics,
        )
        self.metrics = metrics
        # A torn tail left by a crashed append would corrupt the next
        # append (frames must start on a boundary) — repair eagerly.
        self.journal.repair()

    # ------------------------------------------------------------------
    def record_batch(self, seq: int, trajectories: Sequence[Trajectory]) -> None:
        """Durably journal one committed batch.

        If the append dies half-way the batch is rolled back by the
        caller, so the torn record must not stay in front of future
        appends: a surviving process truncates it immediately (a killed
        process leaves it for :meth:`BatchJournal.repair` on next load).
        """
        try:
            self.journal.append(encode_batch_record(seq, trajectories))
        except BaseException:
            try:
                self.journal.repair()
            except OSError:  # pragma: no cover - best effort
                pass
            raise

    def write_checkpoint(
        self,
        state_document: dict[str, Any],
        text_cache: dict[int, tuple[Any, ...]] | None = None,
    ) -> int:
        """Write a snapshot generation, then compact the journal.

        The envelope's ``watermark`` rides in the generation's filename.
        A crash between the two steps is safe: the new generation plus
        the not-yet-compacted journal still replays to the same state
        (records below the watermark are skipped on load).
        """
        watermark = int(state_document.get("watermark", 0))
        payload = encode_state_payload(state_document, text_cache)
        generation = self.snapshots.write(payload, watermark=watermark)
        self._compact_journal()
        return generation

    def _compact_journal(self) -> None:
        """Drop journal records every retained generation already contains."""
        floor = self.snapshots.oldest_watermark()
        if floor is None or not self.journal.path.exists():
            return
        scan = self.journal.replay()
        kept: list[bytes] = []
        for payload in scan.payloads:
            if peek_seq(payload, self.journal.path) >= floor:
                kept.append(payload)
        if len(kept) != len(scan.payloads) or scan.torn:
            self.journal.rewrite(kept)

    # ------------------------------------------------------------------
    def load(self) -> RecoveredState:
        """Newest verified snapshot + the journal records past its watermark.

        Raises:
            CorruptSnapshot: Every snapshot generation failed
                verification, a journal record is undecodable, or the
                journal has a sequence gap (missing committed batches).
        """
        recovered = RecoveredState()
        latest = self.snapshots.read_latest()
        if latest is not None:
            generation, payload = latest
            try:
                document = json.loads(payload.decode("utf-8"))
            except ValueError as error:
                raise CorruptSnapshot(
                    generation.path, f"sealed payload is not JSON: {error}"
                ) from error
            watermark, _, _, _ = open_state_document(document, generation.path)
            recovered.generation = generation.number
            recovered.watermark = watermark
            recovered.state = document
            if watermark != generation.watermark:
                raise CorruptSnapshot(
                    generation.path,
                    f"filename watermark {generation.watermark} disagrees "
                    f"with envelope watermark {watermark}",
                )

        scan = self.journal.replay()
        recovered.torn_tail = scan.torn
        expected = recovered.watermark
        for payload in scan.payloads:
            seq, trajectories = decode_batch_record(payload, self.journal.path)
            if seq < recovered.watermark:
                continue  # already inside the snapshot
            if seq != expected:
                raise CorruptSnapshot(
                    self.journal.path,
                    f"journal sequence gap: expected batch {expected}, "
                    f"found {seq}",
                )
            expected += 1
            recovered.batches.append((seq, trajectories))
        if scan.torn:
            self.journal.repair()
        _log.info(
            "state loaded",
            generation=recovered.generation,
            watermark=recovered.watermark,
            journal_batches=len(recovered.batches),
            torn_tail=recovered.torn_tail,
        )
        return recovered
