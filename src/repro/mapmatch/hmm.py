"""HMM map matching (Newson-Krumm style Viterbi decoding).

An alternative to the SLAMM matcher: hidden states are candidate
segments per fix, emission likelihood falls off with projection distance
(Gaussian), and transition likelihood falls off with the discrepancy
between the fix-to-fix straight-line distance and the corresponding
network route distance (exponential).  Viterbi decoding then yields the
globally most likely segment sequence, where SLAMM commits greedily with
a bounded look-ahead.

Included as a substrate extension: the paper only needs *a* bulk matcher
([14]); having two lets the tests and benches quantify the trade-off
(HMM is more robust on dense ambiguous grids, SLAMM is faster).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.model import Location, Trajectory
from ..errors import MapMatchError
from ..roadnet.geometry import Point
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import INFINITY, ShortestPathEngine
from ..roadnet.spatial_index import SegmentGridIndex
from .candidates import Candidate, CandidateFinder


@dataclass(frozen=True, slots=True)
class HmmConfig:
    """Tuning knobs of the HMM matcher.

    Attributes:
        sigma: GPS noise standard deviation in metres (emission model).
        beta: Scale of the exponential transition model in metres —
            tolerated discrepancy between great-circle and route distance.
        max_candidates: Candidate states kept per fix.
        max_route_factor: Transitions whose route distance exceeds the
            straight-line distance by more than this factor are pruned
            (an object cannot detour arbitrarily between two fixes).
    """

    sigma: float = 5.0
    beta: float = 15.0
    max_candidates: int = 6
    max_route_factor: float = 8.0
    heading_weight: float = 2.0
    min_heading_displacement: float = 2.0


class HmmMatcher:
    """Viterbi map matcher over per-fix candidate segments.

    Args:
        network: Road network to match against.
        config: HMM parameters.
        index: Optional shared spatial index.
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: HmmConfig | None = None,
        index: SegmentGridIndex | None = None,
    ) -> None:
        self._network = network
        self.config = config if config is not None else HmmConfig()
        self._finder = CandidateFinder(network, index=index)
        self._engine = ShortestPathEngine(network, directed=False)

    # ------------------------------------------------------------------
    def match_fixes(
        self, trid: int, fixes: list[tuple[float, float, float]]
    ) -> Trajectory:
        """Match ``(x, y, t)`` fixes via Viterbi decoding.

        Raises:
            MapMatchError: when a fix has no candidates, or no transition
                survives pruning anywhere (fully broken trace).
        """
        if len(fixes) < 2:
            raise MapMatchError(f"trace {trid}: needs at least 2 fixes")
        points = [Point(x, y) for x, y, _t in fixes]
        layers = [
            self._finder.candidates(p, limit=self.config.max_candidates)
            for p in points
        ]
        for i, layer in enumerate(layers):
            if not layer:
                raise MapMatchError(f"trace {trid}: fix {i} matches no segment")

        # Viterbi over log-probabilities.
        scores = [self._emission(c) for c in layers[0]]
        parents: list[list[int]] = [[-1] * len(layers[0])]
        for i in range(1, len(layers)):
            straight = points[i - 1].distance_to(points[i])
            layer_scores: list[float] = []
            layer_parents: list[int] = []
            for candidate in layers[i]:
                best_score = -INFINITY
                best_parent = 0
                for j, previous in enumerate(layers[i - 1]):
                    transition = self._transition(previous, candidate, straight)
                    total = scores[j] + transition
                    if total > best_score:
                        best_score = total
                        best_parent = j
                emission = self._emission(candidate) + self._heading_bonus(
                    points[i - 1], points[i], candidate
                )
                layer_scores.append(best_score + emission)
                layer_parents.append(best_parent)
            scores = layer_scores
            parents.append(layer_parents)

        if all(score == -INFINITY for score in scores):
            raise MapMatchError(f"trace {trid}: no feasible segment path")

        # Backtrack.
        best_index = max(range(len(scores)), key=scores.__getitem__)
        chosen_indices = [best_index]
        for i in range(len(layers) - 1, 0, -1):
            chosen_indices.append(parents[i][chosen_indices[-1]])
        chosen_indices.reverse()

        locations = []
        for i, index in enumerate(chosen_indices):
            candidate = layers[i][index]
            locations.append(
                Location(candidate.sid, candidate.snapped.x, candidate.snapped.y,
                         fixes[i][2])
            )
        return Trajectory(trid, tuple(locations))

    def match_trace(self, trace) -> Trajectory:
        """Match a :class:`~repro.mobisim.noise.RawTrace`."""
        return self.match_fixes(trace.trid, [(f.x, f.y, f.t) for f in trace.fixes])

    # ------------------------------------------------------------------
    def _emission(self, candidate: Candidate) -> float:
        """Log of the Gaussian emission likelihood (constants dropped)."""
        z = candidate.distance / max(self.config.sigma, 1e-9)
        return -0.5 * z * z

    def _heading_bonus(self, a: Point, b: Point, candidate: Candidate) -> float:
        """Log-penalty for candidates misaligned with the fix heading.

        Breaks the junction ties pure distance emission cannot: at an
        intersection both roads are equally close, but only one points
        the way the object is moving.
        """
        displacement = a.distance_to(b)
        if displacement < self.config.min_heading_displacement:
            return 0.0
        from ..roadnet.geometry import angle_between, heading

        seg_a, seg_b = self._network.segment_endpoints(candidate.sid)
        mismatch = angle_between(heading(a, b), heading(seg_a, seg_b))
        if self._network.segment(candidate.sid).bidirectional:
            mismatch = min(mismatch, math.pi - mismatch)
        return -self.config.heading_weight * (mismatch / (math.pi / 2.0))

    def _transition(
        self, previous: Candidate, candidate: Candidate, straight: float
    ) -> float:
        """Log of the exponential transition likelihood.

        Route distance between the two snapped positions is approximated
        by the shortest junction-to-junction path between the segments'
        nearest endpoints plus the on-segment offsets; same-segment
        transitions use the on-segment displacement directly.
        """
        route = self._route_distance(previous, candidate)
        if route > self.config.max_route_factor * max(straight, 25.0):
            return -INFINITY
        discrepancy = abs(route - straight)
        return -discrepancy / max(self.config.beta, 1e-9)

    def _route_distance(self, previous: Candidate, candidate: Candidate) -> float:
        if previous.sid == candidate.sid:
            return previous.snapped.distance_to(candidate.snapped)
        seg_a = self._network.segment(previous.sid)
        seg_b = self._network.segment(candidate.sid)
        best = INFINITY
        for exit_node in seg_a.endpoints:
            exit_offset = previous.snapped.distance_to(
                self._network.node_point(exit_node)
            )
            for entry_node in seg_b.endpoints:
                entry_offset = candidate.snapped.distance_to(
                    self._network.node_point(entry_node)
                )
                between = self._engine.distance(exit_node, entry_node)
                best = min(best, exit_offset + between + entry_offset)
        return best
