"""Unit tests for the FlowCluster container."""

from __future__ import annotations

import pytest

from repro.core.base_cluster import BaseCluster, form_base_clusters
from repro.core.flow_cluster import FlowCluster
from repro.core.model import Location, TFragment
from repro.errors import ClusteringError

from conftest import trajectory_through


def frag(trid: int, sid: int) -> TFragment:
    return TFragment(
        trid, sid, (Location(sid, 0.0, 0.0, 0.0), Location(sid, 1.0, 0.0, 1.0))
    )


def cluster(sid: int, trids=(0,)) -> BaseCluster:
    c = BaseCluster(sid)
    for trid in trids:
        c.add(frag(trid, sid))
    return c


class TestSeed:
    def test_initial_endpoints(self, line3):
        flow = FlowCluster(line3, cluster(1))
        assert flow.front_node == 1
        assert flow.end_node == 2
        assert flow.sids == (1,)
        assert len(flow) == 1


class TestAppendPrepend:
    def test_append_advances_end(self, line3):
        flow = FlowCluster(line3, cluster(0))
        flow.append(cluster(1))
        assert flow.sids == (0, 1)
        assert flow.end_node == 2
        assert flow.front_node == 0

    def test_prepend_advances_front(self, line3):
        flow = FlowCluster(line3, cluster(1))
        flow.prepend(cluster(0))
        assert flow.sids == (0, 1)
        assert flow.front_node == 0
        assert flow.end_node == 2

    def test_append_rejects_disconnected(self, line3):
        flow = FlowCluster(line3, cluster(0))
        with pytest.raises(ClusteringError):
            flow.append(cluster(2))  # segment 2 does not touch node 1

    def test_route_is_network_route(self, line3):
        flow = FlowCluster(line3, cluster(1))
        flow.append(cluster(2))
        flow.prepend(cluster(0))
        assert line3.is_route(flow.sids)
        assert flow.route_nodes() == [0, 1, 2, 3]

    def test_route_length(self, line3):
        flow = FlowCluster(line3, cluster(0))
        flow.append(cluster(1))
        assert flow.route_length == pytest.approx(200.0)


class TestAggregates:
    def test_participants_union(self, line3):
        flow = FlowCluster(line3, cluster(0, (1, 2)))
        flow.append(cluster(1, (2, 3)))
        assert flow.participants == frozenset({1, 2, 3})
        assert flow.trajectory_cardinality == 3

    def test_density_sums_fragments(self, line3):
        flow = FlowCluster(line3, cluster(0, (1, 2)))
        flow.append(cluster(1, (2,)))
        assert flow.density == 3

    def test_netflow_with(self, line3):
        flow = FlowCluster(line3, cluster(0, (1, 2)))
        assert flow.netflow_with(cluster(1, (2, 3))) == 1

    def test_participants_cache_invalidated(self, line3):
        flow = FlowCluster(line3, cluster(0, (1,)))
        assert flow.trajectory_cardinality == 1
        flow.append(cluster(1, (2,)))
        assert flow.trajectory_cardinality == 2

    def test_iter_members(self, line3):
        flow = FlowCluster(line3, cluster(0))
        flow.append(cluster(1))
        assert [m.sid for m in flow] == [0, 1]


class TestIntegrationWithPhase1(object):
    def test_flow_over_formed_clusters(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(3)]
        clusters = form_base_clusters(line3, trs)
        by_sid = {c.sid: c for c in clusters}
        flow = FlowCluster(line3, by_sid[1])
        flow.append(by_sid[2])
        flow.prepend(by_sid[0])
        assert flow.trajectory_cardinality == 3
        assert flow.endpoints == (0, 3)
