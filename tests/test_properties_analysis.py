"""Property-based tests for the analysis utilities and IO paths.

Batch 3 of the hypothesis suites: CSV round-trips over generated
networks, OD-matrix conservation laws, hotspot-area partitioning, and
bounding-box crop monotonicity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hotspot_detection import detect_hotspots
from repro.analysis.odmatrix import od_matrix
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.mobisim.simulator import SimulationConfig, simulate_dataset
from repro.roadnet.generators import GridConfig, generate_grid_network
from repro.roadnet.subnetwork import clip_trajectories, crop_network

grid_configs = st.builds(
    GridConfig,
    rows=st.integers(min_value=4, max_value=8),
    cols=st.integers(min_value=4, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)


@st.composite
def workloads(draw):
    network = generate_grid_network(draw(grid_configs))
    dataset = simulate_dataset(
        network,
        SimulationConfig(
            object_count=draw(st.integers(min_value=3, max_value=10)),
            seed=draw(st.integers(min_value=0, max_value=10_000)),
        ),
    )
    return network, dataset


class TestCsvProperties:
    @given(config=grid_configs)
    @settings(max_examples=10, deadline=None)
    def test_csv_roundtrip(self, tmp_path_factory, config):
        from repro.roadnet.csv_io import load_network_csv, save_network_csv

        tmp = tmp_path_factory.mktemp("csv")
        network = generate_grid_network(config)
        save_network_csv(network, tmp / "n.csv", tmp / "e.csv")
        restored = load_network_csv(tmp / "n.csv", tmp / "e.csv")
        assert restored.segment_count == network.segment_count
        assert restored.total_length() == pytest.approx(network.total_length())


class TestOdMatrixProperties:
    @given(workloads(), st.floats(min_value=50.0, max_value=2000.0))
    @settings(max_examples=10, deadline=None)
    def test_every_trip_counted_exactly_once(self, workload, radius):
        network, dataset = workload
        matrix = od_matrix(network, list(dataset), radius=radius)
        assert matrix.trip_count == len(dataset)

    @given(workloads(), st.floats(min_value=50.0, max_value=2000.0))
    @settings(max_examples=10, deadline=None)
    def test_areas_partition_endpoint_nodes(self, workload, radius):
        network, dataset = workload
        matrix = od_matrix(network, list(dataset), radius=radius)
        seen: set[int] = set()
        for area in matrix.areas:
            assert not (seen & area)  # disjoint
            seen.update(area)


class TestHotspotProperties:
    @given(workloads(), st.floats(min_value=100.0, max_value=1500.0))
    @settings(max_examples=8, deadline=None)
    def test_areas_cover_all_flow_endpoints(self, workload, radius):
        network, dataset = workload
        result = NEAT(network, NEATConfig(min_card=0)).run_flow(dataset)
        areas = detect_hotspots(network, result.flows, radius=radius)
        covered = set()
        for area in areas:
            covered.update(area.nodes)
        endpoints = {
            node for flow in result.flows for node in flow.endpoints
        }
        assert endpoints <= covered

    @given(workloads())
    @settings(max_examples=8, deadline=None)
    def test_larger_radius_fewer_or_equal_areas(self, workload):
        network, dataset = workload
        result = NEAT(network, NEATConfig(min_card=0)).run_flow(dataset)
        small = detect_hotspots(network, result.flows, radius=100.0)
        large = detect_hotspots(network, result.flows, radius=1200.0)
        assert len(large) <= len(small)


class TestCropProperties:
    @given(grid_configs, st.data())
    @settings(max_examples=10, deadline=None)
    def test_crop_is_subset(self, config, data):
        network = generate_grid_network(config)
        min_x, min_y, max_x, max_y = network.bounds()
        x_split = data.draw(
            st.floats(min_value=min_x + 1.0, max_value=max_x)
        )
        cropped = crop_network(network, min_x - 1, min_y - 1, x_split, max_y + 1)
        assert cropped.segment_count <= network.segment_count
        for sid in cropped.segment_ids():
            assert network.has_segment(sid)

    @given(workloads())
    @settings(max_examples=8, deadline=None)
    def test_clipped_trajectories_stay_inside(self, workload):
        network, dataset = workload
        min_x, min_y, max_x, max_y = network.bounds()
        cropped = crop_network(
            network, min_x - 1, min_y - 1, (min_x + max_x) / 2, max_y + 1
        )
        for trajectory in clip_trajectories(cropped, dataset):
            for location in trajectory.locations:
                assert cropped.has_segment(location.sid)
