"""Mobile-object movement along a planned route.

A :class:`RouteWalk` precomputes the timeline of one object's trip — when
it enters and leaves each road segment at its (speed-factor-scaled) speed
limit — and answers position queries at arbitrary times.  This is the
kinematic core of the GTMobiSIM-equivalent simulator: objects "travel under
speed limit constrained on road segments" (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..roadnet.geometry import Point, interpolate
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import Route


@dataclass(frozen=True, slots=True)
class WalkSample:
    """A position on a route walk: where an object is at some instant."""

    sid: int
    point: Point
    t: float


class RouteWalk:
    """Kinematics of one object traversing a route at segment speed limits.

    Args:
        network: The road network the route lies on.
        route: The planned route (must have at least one segment).
        start_time: Departure timestamp in seconds.
        speed_factor: Multiplier on each segment's speed limit in ``(0, 1]``
            modelling driver variation; 1.0 means exactly the limit.
    """

    def __init__(
        self,
        network: RoadNetwork,
        route: Route,
        start_time: float = 0.0,
        speed_factor: float = 1.0,
    ) -> None:
        if not route.sids:
            raise ValueError("route has no segments to walk")
        if not (0.0 < speed_factor <= 1.0):
            raise ValueError(f"speed_factor must be in (0, 1], got {speed_factor}")
        self._network = network
        self._route = route
        self.start_time = float(start_time)
        self.speed_factor = float(speed_factor)
        # entry_times[i] is when the object enters route.sids[i];
        # entry_times[-1] is the arrival time at the final junction.
        entry_times: list[float] = [self.start_time]
        for sid in route.sids:
            segment = network.segment(sid)
            duration = segment.length / (segment.speed_limit * speed_factor)
            entry_times.append(entry_times[-1] + duration)
        self._entry_times = entry_times

    @property
    def route(self) -> Route:
        """The route being walked."""
        return self._route

    @property
    def arrival_time(self) -> float:
        """Timestamp at which the object reaches the route's last junction."""
        return self._entry_times[-1]

    @property
    def duration(self) -> float:
        """Total trip duration in seconds."""
        return self.arrival_time - self.start_time

    def position_at(self, t: float) -> WalkSample:
        """The object's segment and position at time ``t``.

        Times before departure clamp to the start junction; times after
        arrival clamp to the destination junction.
        """
        route = self._route
        times = self._entry_times
        if t <= times[0]:
            start_point = self._network.node_point(route.nodes[0])
            return WalkSample(route.sids[0], start_point, t)
        if t >= times[-1]:
            end_point = self._network.node_point(route.nodes[-1])
            return WalkSample(route.sids[-1], end_point, t)
        # Binary search would work; routes are short enough that a linear
        # scan from the last hit would too, but bisect keeps it O(log k).
        import bisect

        index = bisect.bisect_right(times, t) - 1
        index = min(index, len(route.sids) - 1)
        sid = route.sids[index]
        enter, leave = times[index], times[index + 1]
        fraction = (t - enter) / (leave - enter) if leave > enter else 0.0
        a = self._network.node_point(route.nodes[index])
        b = self._network.node_point(route.nodes[index + 1])
        return WalkSample(sid, interpolate(a, b, fraction), t)

    def sample_times(self, interval: float) -> list[float]:
        """Departure, every ``interval`` seconds en route, and arrival."""
        if interval <= 0.0:
            raise ValueError(f"interval must be positive, got {interval}")
        times = []
        t = self.start_time
        while t < self.arrival_time:
            times.append(t)
            t += interval
        times.append(self.arrival_time)
        return times
