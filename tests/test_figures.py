"""Smoke/behaviour tests for the per-figure experiment drivers.

These run every driver at miniature scale so the benchmark modules cannot
rot: each driver must execute, return populated rows and render a
"paper vs measured" report.
"""

from __future__ import annotations


from repro.experiments.figures import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
    run_table2,
    run_table3,
    run_variant,
)

TINY = (10, 20)


class TestTables:
    def test_table1(self):
        result = run_table1(network_scale=0.02)
        assert len(result.stats) == 3
        text = result.render()
        assert "Paper (Table I)" in text
        assert "Measured" in text

    def test_table2(self):
        result = run_table2(object_counts=TINY)
        assert set(result.points) == {"ATL", "SJ", "MIA"}
        for counts in result.points.values():
            assert counts[0] < counts[1]
        assert "Table II" in result.render()

    def test_table3(self):
        result = run_table3(object_counts=TINY)
        assert len(result.rows) == 2
        assert "SJ" in result.rows[0][0]
        assert "Paper (Table III)" in result.render()


class TestFigures:
    def test_fig3_writes_svgs(self, tmp_path):
        result = run_fig3(out_dir=tmp_path, object_count=30)
        assert result.trajectory_count > 0
        assert result.flow_count >= 1
        assert len(result.svg_paths) == 3
        for path in result.svg_paths:
            assert path.exists()

    def test_fig3_without_output_dir(self):
        result = run_fig3(object_count=20)
        assert result.svg_paths == []
        assert "Figure 3" in result.render()

    def test_fig4_two_settings(self):
        result = run_fig4(object_count=20)
        labels = [row[0] for row in result.rows]
        assert labels == ["tuned", "degenerate"]
        tuned_clusters = result.rows[0][3]
        degenerate_clusters = result.rows[1][3]
        assert degenerate_clusters >= tuned_clusters

    def test_fig5_rows(self):
        result = run_fig5(object_counts=TINY)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.neat_seconds > 0.0
            assert row.traclus_seconds > 0.0
        assert "Figure 5" in result.render()

    def test_fig6_rows(self):
        result = run_fig6("MIA", object_counts=TINY)
        assert len(result.rows) == 2
        for _name, points, base_s, flow_s, opt_s, p1, p2 in result.rows:
            assert points > 0
            assert base_s >= 0 and flow_s >= 0 and opt_s >= 0
            assert p1 >= 0 and p2 >= 0

    def test_fig7_rows_and_elb_prunes(self):
        result = run_fig7("SJ", object_counts=(30,))
        assert len(result.rows) == 1
        _name, _points, flows, _elb_s, _dij_s, sp_elb, sp_dij = result.rows[0]
        assert flows >= 0
        assert sp_elb <= sp_dij

    def test_variant(self):
        result = run_variant(object_count=25)
        assert result.base_clusters > 0
        assert result.variant_seconds > 0.0
        assert "IV-C" in result.render()
