"""Tests for the base-cluster density rendering."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.analysis.visualize import SEQUENTIAL_BLUE, SvgScene
from repro.core.base_cluster import form_base_clusters

from conftest import trajectory_through


def render(network, clusters, min_density=1):
    scene = SvgScene(network)
    scene.draw_network()
    scene.draw_density(clusters, min_density=min_density)
    return scene.to_svg()


class TestDrawDensity:
    def test_dense_segments_get_dark_steps(self, line3):
        trs = [trajectory_through(line3, i, [0]) for i in range(10)]
        trs.append(trajectory_through(line3, 99, [2]))
        clusters = form_base_clusters(line3, trs)
        svg = render(line3, clusters)
        # The densest segment wears the darkest ramp step; the sparse one
        # wears a light step.
        assert SEQUENTIAL_BLUE[-1] in svg
        assert SEQUENTIAL_BLUE[0] in svg or SEQUENTIAL_BLUE[1] in svg

    def test_min_density_filters(self, line3):
        trs = [trajectory_through(line3, i, [0]) for i in range(5)]
        trs.append(trajectory_through(line3, 99, [2]))
        clusters = form_base_clusters(line3, trs)
        svg = render(line3, clusters, min_density=3)
        # Only one polyline beyond the 3 backdrop segments.
        root = ET.fromstring(svg)
        polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) == 3 + 1

    def test_empty_clusters_noop(self, line3):
        svg = render(line3, [])
        root = ET.fromstring(svg)
        polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) == 3  # backdrop only

    def test_ramp_is_monotone_lightness(self):
        # Crude check: the ramp's hex values darken monotonically.
        def luminance(hex_color):
            r = int(hex_color[1:3], 16)
            g = int(hex_color[3:5], 16)
            b = int(hex_color[5:7], 16)
            return 0.2126 * r + 0.7152 * g + 0.0722 * b

        values = [luminance(c) for c in SEQUENTIAL_BLUE]
        assert values == sorted(values, reverse=True)
