"""Tests for ALT landmark distance acceleration."""

from __future__ import annotations

import pytest

from repro.roadnet.generators import GridConfig, generate_grid_network
from repro.roadnet.landmarks import LandmarkOracle, many_to_many_distances
from repro.roadnet.shortest_path import INFINITY, dijkstra_distance


@pytest.fixture(scope="module")
def net():
    return generate_grid_network(GridConfig(rows=10, cols=10, seed=44))


@pytest.fixture(scope="module")
def oracle(net):
    return LandmarkOracle(net, landmark_count=6)


class TestConstruction:
    def test_landmark_count(self, net):
        oracle = LandmarkOracle(net, landmark_count=4)
        assert len(oracle.landmarks) == 4
        assert len(set(oracle.landmarks)) == 4

    def test_deterministic(self, net):
        a = LandmarkOracle(net, landmark_count=4)
        b = LandmarkOracle(net, landmark_count=4)
        assert a.landmarks == b.landmarks

    def test_rejects_zero_landmarks(self, net):
        with pytest.raises(ValueError):
            LandmarkOracle(net, landmark_count=0)

    def test_landmarks_spread_out(self, net, oracle):
        # Farthest-point sampling: consecutive landmarks are far apart.
        first, second = oracle.landmarks[:2]
        assert dijkstra_distance(net, first, second) > 500.0


class TestLowerBound:
    def test_bound_never_exceeds_distance(self, net, oracle):
        nodes = net.node_ids()
        for source in nodes[::17]:
            for target in nodes[::23]:
                bound = oracle.lower_bound(source, target)
                exact = dijkstra_distance(net, source, target)
                assert bound <= exact + 1e-6

    def test_bound_tighter_than_euclidean_usually(self, net, oracle):
        # On road networks the ALT bound dominates Euclidean for most
        # pairs; require it on average.
        nodes = net.node_ids()
        alt_total = euclid_total = 0.0
        for source in nodes[::13]:
            for target in nodes[::19]:
                alt_total += oracle.lower_bound(source, target)
                euclid_total += net.node_point(source).distance_to(
                    net.node_point(target)
                )
        assert alt_total >= euclid_total

    def test_bound_zero_for_same_node(self, oracle, net):
        node = net.node_ids()[0]
        assert oracle.lower_bound(node, node) == 0.0


class TestAltDistance:
    def test_matches_dijkstra(self, net, oracle):
        nodes = net.node_ids()
        for source in nodes[::21]:
            for target in nodes[::27]:
                assert oracle.distance(source, target) == pytest.approx(
                    dijkstra_distance(net, source, target)
                )

    def test_settles_fewer_nodes_than_plain_dijkstra(self, net, oracle):
        # Plain Dijkstra settles roughly every node closer than the
        # target; goal-directed ALT should explore materially less.
        from repro.roadnet.shortest_path import dijkstra_single_source

        nodes = net.node_ids()
        source, target = nodes[0], nodes[-1]
        exact = dijkstra_distance(net, source, target)
        plain_settled = sum(
            1 for d in dijkstra_single_source(net, source).values() if d < exact
        )
        assert oracle.settled_estimate(source, target) < plain_settled


class TestManyToMany:
    def test_matches_pointwise(self, net):
        nodes = net.node_ids()
        sources = nodes[:3]
        targets = nodes[-3:]
        table = many_to_many_distances(net, sources, targets)
        for source in sources:
            for target in targets:
                assert table[(source, target)] == pytest.approx(
                    dijkstra_distance(net, source, target)
                )

    def test_unreachable_infinite(self):
        from repro.roadnet.geometry import Point
        from repro.roadnet.network import RoadNetwork

        net = RoadNetwork()
        for x, y in [(0, 0), (100, 0), (9000, 9000), (9100, 9000)]:
            net.add_junction(Point(x, y))
        net.add_segment(0, 1)
        net.add_segment(2, 3)
        table = many_to_many_distances(net, [0], [3])
        assert table[(0, 3)] == INFINITY
