"""The network-aware TraClus variant of Section IV-C.

The NEAT paper asks: "what if TraClus is given the benefit of our
map-matching preprocessing ... and uses a network distance measure such as
our modified Hausdorff function in its grouping phase?" and even hands it
the Phase 1 *base clusters* as clustering units.  This module implements
that strengthened baseline: a DBSCAN over base clusters whose distance is
the modified Hausdorff between the representative road segments' endpoint
junctions, measured by network shortest paths.

The point of the experiment survives the implementation: even with far
fewer units (base clusters vs t-fragments) the grouping phase still leans
on all-pairs network-distance computations, so it stays orders of
magnitude slower than NEAT's Phase 2, and its clusters remain *discrete*
patches of dense traffic with no continuity semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..cluster.dbscan import clusters_from_labels, dbscan
from ..core.base_cluster import BaseCluster
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine


@dataclass
class NetworkTraClusResult:
    """Output of the network-aware TraClus variant."""

    clusters: list[list[BaseCluster]] = field(default_factory=list)
    base_cluster_count: int = 0
    grouping_seconds: float = 0.0
    shortest_path_computations: int = 0

    @property
    def cluster_count(self) -> int:
        """Number of discovered clusters."""
        return len(self.clusters)


def base_cluster_distance(
    engine: ShortestPathEngine, network: RoadNetwork, a: BaseCluster, b: BaseCluster
) -> float:
    """Modified Hausdorff distance between two base clusters' segments.

    The representative road segment's two junctions stand in for the route
    endpoints of Definition 11.
    """
    a1, a2 = network.segment(a.sid).endpoints
    b1, b2 = network.segment(b.sid).endpoints
    d11 = engine.distance(a1, b1)
    d12 = engine.distance(a1, b2)
    d21 = engine.distance(a2, b1)
    d22 = engine.distance(a2, b2)
    forward = max(min(d11, d12), min(d21, d22))
    backward = max(min(d11, d21), min(d12, d22))
    return max(forward, backward)


def network_traclus(
    network: RoadNetwork,
    base_clusters: list[BaseCluster],
    eps: float,
    min_lns: int = 2,
) -> NetworkTraClusResult:
    """Group base clusters TraClus-style under network Hausdorff distance.

    Args:
        network: The road network.
        base_clusters: Phase 1 output handed to the baseline (the paper's
            generous setup).
        eps: Neighbourhood radius in metres of network distance.
        min_lns: Minimum neighbourhood size for a core unit.

    Returns:
        Clusters of base clusters plus cost accounting.  No ELB or other
        pruning is applied — this is the "heavily depends on distance
        computations" baseline the paper describes.
    """
    engine = ShortestPathEngine(network, directed=False)
    result = NetworkTraClusResult(base_cluster_count=len(base_clusters))
    if not base_clusters:
        return result

    started = time.perf_counter()

    def region_query(index: int) -> list[int]:
        me = base_clusters[index]
        return [
            other
            for other in range(len(base_clusters))
            if other != index
            and base_cluster_distance(engine, network, me, base_clusters[other]) <= eps
        ]

    labels = dbscan(len(base_clusters), region_query, min_lns)
    for indices in clusters_from_labels(labels):
        result.clusters.append([base_clusters[i] for i in indices])
    result.grouping_seconds = time.perf_counter() - started
    result.shortest_path_computations = engine.computations
    return result
