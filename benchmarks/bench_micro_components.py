"""Micro-benchmarks of the building blocks behind the paper's numbers.

Not a table/figure per se, but the component costs the paper's analysis
reasons about: point scanning (Phase 1's bottleneck), netflow evaluation,
shortest-path search (Phase 3's unit cost vs the O(1) Euclidean check),
and the TraClus segment distance that its grouping pays O(n^2) times.
"""

from __future__ import annotations

from repro.core.base_cluster import form_base_clusters, netflow
from repro.core.fragmentation import fragment_all
from repro.core.refinement import flow_distance
from repro.experiments.workloads import WorkloadSpec, build_dataset, build_network
from repro.roadnet.geometry import Point
from repro.roadnet.shortest_path import ShortestPathEngine, dijkstra_distance
from repro.traclus.distance import segment_distance
from repro.traclus.model import LineSegment


def _workload():
    network = build_network("ATL")
    dataset = build_dataset(network, WorkloadSpec("ATL", 100))
    return network, dataset


def bench_fragmentation(benchmark):
    """Phase 1 step 1: junction insertion + fragment extraction."""
    network, dataset = _workload()
    fragments = benchmark(lambda: fragment_all(network, dataset.trajectories))
    assert fragments


def bench_base_cluster_formation(benchmark):
    """Phase 1 end-to-end."""
    network, dataset = _workload()
    clusters = benchmark(
        lambda: form_base_clusters(network, dataset.trajectories)
    )
    assert clusters


def bench_netflow(benchmark):
    """Definition 5: one netflow evaluation between two base clusters."""
    network, dataset = _workload()
    clusters = form_base_clusters(network, dataset.trajectories)
    a, b = clusters[0], clusters[1]
    benchmark(lambda: netflow(a, b))


def bench_dijkstra_node_pair(benchmark):
    """One shortest-path search (the cost ELB avoids)."""
    network, _dataset = _workload()
    nodes = network.node_ids()
    source, target = nodes[0], nodes[-1]
    distance = benchmark(lambda: dijkstra_distance(network, source, target))
    assert distance > 0


def bench_euclidean_check(benchmark):
    """The O(1) Euclidean comparison that replaces a Dijkstra run."""
    network, _dataset = _workload()
    nodes = network.node_ids()
    a = network.node_point(nodes[0])
    b = network.node_point(nodes[-1])
    benchmark(lambda: a.distance_to(b))


def bench_modified_hausdorff(benchmark):
    """Equation 5 with a warm shortest-path cache."""
    from repro.core.config import NEATConfig
    from repro.core.pipeline import NEAT

    network, dataset = _workload()
    result = NEAT(network, NEATConfig(min_card=0)).run_flow(dataset)
    flows = result.flows[:2]
    if len(flows) < 2:
        flows = result.flows + result.noise_flows
    engine = ShortestPathEngine(network)
    benchmark(lambda: flow_distance(engine, flows[0], flows[1]))


def bench_traclus_segment_distance(benchmark):
    """The three-component distance TraClus pays O(n^2) times."""
    a = LineSegment(0, Point(0.0, 0.0), Point(100.0, 5.0))
    b = LineSegment(1, Point(10.0, 20.0), Point(110.0, 18.0))
    benchmark(lambda: segment_distance(a, b))
