#!/usr/bin/env python3
"""NEAT vs TraClus, side by side on the same workload.

Reproduces the paper's qualitative comparison (Figures 4 and 5) at example
scale: the density-based baseline finds short discrete dense patches,
NEAT finds long continuous flows — orders of magnitude faster.

Run:  python examples/traclus_comparison.py
"""

import time

from repro.analysis import compare_results
from repro.core import NEAT, NEATConfig
from repro.mobisim import SimulationConfig, simulate_dataset
from repro.roadnet import atlanta_like
from repro.traclus import TraClus, TraClusParams

network = atlanta_like(scale=0.1)
dataset = simulate_dataset(
    network, SimulationConfig(object_count=150, sample_interval=5.0, name="cmp")
)
print(f"Workload: {len(dataset)} trajectories, {dataset.total_points} points\n")

print("Running flow-NEAT ...")
neat_result = NEAT(network, NEATConfig(eps=800.0)).run_flow(dataset)
print(f"  {neat_result.summary()}")

print("Running TraClus (eps=10 m, MinLns=5) — this is the slow part ...")
started = time.perf_counter()
traclus_result = TraClus(TraClusParams(eps=10.0, min_lns=5)).run(dataset)
print(
    f"  {traclus_result.cluster_count} clusters from "
    f"{traclus_result.segment_count} line segments in "
    f"{time.perf_counter() - started:.1f}s"
)

row = compare_results(dataset.name, dataset.total_points, neat_result, traclus_result)
print(
    f"""
Comparison ({row.dataset}, {row.points} points)
                       NEAT        TraClus
  clusters             {row.neat_clusters:<10}  {row.traclus_clusters}
  avg route length     {row.neat_avg_route_m:>7.0f} m   {row.traclus_avg_route_m:>7.0f} m
  max route length     {row.neat_max_route_m:>7.0f} m   {row.traclus_max_route_m:>7.0f} m
  running time         {row.neat_seconds:>7.3f} s   {row.traclus_seconds:>7.3f} s
  speedup              {row.speedup:.0f}x
"""
)
print(
    "TraClus's clusters are dense patches of line segments with no route\n"
    "semantics; NEAT's flows follow the road graph end to end, which is\n"
    "why its representative routes are an order of magnitude longer."
)
