"""TraClus parameter sensitivity (the Section IV-C tuning story).

The paper had to sweep TraClus's eps over 1-50 m and pick MinLns "by
visual inspection" — i.e. the baseline's output quality hinges on manual
tuning.  This bench performs that sweep on one workload and reports how
wildly the cluster count swings, next to NEAT's parameter story (minCard
defaults to the mean flow cardinality; weights have presets).
"""

from __future__ import annotations

from conftest import TRACLUS_COUNTS

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.experiments.figures import DEFAULT_EPS
from repro.experiments.harness import format_seconds, format_table, timed
from repro.experiments.workloads import WorkloadSpec, build_dataset, build_network
from repro.traclus.grouping import TraClusParams
from repro.traclus.traclus import TraClus


def bench_traclus_parameter_sweep(benchmark, emit):
    """Sweep (eps, MinLns) over the paper's ranges on one ATL workload."""
    object_count = TRACLUS_COUNTS[0]
    network = build_network("ATL")
    dataset = build_dataset(network, WorkloadSpec("ATL", object_count))

    rows = []
    for eps in (1.0, 5.0, 10.0, 25.0, 50.0):
        for min_lns in (2, 5, 10):
            result, seconds = timed(
                lambda e=eps, m=min_lns: TraClus(
                    TraClusParams(eps=e, min_lns=m)
                ).run(dataset)
            )
            rows.append(
                (f"{eps:g}", min_lns, result.cluster_count,
                 format_seconds(seconds))
            )

    neat_result, neat_seconds = timed(
        lambda: NEAT(network, NEATConfig(eps=DEFAULT_EPS["ATL"])).run_flow(dataset)
    )
    counts = [row[2] for row in rows]

    benchmark.pedantic(
        lambda: TraClus(TraClusParams(eps=10.0, min_lns=5)).run(dataset),
        rounds=1,
        iterations=1,
    )
    emit(
        "traclus_sweep",
        "TraClus parameter sensitivity (paper swept eps 1-50 m, MinLns by "
        "visual inspection)\n"
        + format_table(("eps(m)", "MinLns", "clusters", "time"), rows)
        + f"\nCluster count swings {min(counts)} .. {max(counts)} across the "
        f"grid; NEAT with defaults: {neat_result.flow_count} flows in "
        f"{format_seconds(neat_seconds)} (minCard auto = mean cardinality).",
    )
    assert max(counts) > 2 * max(1, min(c for c in counts if c > 0))
