"""Property-based tests over the whole pipeline and its extensions.

Uses :func:`repro.core.validate.validate_result` as the well-formedness
oracle: for arbitrary generated networks/workloads/configurations, every
NEAT variant, the distributed coordinator, serialization round-trips and
preprocessing must produce results that pass the full invariant check.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.core.validate import validate_result
from repro.mobisim.simulator import SimulationConfig, simulate_dataset
from repro.roadnet.generators import GridConfig, generate_grid_network


@st.composite
def workloads(draw):
    config = GridConfig(
        rows=draw(st.integers(min_value=4, max_value=8)),
        cols=draw(st.integers(min_value=4, max_value=8)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    network = generate_grid_network(config)
    dataset = simulate_dataset(
        network,
        SimulationConfig(
            object_count=draw(st.integers(min_value=3, max_value=10)),
            seed=draw(st.integers(min_value=0, max_value=10_000)),
        ),
    )
    return network, dataset


@st.composite
def neat_configs(draw):
    wq = draw(st.floats(min_value=0.0, max_value=1.0))
    wk = draw(st.floats(min_value=0.0, max_value=1.0 - wq))
    wv = 1.0 - wq - wk
    return NEATConfig(
        wq=wq, wk=wk, wv=max(0.0, wv),
        beta=draw(st.sampled_from([1.5, 3.0, 10.0, math.inf])),
        min_card=draw(st.sampled_from([None, 0, 1, 2])),
        eps=draw(st.floats(min_value=50.0, max_value=1500.0)),
        use_elb=draw(st.booleans()),
    )


class TestPipelineProperties:
    @given(workloads(), neat_configs(), st.sampled_from(["base", "flow", "opt"]))
    @settings(max_examples=20, deadline=None)
    def test_every_run_is_structurally_valid(self, workload, config, mode):
        network, dataset = workload
        result = NEAT(network, config).run(dataset, mode=mode)
        report = validate_result(result, network)
        assert report.ok, report.errors

    @given(workloads(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_distributed_is_valid_and_matches_centralized(
        self, workload, node_count
    ):
        from repro.distributed import NeatCoordinator

        network, dataset = workload
        config = NEATConfig(min_card=0, eps=400.0)
        distributed = NeatCoordinator(network, config, node_count).run(
            list(dataset)
        )
        assert validate_result(distributed, network).ok
        central = NEAT(network, config).run_opt(dataset)
        assert [f.sids for f in distributed.flows] == [
            f.sids for f in central.flows
        ]

    @given(workloads(), neat_configs())
    @settings(max_examples=10, deadline=None)
    def test_serialization_roundtrip_stays_valid(self, workload, config):
        from repro.core.serialize import result_from_dict, result_to_dict

        network, dataset = workload
        result = NEAT(network, config).run_opt(dataset)
        restored = result_from_dict(result_to_dict(result), network)
        assert validate_result(restored, network).ok
        assert [f.sids for f in restored.flows] == [f.sids for f in result.flows]


class TestPreprocessProperties:
    time_series = st.lists(
        st.tuples(
            st.floats(min_value=-1000, max_value=1000, allow_nan=False),
            st.floats(min_value=-1000, max_value=1000, allow_nan=False),
        ),
        min_size=2,
        max_size=40,
    )

    @given(time_series, st.floats(min_value=1.0, max_value=500.0))
    @settings(max_examples=50)
    def test_split_conserves_samples(self, points, max_gap):
        from repro.core.model import Location, Trajectory
        from repro.core.preprocess import split_by_time_gap

        stream = Trajectory(
            0,
            tuple(
                Location(0, x, y, i * 20.0) for i, (x, y) in enumerate(points)
            ),
        )
        trips = split_by_time_gap(stream, max_gap)
        total = sum(len(trip) for trip in trips)
        assert total <= len(stream)
        # Each trip's samples are a contiguous, ordered slice of the input.
        for trip in trips:
            times = [l.t for l in trip.locations]
            assert times == sorted(times)
            for a, b in zip(times, times[1:]):
                assert b - a <= max_gap

    @given(time_series, st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=50)
    def test_simplify_preserves_endpoints_and_shrinks(self, points, epsilon):
        from repro.core.model import Location, Trajectory
        from repro.core.preprocess import simplify

        stream = Trajectory(
            0,
            tuple(
                Location(0, x, y, float(i)) for i, (x, y) in enumerate(points)
            ),
        )
        simplified = simplify(stream, epsilon)
        assert len(simplified) <= len(stream)
        assert simplified.start == stream.start
        assert simplified.end == stream.end

    @given(time_series)
    @settings(max_examples=30)
    def test_deduplicate_idempotent(self, points):
        from repro.core.model import Location, Trajectory
        from repro.core.preprocess import deduplicate

        stream = Trajectory(
            0,
            tuple(
                Location(0, x, y, float(i)) for i, (x, y) in enumerate(points)
            ),
        )
        once = deduplicate(stream)
        twice = deduplicate(once)
        assert once == twice


class TestTimesliceProperties:
    @given(workloads(), st.floats(min_value=30.0, max_value=600.0))
    @settings(max_examples=10, deadline=None)
    def test_slices_partition_trajectories(self, workload, window):
        from repro.core.timeslice import time_sliced_clustering

        network, dataset = workload
        slices = time_sliced_clustering(
            network, list(dataset), window, config=NEATConfig(min_card=0)
        )
        assert sum(s.trajectory_count for s in slices) == len(dataset)
        for timeslice in slices:
            # Window width up to float addition error.
            assert timeslice.end - timeslice.start == pytest.approx(window)
