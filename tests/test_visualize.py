"""Unit tests for SVG rendering."""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.analysis.visualize import SvgScene, render_svg
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT

from conftest import trajectory_through


def parse_svg(text: str) -> ET.Element:
    return ET.fromstring(text)


class TestSvgScene:
    def test_network_only(self, grid3x3):
        scene = SvgScene(grid3x3)
        scene.draw_network()
        root = parse_svg(scene.to_svg())
        polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) == grid3x3.segment_count

    def test_viewport_fits_bounds(self, grid3x3):
        scene = SvgScene(grid3x3, width=500)
        root = parse_svg(scene.to_svg())
        assert root.get("width") == "500"
        assert int(root.get("height")) > 0

    def test_trajectories_drawn(self, grid3x3):
        trs = [trajectory_through(grid3x3, i, [0, 1]) for i in range(3)]
        scene = SvgScene(grid3x3)
        scene.draw_trajectories(trs)
        root = parse_svg(scene.to_svg())
        assert len(root.findall(".//{http://www.w3.org/2000/svg}polyline")) == 3

    def test_markers_drawn(self, grid3x3):
        scene = SvgScene(grid3x3)
        scene.draw_markers([0, 4, 8])
        root = parse_svg(scene.to_svg())
        assert len(root.findall(".//{http://www.w3.org/2000/svg}path")) == 3

    def test_save(self, grid3x3, tmp_path):
        scene = SvgScene(grid3x3)
        scene.draw_network()
        target = scene.save(tmp_path / "map.svg")
        assert target.exists()
        parse_svg(target.read_text())  # well-formed XML


class TestRenderSvg:
    def test_full_overlay(self, grid3x3, tmp_path):
        trs = [trajectory_through(grid3x3, i, [0, 1, 5]) for i in range(4)]
        result = NEAT(grid3x3, NEATConfig(min_card=0, eps=500.0)).run_opt(trs)
        path = render_svg(
            grid3x3,
            tmp_path / "all.svg",
            trajectories=trs,
            flows=result.flows,
            clusters=result.clusters,
            markers=[8],
        )
        root = parse_svg(path.read_text())
        assert root.findall(".//{http://www.w3.org/2000/svg}polyline")
