"""Process-parallel fan-out helpers.

One tiny, dependency-free layer over :class:`concurrent.futures.
ProcessPoolExecutor` shared by every pipeline stage that fans work out:
Phase 1 fragments trajectory chunks in parallel, Phase 3 batches
shortest-path pairs against read-only CSR snapshots, and the landmark
oracle bulk-computes distance tables.  The contract every caller relies
on:

* **Determinism** — items are split into contiguous, order-preserving
  chunks and results are concatenated in submission order, so the output
  is byte-identical to a serial run regardless of worker count or
  scheduling.
* **Serial fallback** — ``workers <= 1``, or too few items to amortize
  pool startup, runs the chunk function inline in this process (no pool,
  no pickling).
* **Worker resolution** — ``workers=None`` or ``0`` means "auto":
  :func:`os.cpu_count`.  Explicit positive counts are honored, capped by
  the number of chunks the item count supports.

Chunk functions must be picklable (module-level functions or
``functools.partial`` over one), as must their arguments and results.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Default floor of items per worker before a pool is worth spawning.
DEFAULT_MIN_ITEMS_PER_WORKER = 32


def resolve_workers(workers: int | None) -> int:
    """Turn a ``workers`` setting into a concrete count.

    ``None`` and ``0`` mean "auto" (:func:`os.cpu_count`); positive ints
    pass through.  Negative counts are rejected.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    return workers


def effective_workers(
    workers: int | None,
    item_count: int,
    min_items_per_worker: int = DEFAULT_MIN_ITEMS_PER_WORKER,
) -> int:
    """Workers actually worth using for ``item_count`` items.

    Resolves ``workers`` (:func:`resolve_workers`), then degrades to 1
    when the batch is too small for a pool to pay for itself, and caps
    the count so every worker gets at least ``min_items_per_worker``
    items.
    """
    resolved = resolve_workers(workers)
    if resolved <= 1 or item_count < 2 * max(1, min_items_per_worker):
        return 1
    return max(1, min(resolved, item_count // max(1, min_items_per_worker)))


def split_chunks(items: Sequence[T], chunk_count: int) -> list[list[T]]:
    """Split into ``chunk_count`` contiguous, near-even, non-empty chunks.

    Concatenating the chunks reproduces ``items`` exactly; at most
    ``len(items)`` chunks are produced.
    """
    item_list = list(items)
    count = max(1, min(chunk_count, len(item_list)))
    base, extra = divmod(len(item_list), count)
    chunks: list[list[T]] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        chunks.append(item_list[start:start + size])
        start += size
    return chunks


def map_chunked(
    fn: Callable[[list[T]], list[R]],
    items: Sequence[T],
    workers: int | None = None,
    min_items_per_worker: int = DEFAULT_MIN_ITEMS_PER_WORKER,
) -> list[R]:
    """Apply a chunk function over ``items``, fanned out across processes.

    ``fn`` receives a contiguous chunk (a list of items) and returns a
    list of results; the per-chunk results are concatenated in input
    order.  With an effective worker count of 1 the single chunk is
    processed inline — identical results, no pool.

    Args:
        fn: Picklable ``chunk -> results`` function.
        items: The work items, in order.
        workers: Worker setting (``None``/``0`` = auto, ``<=1`` serial).
        min_items_per_worker: Pool-worthiness floor per worker.

    Returns:
        The concatenated results, ordered as ``items``.
    """
    item_list = list(items)
    if not item_list:
        return []
    count = effective_workers(workers, len(item_list), min_items_per_worker)
    if count <= 1:
        return list(fn(item_list))
    chunks = split_chunks(item_list, count)
    with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
        parts = list(pool.map(fn, chunks))
    return [result for part in parts for result in part]
