"""Unit tests for planar geometry primitives."""

from __future__ import annotations

import math

import pytest

from repro.roadnet.geometry import (
    Point,
    angle_between,
    bounding_box,
    cross,
    dot,
    euclidean,
    heading,
    interpolate,
    point_along_polyline,
    point_segment_distance,
    polyline_length,
    project_onto_segment,
)


class TestPoint:
    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-4.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(10, 4)) == Point(5, 2)

    def test_translated(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_as_tuple(self):
        assert Point(1.0, 2.0).as_tuple() == (1.0, 2.0)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5.0  # type: ignore[misc]


class TestVectorOps:
    def test_euclidean_matches_point_distance(self):
        assert euclidean(0, 0, 3, 4) == pytest.approx(5.0)

    def test_dot_orthogonal(self):
        assert dot(1, 0, 0, 1) == 0.0

    def test_cross_sign(self):
        assert cross(1, 0, 0, 1) > 0
        assert cross(0, 1, 1, 0) < 0


class TestProjection:
    def test_projection_inside(self):
        closest, t, distance = project_onto_segment(
            Point(5, 3), Point(0, 0), Point(10, 0)
        )
        assert closest == Point(5, 0)
        assert t == pytest.approx(0.5)
        assert distance == pytest.approx(3.0)

    def test_projection_clamps_before_start(self):
        closest, t, distance = project_onto_segment(
            Point(-4, 0), Point(0, 0), Point(10, 0)
        )
        assert closest == Point(0, 0)
        assert t == 0.0
        assert distance == pytest.approx(4.0)

    def test_projection_clamps_past_end(self):
        closest, t, _ = project_onto_segment(Point(14, 2), Point(0, 0), Point(10, 0))
        assert closest == Point(10, 0)
        assert t == 1.0

    def test_degenerate_segment(self):
        closest, t, distance = project_onto_segment(
            Point(1, 1), Point(2, 2), Point(2, 2)
        )
        assert closest == Point(2, 2)
        assert t == 0.0
        assert distance == pytest.approx(math.sqrt(2))

    def test_point_segment_distance(self):
        assert point_segment_distance(Point(5, -7), Point(0, 0), Point(10, 0)) == (
            pytest.approx(7.0)
        )


class TestPolyline:
    def test_length(self):
        points = [Point(0, 0), Point(3, 4), Point(3, 14)]
        assert polyline_length(points) == pytest.approx(15.0)

    def test_length_single_point(self):
        assert polyline_length([Point(1, 1)]) == 0.0

    def test_point_along_interior(self):
        points = [Point(0, 0), Point(10, 0), Point(10, 10)]
        assert point_along_polyline(points, 15.0) == Point(10, 5)

    def test_point_along_clamps(self):
        points = [Point(0, 0), Point(10, 0)]
        assert point_along_polyline(points, -5.0) == Point(0, 0)
        assert point_along_polyline(points, 99.0) == Point(10, 0)

    def test_point_along_empty_raises(self):
        with pytest.raises(ValueError):
            point_along_polyline([], 1.0)

    def test_interpolate_endpoints(self):
        a, b = Point(0, 0), Point(4, 8)
        assert interpolate(a, b, 0.0) == a
        assert interpolate(a, b, 1.0) == b
        assert interpolate(a, b, 0.25) == Point(1, 2)


class TestAngles:
    def test_heading_east(self):
        assert heading(Point(0, 0), Point(1, 0)) == pytest.approx(0.0)

    def test_heading_north(self):
        assert heading(Point(0, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_angle_between_wraps(self):
        assert angle_between(-3.0, 3.0) == pytest.approx(
            2 * math.pi - 6.0, abs=1e-9
        )

    def test_angle_between_bounds(self):
        for h1 in (-3.0, 0.0, 1.5, 3.1):
            for h2 in (-2.5, 0.5, 2.8):
                angle = angle_between(h1, h2)
                assert 0.0 <= angle <= math.pi


class TestBoundingBox:
    def test_bbox(self):
        box = bounding_box([Point(1, 5), Point(-2, 3), Point(4, -1)])
        assert box == (-2, -1, 4, 5)

    def test_bbox_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
