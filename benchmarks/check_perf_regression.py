"""Gate CI on benchmark counter regressions against a committed baseline.

Compares selected (dotted) keys of a freshly produced ``BENCH_*.json``
artifact against a baseline and fails when the current value exceeds the
baseline by more than the allowed fraction.  Counters such as executed
Dijkstra searches and settled nodes are deterministic for a fixed
workload, so the default 10% headroom only forgives intentional small
shifts (e.g. a generator tweak) while catching a broken prune tier or
grouping planner outright.

The baseline is either a static file checked into
``benchmarks/baselines/`` (``--baseline``) or the newest matching entry
of the bench trend ledger (``--history`` + ``--bench``, see
``bench_history.py``), which turns the gate from "never worse than the
day the baseline was committed" into "never worse than the last
recorded run".

``--key-max dotted=limit`` adds absolute ceilings evaluated against the
current artifact alone — the form a latency-SLO-style bound takes (for
example ``overhead_disabled_pct=2.0`` for the observability bench).
``--key-min dotted=floor`` is the mirror image: an absolute floor for
values that must stay *high*, such as ``phase3.phase3_speedup`` from the
sp-core bench.  ``--skip-unless dotted=min`` guards either kind of gate
on an environment precondition carried in the artifact itself — e.g.
``phase3.available_cpus=4`` skips the speedup floor (exit 0, loudly) on
runners where worker processes can only time-slice a single CPU.
``--profile small|medium|stress`` scopes a ``--history`` lookup to ledger
entries labeled with that workload-ladder rung, so smoke and stress runs
of the same bench never compare against each other's baselines.

Usage::

    python benchmarks/check_perf_regression.py \
        --baseline benchmarks/baselines/BENCH_distance_oracle_smoke.json \
        --current benchmarks/output/BENCH_distance_oracle.json \
        --key tiered.sp_computations --key tiered.nodes_expanded

    python benchmarks/check_perf_regression.py \
        --history benchmarks/history/BENCH_history.jsonl \
        --bench observability_overhead \
        --current benchmarks/output/BENCH_observability_overhead.json \
        --key t_fragments --key-max overhead_disabled_pct=2.0

Exit status 0 when every key is within bounds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def lookup(document: dict, dotted: str):
    """Resolve ``a.b.c`` into nested dictionaries."""
    node = document
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    return node


def check(baseline: dict, current: dict, keys: list[str], max_regression: float) -> list[str]:
    """Return one human-readable failure line per violated key."""
    failures = []
    for key in keys:
        try:
            base_value = float(lookup(baseline, key))
        except KeyError:
            failures.append(f"{key}: missing from baseline")
            continue
        try:
            new_value = float(lookup(current, key))
        except KeyError:
            failures.append(f"{key}: missing from current artifact")
            continue
        allowed = base_value * (1.0 + max_regression)
        if new_value > allowed:
            failures.append(
                f"{key}: {new_value:g} exceeds baseline {base_value:g} "
                f"by more than {max_regression:.0%} (allowed <= {allowed:g})"
            )
        else:
            print(f"ok: {key} = {new_value:g} (baseline {base_value:g})")
    return failures


def check_ceilings(current: dict, ceilings: list[tuple[str, float]]) -> list[str]:
    """Absolute ``value <= limit`` gates on the current artifact."""
    failures = []
    for key, limit in ceilings:
        try:
            value = float(lookup(current, key))
        except KeyError:
            failures.append(f"{key}: missing from current artifact")
            continue
        if value > limit:
            failures.append(f"{key}: {value:g} exceeds ceiling {limit:g}")
        else:
            print(f"ok: {key} = {value:g} (ceiling {limit:g})")
    return failures


def check_floors(current: dict, floors: list[tuple[str, float]]) -> list[str]:
    """Absolute ``value >= floor`` gates on the current artifact."""
    failures = []
    for key, floor in floors:
        try:
            value = float(lookup(current, key))
        except (KeyError, TypeError, ValueError):
            failures.append(f"{key}: missing from current artifact")
            continue
        if value < floor:
            failures.append(f"{key}: {value:g} is below floor {floor:g}")
        else:
            print(f"ok: {key} = {value:g} (floor {floor:g})")
    return failures


def unmet_preconditions(
    current: dict, preconditions: list[tuple[str, float]]
) -> list[str]:
    """Human-readable lines for ``--skip-unless`` conditions that fail.

    A missing key counts as unmet — an artifact that does not carry the
    precondition field cannot prove the gate is meaningful.
    """
    unmet = []
    for key, minimum in preconditions:
        try:
            value = float(lookup(current, key))
        except (KeyError, TypeError, ValueError):
            unmet.append(f"{key} missing from current artifact")
            continue
        if value < minimum:
            unmet.append(f"{key} = {value:g} < {minimum:g}")
    return unmet


def parse_ceiling(raw: str) -> tuple[str, float]:
    key, separator, limit = raw.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            f"expected dotted.key=limit, got {raw!r}"
        )
    try:
        return key, float(limit)
    except ValueError:
        raise argparse.ArgumentTypeError(f"limit in {raw!r} is not a number")


def load_history_baseline(
    ledger: Path, bench: str, workload: str | None, profile: str | None = None
) -> dict:
    """The newest matching ledger entry's metrics document.

    ``profile`` restricts the lookup to entries labeled with that
    workload-ladder rung — small/medium/stress runs of the same bench
    must never compare against each other's baselines.
    """
    if str(Path(__file__).parent) not in sys.path:
        sys.path.insert(0, str(Path(__file__).parent))
    import bench_history

    entry = bench_history.latest_entry(
        bench, workload=workload, profile=profile, path=ledger
    )
    if entry is None:
        scope = f" workload {workload!r}" if workload else ""
        if profile:
            scope += f" profile {profile!r}"
        raise SystemExit(
            f"no ledger entry for bench {bench!r}{scope} in {ledger}"
        )
    rung = f", profile {entry['profile']}" if "profile" in entry else ""
    print(
        f"baseline: ledger entry {entry['git_sha']} "
        f"({entry['recorded_utc']}, workload {entry['workload']}{rung})"
    )
    return entry["metrics"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline JSON")
    parser.add_argument("--history", type=Path, default=None,
                        help="bench trend ledger (BENCH_history.jsonl); "
                             "uses the newest matching entry as baseline")
    parser.add_argument("--bench", default=None,
                        help="bench name in the ledger (with --history)")
    parser.add_argument("--workload", default=None,
                        help="restrict the ledger lookup to one workload key")
    parser.add_argument("--profile", default=None,
                        help="restrict the ledger lookup to entries labeled "
                             "with this workload-ladder rung "
                             "(small/medium/stress), so profile rungs of "
                             "the same bench never compare against each "
                             "other's baselines (requires --history)")
    parser.add_argument("--current", type=Path, required=True,
                        help="artifact produced by this run")
    parser.add_argument("--key", action="append", default=[], dest="keys",
                        help="dotted key to compare to baseline (repeatable)")
    parser.add_argument("--key-max", action="append", default=[],
                        dest="ceilings", type=parse_ceiling, metavar="KEY=LIMIT",
                        help="absolute ceiling on a current-artifact key "
                             "(repeatable; no baseline needed)")
    parser.add_argument("--key-min", action="append", default=[],
                        dest="floors", type=parse_ceiling, metavar="KEY=FLOOR",
                        help="absolute floor on a current-artifact key "
                             "(repeatable; no baseline needed) — e.g. "
                             "phase3.phase3_speedup=2.0")
    parser.add_argument("--skip-unless", action="append", default=[],
                        dest="preconditions", type=parse_ceiling,
                        metavar="KEY=MIN",
                        help="skip every check (exit 0) unless this "
                             "current-artifact key is >= MIN — gates "
                             "environment-dependent bounds, e.g. "
                             "phase3.available_cpus=4")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="allowed fractional increase (default 0.10)")
    options = parser.parse_args(argv)

    if not options.keys and not options.ceilings and not options.floors:
        parser.error("nothing to check: pass --key, --key-max and/or --key-min")
    if options.keys and options.baseline is None and options.history is None:
        parser.error("--key needs a baseline: pass --baseline or --history")
    if options.baseline is not None and options.history is not None:
        parser.error("--baseline and --history are mutually exclusive")
    if options.history is not None and options.bench is None:
        parser.error("--history needs --bench")
    if options.profile is not None and options.history is None:
        parser.error("--profile only scopes ledger baselines: pass --history")

    current = json.loads(options.current.read_text(encoding="utf-8"))

    unmet = unmet_preconditions(current, options.preconditions)
    if unmet:
        for line in unmet:
            print(f"skipped: precondition unmet ({line})")
        return 0

    failures = []
    if options.keys:
        if options.history is not None:
            baseline = load_history_baseline(
                options.history, options.bench, options.workload,
                options.profile,
            )
        else:
            baseline = json.loads(options.baseline.read_text(encoding="utf-8"))
        failures.extend(
            check(baseline, current, options.keys, options.max_regression)
        )
    failures.extend(check_ceilings(current, options.ceilings))
    failures.extend(check_floors(current, options.floors))

    for line in failures:
        print(f"REGRESSION {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
