"""Tests for repro.obs.tracing: span trees, timing, the null tracer."""

from __future__ import annotations

import time

import pytest

from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer


class TestSpanTree:
    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child-a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-b"):
                pass
        assert [s.name for s in tracer.roots] == ["root"]
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [g.name for g in root.children[0].children] == ["grandchild"]
        assert root.children[1].children == []

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_parent_duration_covers_children(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                time.sleep(0.002)
        parent, child = tracer.roots[0], tracer.roots[0].children[0]
        assert child.duration >= 0.002
        assert parent.duration >= child.duration

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.roots[0].duration >= 0.0
        assert tracer._stack == []
        with tracer.span("after"):
            pass
        assert [s.name for s in tracer.roots] == ["doomed", "after"]

    def test_find_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("target"):
                pass
        with tracer.span("b"):
            pass
        assert tracer.find("target").name == "target"
        assert tracer.find("b") is tracer.roots[1]
        assert tracer.find("missing") is None

    def test_walk_yields_all(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        names = [s.name for s in tracer.roots[0].walk()]
        assert names == ["a", "b", "c"]

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []

    def test_reset_with_open_span_rejected(self):
        tracer = Tracer()
        with tracer.span("open"):
            with pytest.raises(RuntimeError):
                tracer.reset()


class TestExport:
    def test_to_dict_shape(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        document = tracer.to_dict()
        assert len(document) == 1
        root = document[0]
        assert root["name"] == "root"
        assert root["duration_s"] >= 0.0
        assert root["children"][0]["name"] == "leaf"
        assert "children" not in root["children"][0]

    def test_open_span_duration_zero(self):
        span = Span("open")
        span.start = 5.0
        assert span.duration == 0.0


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("anything") as span:
            assert span.duration == 0.0
        assert tracer.roots == []
        assert tracer.to_dict() == []

    def test_context_is_reused(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NULL_TRACER.enabled is False

    def test_nullable_nesting_is_safe(self):
        with NULL_TRACER.span("outer"):
            with NULL_TRACER.span("inner") as inner:
                assert inner.name == "<null>"


class TestTimelineOffsets:
    def test_tracer_carries_epoch(self):
        before = time.time()
        tracer = Tracer()
        after = time.time()
        assert tracer.epoch > 0.0
        assert before <= tracer.epoch_unix <= after

    def test_to_dict_includes_offsets(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                time.sleep(0.002)
        (root,) = tracer.to_dict()
        assert root["start_offset_s"] >= 0.0
        assert root["end_offset_s"] >= root["start_offset_s"]
        (child,) = root["children"]
        # Children nest inside the parent's window on the shared axis.
        assert child["start_offset_s"] >= root["start_offset_s"]
        assert child["end_offset_s"] <= root["end_offset_s"] + 1e-9
        assert child["end_offset_s"] - child["start_offset_s"] == pytest.approx(
            child["duration_s"]
        )

    def test_offsets_measured_from_epoch(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            pass
        (exported,) = tracer.to_dict()
        assert exported["start_offset_s"] == pytest.approx(
            span.start - tracer.epoch
        )
        assert exported["end_offset_s"] == pytest.approx(
            span.end - tracer.epoch
        )

    def test_span_to_dict_without_epoch_has_no_offsets(self):
        span = Span("bare")
        span.start, span.end = 10.0, 11.0
        exported = span.to_dict()
        assert "start_offset_s" not in exported
        assert "end_offset_s" not in exported
        assert exported["duration_s"] == pytest.approx(1.0)

    def test_reset_reanchors_epoch(self):
        tracer = Tracer()
        with tracer.span("first"):
            time.sleep(0.002)
        old_epoch = tracer.epoch
        tracer.reset()
        assert tracer.epoch > old_epoch
        with tracer.span("second"):
            pass
        (root,) = tracer.to_dict()
        # The new trace starts near offset zero again.
        assert root["start_offset_s"] < 0.002 + 0.05

    def test_monotonic_ordering_of_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.to_dict()
        assert second["start_offset_s"] >= first["end_offset_s"]
