"""Overhead of the telemetry layer on the opt-NEAT hot path.

Three configurations of the same opt-NEAT run on the medium synthetic
network:

* **bare** — the phase functions called directly with no telemetry
  arguments at all (the pre-telemetry code path);
* **disabled** — the pipeline with ``Telemetry.disabled()`` (null tracer,
  no metric publication; what a latency-critical deployment would run);
* **enabled** — the default pipeline (spans + per-phase counters).

The acceptance bar is that the *disabled* path stays within 2% of bare:
with the null tracer a run pays three empty ``with`` blocks and a few
``None`` checks.  The measurement uses best-of-N wall times, which is
robust to scheduler noise in a way means are not.
"""

from __future__ import annotations

import time

from repro.core.base_cluster import form_base_clusters
from repro.core.config import NEATConfig
from repro.core.flow_formation import form_flow_clusters
from repro.core.pipeline import NEAT
from repro.core.refinement import refine_flow_clusters
from repro.experiments.harness import format_table
from repro.experiments.workloads import WorkloadSpec, build_dataset, build_network
from repro.obs import Telemetry
from repro.roadnet.shortest_path import ShortestPathEngine

ROUNDS = 5
OBJECTS = 200
EPS = 1000.0


def _workload():
    network = build_network("ATL")
    dataset = build_dataset(network, WorkloadSpec("ATL", OBJECTS))
    return network, list(dataset.trajectories)


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_observability_overhead(emit):
    """Best-of-N opt-NEAT wall time: bare phases vs disabled vs enabled."""
    network, trajectories = _workload()
    config = NEATConfig(eps=EPS)

    def bare():
        # The seed-equivalent path: phase functions, fresh engine, no
        # telemetry arguments anywhere.
        base = form_base_clusters(network, trajectories)
        formation = form_flow_clusters(network, base, config)
        refine_flow_clusters(
            network, formation.flows, config,
            engine=ShortestPathEngine(network, directed=False),
        )

    def disabled():
        NEAT(network, config, telemetry=Telemetry.disabled()).run_opt(trajectories)

    def enabled():
        NEAT(network, config).run_opt(trajectories)

    for warmup in (bare, disabled, enabled):
        warmup()
    bare_s = _best_of(bare)
    disabled_s = _best_of(disabled)
    enabled_s = _best_of(enabled)

    overhead_disabled = (disabled_s - bare_s) / bare_s * 100.0
    overhead_enabled = (enabled_s - bare_s) / bare_s * 100.0
    table = format_table(
        ("configuration", "best-of-%d (s)" % ROUNDS, "overhead vs bare"),
        [
            ("bare phases (seed path)", f"{bare_s:.4f}", "—"),
            ("telemetry disabled", f"{disabled_s:.4f}", f"{overhead_disabled:+.2f}%"),
            ("telemetry enabled", f"{enabled_s:.4f}", f"{overhead_enabled:+.2f}%"),
        ],
    )
    emit("observability_overhead", table)

    # The acceptance bar: a disabled-telemetry run must not regress the
    # hot path by more than 2%.
    assert overhead_disabled < 2.0, (
        f"disabled-telemetry overhead {overhead_disabled:.2f}% exceeds 2% "
        f"(bare={bare_s:.4f}s disabled={disabled_s:.4f}s)"
    )


def bench_opt_neat_telemetry_enabled(benchmark):
    """pytest-benchmark timing of the default (telemetry-on) pipeline."""
    network, trajectories = _workload()
    neat = NEAT(network, NEATConfig(eps=EPS))
    result = benchmark.pedantic(
        lambda: neat.run_opt(trajectories), rounds=3, iterations=1
    )
    assert result.telemetry["metrics"]["counters"]["neat.phase1.t_fragments"] > 0


def bench_opt_neat_telemetry_disabled(benchmark):
    """pytest-benchmark timing of the disabled-telemetry pipeline."""
    network, trajectories = _workload()
    neat = NEAT(network, NEATConfig(eps=EPS), telemetry=Telemetry.disabled())
    result = benchmark.pedantic(
        lambda: neat.run_opt(trajectories), rounds=3, iterations=1
    )
    assert result.telemetry == {}
