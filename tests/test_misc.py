"""Miscellaneous coverage: package metadata, errors, CLI experiment path."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    ClusteringError,
    ConfigError,
    DuplicateSegmentError,
    MapMatchError,
    NoPathError,
    ReproError,
    RoadNetworkError,
    TrajectoryError,
    UnknownNodeError,
    UnknownSegmentError,
)


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        assert hasattr(repro, "NEAT")
        assert hasattr(repro, "NEATConfig")
        assert hasattr(repro, "RoadNetwork")
        assert hasattr(repro, "Trajectory")

    def test_all_is_sorted_everywhere(self):
        import repro.analysis
        import repro.cluster
        import repro.core
        import repro.distributed
        import repro.experiments
        import repro.mapmatch
        import repro.mobisim
        import repro.optics
        import repro.roadnet
        import repro.traclus

        for module in (
            repro, repro.analysis, repro.cluster, repro.core,
            repro.distributed, repro.experiments, repro.mapmatch,
            repro.mobisim, repro.optics, repro.roadnet, repro.traclus,
        ):
            exported = list(module.__all__)
            assert exported == sorted(exported), module.__name__
            for name in exported:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            ClusteringError, ConfigError, MapMatchError, RoadNetworkError,
            TrajectoryError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_specific_network_errors(self):
        assert issubclass(UnknownNodeError, RoadNetworkError)
        assert issubclass(UnknownSegmentError, RoadNetworkError)
        assert issubclass(DuplicateSegmentError, RoadNetworkError)
        assert issubclass(NoPathError, RoadNetworkError)

    def test_error_payloads(self):
        assert UnknownNodeError(7).node_id == 7
        assert UnknownSegmentError(9).sid == 9
        assert DuplicateSegmentError(3).sid == 3
        error = NoPathError(1, 2)
        assert (error.source, error.target) == (1, 2)

    def test_messages_mention_subject(self):
        assert "7" in str(UnknownNodeError(7))
        assert "no path" in str(NoPathError(1, 2))


class TestCliExperiment:
    def test_table1_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["experiment", "table1", "--out-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert (tmp_path / "table1.txt").exists()
