"""Unit tests for the durable store, batch journal and checkpoint manager."""

from __future__ import annotations

import json

import pytest

from repro.core import NEATConfig
from repro.core.incremental import IncrementalNEAT
from repro.errors import CorruptSnapshot, PersistenceError, TornWrite
from repro.obs.metrics import MetricsRegistry
from repro.persist import (
    BatchJournal,
    CheckpointManager,
    SnapshotStore,
    atomic_write,
    encode_batch_record,
    encode_frame,
    scan_frames,
    seal_snapshot,
    unseal_snapshot,
)
from repro.resilience import FaultInjector, FaultPlan, bit_flip

from conftest import trajectory_through


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "f.bin"
        atomic_write(target, b"one")
        assert target.read_bytes() == b"one"
        atomic_write(target, b"two")
        assert target.read_bytes() == b"two"
        assert not (tmp_path / "f.bin.tmp").exists()

    def test_crash_before_rename_keeps_old_bytes(self, tmp_path):
        target = tmp_path / "f.bin"
        atomic_write(target, b"old")
        faults = FaultInjector()
        faults.arm("store.pre_rename", FaultPlan(fail_nth=1))
        with pytest.raises(Exception):
            atomic_write(target, b"new", faults=faults)
        assert target.read_bytes() == b"old"


class TestFrames:
    def test_round_trip(self):
        payloads = [b"", b"a", b"hello world" * 100]
        data = b"".join(encode_frame(p) for p in payloads)
        scan = scan_frames(data)
        assert scan.payloads == payloads
        assert scan.good_bytes == len(data)
        assert not scan.torn

    def test_torn_tail_is_dropped_not_raised(self):
        data = encode_frame(b"keep") + encode_frame(b"torn")[:-3]
        scan = scan_frames(data)
        assert scan.payloads == [b"keep"]
        assert scan.torn

    def test_bad_magic_raises(self):
        with pytest.raises(CorruptSnapshot):
            scan_frames(b"XXXX" + b"\x00" * 20)

    def test_crc_flip_raises(self):
        data = bytearray(encode_frame(b"payload-bytes"))
        data[-1] ^= 0x01
        with pytest.raises(CorruptSnapshot):
            scan_frames(bytes(data))


class TestEnvelope:
    def test_round_trip(self):
        payload = json.dumps({"k": list(range(50))}).encode()
        assert unseal_snapshot(seal_snapshot(payload), "t") == payload

    def test_truncation_is_torn_write(self):
        sealed = seal_snapshot(b"x" * 100)
        for cut in (3, 20, len(sealed) - 1):
            with pytest.raises(TornWrite):
                unseal_snapshot(sealed[:cut], "t")

    def test_payload_flip_is_corrupt(self):
        sealed = bytearray(seal_snapshot(b"x" * 100))
        sealed[-1] ^= 0x01
        with pytest.raises(CorruptSnapshot):
            unseal_snapshot(bytes(sealed), "t")

    def test_bad_magic_is_corrupt(self):
        with pytest.raises(CorruptSnapshot):
            unseal_snapshot(b"NOTSNAP!" + b"\x00" * 100, "t")


class TestSnapshotStore:
    def test_empty_store_reads_none(self, tmp_path):
        assert SnapshotStore(tmp_path).read_latest() is None

    def test_generations_and_pruning(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2, fsync=False)
        for index in range(4):
            store.write(f"payload-{index}".encode(), watermark=index)
        generations = store.generations()
        assert [g.number for g in generations] == [3, 4]
        assert store.oldest_watermark() == 2
        generation, payload = store.read_latest()
        assert generation.number == 4
        assert payload == b"payload-3"

    def test_falls_back_when_newest_corrupt(self, tmp_path):
        metrics = MetricsRegistry()
        store = SnapshotStore(tmp_path, keep=3, fsync=False, metrics=metrics)
        store.write(b"good", watermark=1)
        store.write(b"newer", watermark=2)
        newest = store.generations()[-1].path
        blob = bytearray(newest.read_bytes())
        blob[-1] ^= 0x01
        newest.write_bytes(bytes(blob))
        generation, payload = store.read_latest()
        assert payload == b"good"
        assert generation.watermark == 1
        assert metrics.value("persist.checkpoints_rejected") == 1

    def test_all_corrupt_raises_not_none(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3, fsync=False)
        store.write(b"only", watermark=1)
        path = store.generations()[0].path
        path.write_bytes(path.read_bytes()[:10])  # torn
        with pytest.raises(CorruptSnapshot, match="failed"):
            store.read_latest()

    def test_read_routed_through_fault_point(self, tmp_path):
        faults = FaultInjector()
        store = SnapshotStore(tmp_path, fsync=False, faults=faults)
        store.write(b"payload", watermark=0)
        faults.arm(
            "snapshot.read", FaultPlan(corrupt_nth=1, corruptor=bit_flip)
        )
        with pytest.raises(CorruptSnapshot):
            store.read_latest()


class TestBatchJournal:
    def test_append_replay_round_trip(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.wal", fsync=False)
        records = [b"alpha", b"beta", b"gamma"]
        for record in records:
            journal.append(record)
        assert journal.replay().payloads == records

    def test_mid_append_crash_leaves_recoverable_torn_tail(self, tmp_path):
        faults = FaultInjector()
        journal = BatchJournal(tmp_path / "j.wal", fsync=False, faults=faults)
        journal.append(b"committed")
        faults.arm("journal.mid_append", FaultPlan(fail_nth=1))
        with pytest.raises(Exception):
            journal.append(b"torn-record")
        scan = journal.replay()
        assert scan.payloads == [b"committed"]
        assert scan.torn
        removed = journal.repair()
        assert removed > 0
        journal.append(b"after-repair")
        clean = journal.replay()
        assert clean.payloads == [b"committed", b"after-repair"]
        assert not clean.torn

    def test_rewrite_compacts_atomically(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.wal", fsync=False)
        for record in (b"a", b"b", b"c"):
            journal.append(record)
        journal.rewrite([b"c"])
        assert journal.replay().payloads == [b"c"]


class TestBitFlip:
    def test_flips_exactly_one_bit(self):
        assert bit_flip(b"\x00") == b"\x01"
        assert bit_flip(b"") == b""
        data = bytes(range(64))
        flipped = bit_flip(data, index=999)  # wraps, never raises
        assert len(flipped) == len(data)
        assert sum(a != b for a, b in zip(data, flipped)) == 1


def _batches(network, count, per_batch=3):
    out = []
    trid = 0
    for index in range(count):
        batch = []
        for _ in range(per_batch):
            route = [trid % 2, (trid % 2) + 1]
            batch.append(
                trajectory_through(network, trid, route, t0=float(index))
            )
            trid += 1
        out.append(batch)
    return out


class TestCheckpointManager:
    def test_load_empty_state_dir(self, tmp_path):
        recovered = CheckpointManager(tmp_path, fsync=False).load()
        assert recovered.generation is None
        assert recovered.watermark == 0
        assert recovered.batches == []

    def test_compaction_keeps_oldest_generation_replayable(
        self, tmp_path, grid3x3
    ):
        config = NEATConfig(min_card=0)
        clusterer = IncrementalNEAT(grid3x3, config)
        clusterer.enable_persistence(tmp_path, checkpoint_every=1, keep=2, fsync=False)
        manager = clusterer._persist
        for batch in _batches(grid3x3, 4):
            clusterer.add_batch(batch, auto_offset_ids=True)
        # keep=2 retains generations with watermarks 3 and 4; the journal
        # must still hold batch seq 3 so the older generation can replay
        # to the newest durable state.
        floor = manager.snapshots.oldest_watermark()
        assert floor == 3
        kept_seqs = [
            json.loads(p.decode())["seq"]
            for p in manager.journal.replay().payloads
        ]
        assert kept_seqs == [3]

    def test_sequence_gap_raises(self, tmp_path, line3):
        manager = CheckpointManager(tmp_path, fsync=False)
        batch = _batches(line3, 1)[0]
        manager.record_batch(0, batch)
        manager.record_batch(2, batch)  # 1 is missing
        with pytest.raises(CorruptSnapshot, match="sequence gap"):
            manager.load()

    def test_undecodable_record_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path, fsync=False)
        manager.journal.append(b"not json at all")
        with pytest.raises(CorruptSnapshot, match="undecodable batch record"):
            manager.load()

    def test_checkpoint_without_state_dir_raises(self, line3):
        clusterer = IncrementalNEAT(line3, NEATConfig(min_card=0))
        with pytest.raises(PersistenceError, match="no state directory"):
            clusterer.checkpoint()

    def test_batch_record_codec_round_trip(self, line3):
        batch = _batches(line3, 1)[0]
        from repro.persist import decode_batch_record

        seq, decoded = decode_batch_record(
            encode_batch_record(7, batch), "t"
        )
        assert seq == 7
        assert decoded == batch


class TestStatePayloadEncoder:
    def test_cached_encoding_parses_to_identical_document(
        self, tmp_path, grid3x3
    ):
        from repro.persist import encode_state_payload

        clusterer = IncrementalNEAT(grid3x3, NEATConfig(min_card=0))
        clusterer.enable_persistence(tmp_path, fsync=False)
        cache = {}
        for batch in _batches(grid3x3, 3):
            clusterer.add_batch(batch, auto_offset_ids=True)
            document = clusterer._state_document()
            plain = json.loads(encode_state_payload(document).decode())
            cached = json.loads(
                encode_state_payload(document, cache).decode()
            )
            # Warm-cache re-encode must also agree (the memoized path).
            rewarmed = json.loads(
                encode_state_payload(document, cache).decode()
            )
            # Compare through a parse round-trip: cached documents hold
            # tuples where plain ones hold lists (identical JSON).
            canonical = json.loads(json.dumps(document, sort_keys=True))
            assert cached == plain == rewarmed == canonical
        assert cache  # the memo actually filled
