"""Chaos suite: the service tier under injected faults.

Proves the acceptance behaviors of the robustness layer:

* a coordinator losing a data node still returns a valid ``NEATResult``
  equal to a centralized run over the surviving shards, reporting the
  loss in ``dropped_shards``;
* a service whose refresh fails serves the last validated snapshot
  flagged ``stale`` instead of raising;
* admission control, deadlines and the circuit breaker shed load
  explicitly;
* everything is deterministic under a seed — two identical chaos runs
  produce byte-identical telemetry counters.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import NEATConfig
from repro.core.incremental import IncrementalNEAT
from repro.core.pipeline import NEAT
from repro.core.serialize import result_from_dict
from repro.core.validate import validate_result
from repro.distributed import NeatCoordinator, NeatService
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    NodeDown,
    QuorumLost,
    ReproError,
    RetriesExhausted,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.obs import Telemetry
from repro.resilience import CircuitBreaker, FaultPlan, RetryPolicy
from repro.core.model import Location, Trajectory

from conftest import trajectory_through


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


NO_BACKOFF = RetryPolicy(max_retries=0, base_delay_s=0.0, jitter=0.0)


def line_batch(network, start_trid, count=3, sids=(0, 1, 2)):
    return [
        trajectory_through(network, start_trid + i, list(sids))
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# Coordinator chaos
# ----------------------------------------------------------------------
class TestCoordinatorFaults:
    def test_dead_node_yields_surviving_shard_result(self, small_workload):
        """FaultPlan(fail_nth=1), no retries, no re-dispatch: the result is
        exactly a centralized run over the surviving shards."""
        network, dataset = small_workload
        trajectories = list(dataset)
        config = NEATConfig(eps=500.0)
        telemetry = Telemetry.create()
        coordinator = NeatCoordinator(
            network, config, node_count=4,
            retry_policy=NO_BACKOFF, telemetry=telemetry, redispatch=False,
        )
        coordinator.nodes[0].fault_plan = FaultPlan(fail_nth=1)

        result = coordinator.run(trajectories, mode="opt")

        assert result.dropped_shards == [0]
        survivors = [t for i, t in enumerate(trajectories) if i % 4 != 0]
        central = NEAT(network, config).run_opt(survivors)
        assert [f.sids for f in result.flows] == [f.sids for f in central.flows]
        assert [
            sorted(tuple(f.sids) for f in c.flows) for c in result.clusters
        ] == [sorted(tuple(f.sids) for f in c.flows) for c in central.clusters]
        assert validate_result(result, network).ok
        assert coordinator.node_health() == {0: False, 1: True, 2: True, 3: True}
        counters = telemetry.metrics.as_dict()["counters"]
        assert counters["resilience.node_failures"] == 1
        assert counters["coordinator.shards_dropped"] == 1

    def test_transient_fault_recovered_by_retry(self, small_workload):
        network, dataset = small_workload
        trajectories = list(dataset)
        config = NEATConfig(eps=500.0)
        telemetry = Telemetry.create()
        coordinator = NeatCoordinator(
            network, config, node_count=4, telemetry=telemetry
        )
        coordinator.nodes[0].fault_plan = FaultPlan(fail_nth=1)

        result = coordinator.run(trajectories, mode="opt")

        assert result.dropped_shards == []
        central = NEAT(network, config).run_opt(trajectories)
        assert [f.sids for f in result.flows] == [f.sids for f in central.flows]
        assert coordinator.node_health()[0] is True
        assert telemetry.metrics.value("resilience.retries") == 1

    def test_dead_node_shard_redispatched_to_survivors(self, small_workload):
        """kill_from=1: node 0 is down for good, but its shard is re-run on
        a surviving node — the merged result equals the full centralized
        run (Phase 1 is distributive)."""
        network, dataset = small_workload
        trajectories = list(dataset)
        config = NEATConfig(eps=500.0)
        telemetry = Telemetry.create()
        coordinator = NeatCoordinator(
            network, config, node_count=4, telemetry=telemetry, redispatch=True
        )
        coordinator.nodes[0].fault_plan = FaultPlan(kill_from=1)

        result = coordinator.run(trajectories, mode="opt")

        assert result.dropped_shards == []
        central = NEAT(network, config).run_opt(trajectories)
        assert [f.sids for f in result.flows] == [f.sids for f in central.flows]
        assert coordinator.node_health()[0] is False
        counters = telemetry.metrics.as_dict()["counters"]
        assert counters["coordinator.shards_redispatched"] == 1
        assert counters["resilience.node_failures"] == 1

    def test_quorum_lost_when_too_many_shards_drop(self, line3):
        trajectories = line_batch(line3, 0, count=4)
        coordinator = NeatCoordinator(
            line3, NEATConfig(min_card=0), node_count=2,
            retry_policy=NO_BACKOFF, min_quorum=0.5,
        )
        for node in coordinator.nodes:
            node.fault_plan = FaultPlan(kill_from=1)
        with pytest.raises(QuorumLost):
            coordinator.run(trajectories, mode="base")

    def test_zero_quorum_proceeds_with_nothing(self, line3):
        trajectories = line_batch(line3, 0, count=4)
        coordinator = NeatCoordinator(
            line3, NEATConfig(min_card=0), node_count=2,
            retry_policy=NO_BACKOFF,
        )
        for node in coordinator.nodes:
            node.fault_plan = FaultPlan(kill_from=1)
        result = coordinator.run(trajectories, mode="base")
        assert result.base_clusters == []
        assert result.dropped_shards == [0, 1]

    def test_dead_node_raises_node_down_directly(self, line3):
        coordinator = NeatCoordinator(line3, node_count=2)
        node = coordinator.nodes[0]
        node.kill()
        with pytest.raises(NodeDown):
            node.preprocess()
        node.revive()
        assert node.preprocess() == []

    def test_dropped_shards_in_wire_format(self, small_workload):
        from repro.core.serialize import result_to_dict

        network, dataset = small_workload
        trajectories = list(dataset)
        coordinator = NeatCoordinator(
            network, NEATConfig(eps=500.0), node_count=4,
            retry_policy=NO_BACKOFF, redispatch=False,
        )
        coordinator.nodes[2].fault_plan = FaultPlan(kill_from=1)
        result = coordinator.run(trajectories, mode="opt")
        document = result_to_dict(result, network_name=network.name)
        assert document["dropped_shards"] == [2]
        restored = result_from_dict(document, network)
        assert restored.dropped_shards == [2]


# ----------------------------------------------------------------------
# Service chaos
# ----------------------------------------------------------------------
class TestServiceDegradedMode:
    def test_refresh_fault_serves_stale_snapshot(self, line3):
        service = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        service.submit(line_batch(line3, 0))
        fresh = service.get_clustering()
        assert fresh["stale"] is False

        service.faults.arm("refresh", FaultPlan(kill_from=1))
        degraded = service.get_clustering()

        assert degraded["stale"] is True
        unstale = dict(degraded)
        unstale["stale"] = False
        assert unstale == fresh  # same payload, only the flag differs
        assert service.stats().stale_queries == 1
        assert (
            service.telemetry.metrics.value("service.stale_queries") == 1
        )

    def test_stale_document_round_trips(self, line3):
        service = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        service.submit(line_batch(line3, 0))
        service.faults.arm("refresh", FaultPlan(kill_from=1))
        degraded = service.get_clustering()
        restored = result_from_dict(degraded, line3)
        assert len(restored.flows) == service.stats().flow_count

    def test_snapshot_comes_from_last_successful_ingest(self, line3):
        service = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        service.submit(line_batch(line3, 0))
        service.submit(line_batch(line3, 10))
        service.faults.arm("refresh", FaultPlan(kill_from=1))
        degraded = service.get_clustering()
        assert degraded["stale"] is True
        assert len(degraded["flows"]) == 2  # both batches' flows present

    def test_recovery_clears_degradation(self, line3):
        service = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        service.submit(line_batch(line3, 0))
        service.faults.arm("refresh", FaultPlan(fail_nth=(1, 2, 3)))
        assert service.get_clustering()["stale"] is True
        service.faults.disarm("refresh")
        assert service.get_clustering()["stale"] is False
        assert service.stats().stale_queries == 1

    def test_no_snapshot_means_unavailable(self, line3):
        service = NeatService(
            line3, NEATConfig(min_card=0), retry_policy=NO_BACKOFF
        )
        service.faults.arm("refresh", FaultPlan(kill_from=1))
        with pytest.raises(ServiceUnavailable):
            service.get_clustering()


class TestServiceAdmissionControl:
    def test_overload_rejection_when_queue_full(self, line3):
        config = NEATConfig(min_card=0, eps=500.0, max_pending=2)
        service = NeatService(line3, config, retry_policy=NO_BACKOFF)
        service.faults.arm("ingest", FaultPlan(kill_from=1))

        for start in (0, 10):
            with pytest.raises(RetriesExhausted):
                service.submit(line_batch(line3, start))
        assert service.pending_batches == 2

        with pytest.raises(ServiceOverloaded):
            service.submit(line_batch(line3, 20))
        stats = service.stats()
        assert stats.overload_rejections == 1
        assert stats.batches_ingested == 0

    def test_flush_pending_recovers_queued_batches(self, line3):
        config = NEATConfig(min_card=0, eps=500.0, max_pending=4)
        service = NeatService(line3, config, retry_policy=NO_BACKOFF)
        service.faults.arm("ingest", FaultPlan(kill_from=1))
        for start in (0, 10):
            with pytest.raises(RetriesExhausted):
                service.submit(line_batch(line3, start))
        service.faults.disarm("ingest")

        assert service.flush_pending() == 0
        stats = service.stats()
        assert stats.batches_ingested == 2
        assert stats.pending_batches == 0
        assert len(service.get_clustering()["flows"]) == 2

    def test_queue_drains_oldest_first_on_next_submit(self, line3):
        config = NEATConfig(min_card=0, eps=500.0)
        service = NeatService(line3, config, retry_policy=NO_BACKOFF)
        service.faults.arm("ingest", FaultPlan(fail_nth=1))
        with pytest.raises(RetriesExhausted):
            service.submit(line_batch(line3, 0))
        # The next submit first retries the stuck batch, then its own.
        ack = service.submit(line_batch(line3, 10))
        assert service.pending_batches == 0
        assert service.stats().batches_ingested == 2
        assert ack["batch"] == 1  # the caller's batch was the second ingested


class TestServiceBreakerAndDeadline:
    def test_breaker_trips_and_recovers(self, line3):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "service.ingest", failure_threshold=2, recovery_s=10.0, clock=clock
        )
        config = NEATConfig(min_card=0, eps=500.0, max_pending=8)
        service = NeatService(
            line3, config, retry_policy=NO_BACKOFF,
            breaker=breaker, clock=clock,
        )
        service.faults.arm("ingest", FaultPlan(kill_from=1))
        for start in (0, 10):
            with pytest.raises(RetriesExhausted):
                service.submit(line_batch(line3, start))
        # Two consecutive batch failures tripped the breaker: the next
        # submit is shed immediately, without touching ingestion.
        with pytest.raises(CircuitOpenError):
            service.submit(line_batch(line3, 20))
        assert service.stats().breaker_trips == 1
        assert service.pending_batches == 3

        service.faults.disarm("ingest")
        clock.advance(10.0)  # recovery: half-open admits a trial call
        assert service.flush_pending() == 0
        assert service.breaker.state == CircuitBreaker.CLOSED
        assert service.stats().batches_ingested == 3

    def test_submit_deadline_aborts_backoff(self, line3):
        clock = FakeClock()
        config = NEATConfig(min_card=0, eps=500.0, deadline_s=1.0)
        service = NeatService(
            line3, config, clock=clock,
            retry_policy=RetryPolicy(
                max_retries=3, base_delay_s=5.0, jitter=0.0
            ),
        )
        service.faults.arm("ingest", FaultPlan(kill_from=1))
        with pytest.raises(DeadlineExceeded):
            service.submit(line_batch(line3, 0))
        assert service.stats().deadline_exceeded == 1

    def test_per_call_deadline_overrides_config(self, line3):
        clock = FakeClock()
        service = NeatService(
            line3, NEATConfig(min_card=0, eps=500.0), clock=clock,
            retry_policy=RetryPolicy(
                max_retries=3, base_delay_s=5.0, jitter=0.0
            ),
        )
        service.faults.arm("ingest", FaultPlan(kill_from=1))
        with pytest.raises(DeadlineExceeded):
            service.submit(line_batch(line3, 0), deadline_s=2.0)

    def test_query_deadline_has_no_stale_fallback(self, line3):
        clock = FakeClock()
        service = NeatService(
            line3, NEATConfig(min_card=0, eps=500.0), clock=clock,
            retry_policy=RetryPolicy(
                max_retries=3, base_delay_s=5.0, jitter=0.0
            ),
        )
        service.submit(line_batch(line3, 0))
        service.faults.arm("refresh", FaultPlan(kill_from=1))
        with pytest.raises(DeadlineExceeded):
            service.get_clustering(deadline_s=1.0)
        assert service.stats().stale_queries == 0


class TestIngestRollback:
    def test_failed_batch_leaves_clusterer_untouched(self, line3):
        incremental = IncrementalNEAT(line3, NEATConfig(min_card=0, eps=500.0))
        incremental.add_batch(line_batch(line3, 0))
        flows_before = [f.sids for f in incremental.flows]

        bad = Trajectory(99, (
            Location(999, 0.0, 0.0, 0.0), Location(999, 1.0, 0.0, 5.0),
        ))
        with pytest.raises(ReproError):
            incremental.add_batch([bad], auto_offset_ids=False)

        assert [f.sids for f in incremental.flows] == flows_before
        assert incremental.batch_count == 1
        # The stream continues cleanly after the rollback.
        result = incremental.add_batch(line_batch(line3, 10))
        assert result.batch_index == 1
        assert len(incremental.flows) == 2
        assert (
            incremental.telemetry.metrics.value(
                "incremental.rolled_back_batches"
            ) == 1
        )


# ----------------------------------------------------------------------
# Determinism: identical chaos runs -> byte-identical counters
# ----------------------------------------------------------------------
class TestDeterminism:
    @staticmethod
    def _service_chaos_run(line3):
        policy = RetryPolicy(max_retries=2, base_delay_s=0.1, jitter=0.5, seed=42)
        slept: list[float] = []
        service = NeatService(
            line3, NEATConfig(min_card=0, eps=500.0, max_pending=2),
            retry_policy=policy, sleep=slept.append,
        )
        service.faults.arm("ingest", FaultPlan(fail_nth=1))
        service.submit(line_batch(line3, 0))  # fails once, jittered retry wins
        service.faults.arm("refresh", FaultPlan(kill_from=1))
        service.get_clustering()  # stale
        service.get_clustering()  # stale again
        counters = service.metrics_snapshot()["metrics"]["counters"]
        return json.dumps(counters, sort_keys=True), tuple(slept)

    def test_service_chaos_counters_are_byte_identical(self, line3):
        first_counters, first_sleeps = self._service_chaos_run(line3)
        second_counters, second_sleeps = self._service_chaos_run(line3)
        assert first_counters == second_counters
        assert first_sleeps == second_sleeps
        assert first_sleeps  # the jittered backoff actually ran

    @staticmethod
    def _coordinator_chaos_run(network, trajectories):
        telemetry = Telemetry.create()
        coordinator = NeatCoordinator(
            network, NEATConfig(eps=500.0), node_count=4,
            retry_policy=RetryPolicy(
                max_retries=1, base_delay_s=0.0, jitter=0.0
            ),
            telemetry=telemetry, redispatch=True,
        )
        coordinator.nodes[1].fault_plan = FaultPlan(kill_from=1)
        result = coordinator.run(trajectories, mode="opt")
        counters = telemetry.metrics.as_dict()["counters"]
        return json.dumps(counters, sort_keys=True), [
            tuple(f.sids) for f in result.flows
        ]

    def test_coordinator_chaos_counters_are_byte_identical(self, small_workload):
        network, dataset = small_workload
        trajectories = list(dataset)
        first = self._coordinator_chaos_run(network, trajectories)
        second = self._coordinator_chaos_run(network, trajectories)
        assert first == second
