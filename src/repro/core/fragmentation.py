"""Phase 1, step 1: partitioning trajectories into t-fragments.

Implements Section III-A1 of the paper.  Every pair of consecutive samples
is inspected: when their road segments differ, the junction crossings
between them are recovered (directly for contiguous segments, via
path inference otherwise) and the crossed junctions are inserted as new,
specially-marked points.  The augmented trajectory is then split at those
junction points into :class:`~repro.core.model.TFragment` objects, each of
which lies entirely on one road segment and keeps the source trajectory's
identity, route and direction.
"""

from __future__ import annotations

from functools import partial
from typing import Iterable

from ..errors import UnknownSegmentError
from ..mapmatch.path_inference import infer_crossings
from ..parallel import map_chunked, network_resource
from ..roadnet.network import RoadNetwork
from .model import Location, TFragment, Trajectory


def insert_junction_points(
    network: RoadNetwork, trajectory: Trajectory
) -> list[Location]:
    """The trajectory's samples with junction crossings spliced in.

    Each crossing contributes *two* co-located junction points: one closing
    the segment being left and one opening the segment being entered, so a
    later linear scan can split exactly at segment changes.  Crossing
    timestamps are interpolated evenly between the surrounding samples.
    """
    augmented: list[Location] = []
    locations = trajectory.locations
    for i, current in enumerate(locations):
        if not network.has_segment(current.sid):
            raise UnknownSegmentError(current.sid)
        augmented.append(current)
        if i + 1 >= len(locations):
            break
        nxt = locations[i + 1]
        if current.sid == nxt.sid:
            continue
        crossings = infer_crossings(network, current.sid, nxt.sid)
        leaving_sid = current.sid
        for j, crossing in enumerate(crossings):
            point = network.node_point(crossing.node_id)
            t = current.t + (nxt.t - current.t) * (j + 1) / (len(crossings) + 1)
            augmented.append(
                Location(leaving_sid, point.x, point.y, t, node_id=crossing.node_id)
            )
            augmented.append(
                Location(crossing.sid, point.x, point.y, t, node_id=crossing.node_id)
            )
            leaving_sid = crossing.sid
    return augmented


def fragment_trajectory(
    network: RoadNetwork,
    trajectory: Trajectory,
    keep_interior_points: bool = False,
) -> list[TFragment]:
    """Partition one trajectory into its sequence of t-fragments.

    Args:
        network: The road network the trajectory lives on.
        trajectory: A network-matched trajectory (every sample has a sid).
        keep_interior_points: When ``False`` (the paper's behaviour), each
            fragment keeps only its boundary points — the trajectory's
            first/last sample and inserted junction points.  When ``True``,
            original interior samples are retained as well.

    Returns:
        The fragments in travel order.  Consecutive fragments lie on
        adjacent road segments by construction.
    """
    augmented = insert_junction_points(network, trajectory)
    fragments: list[TFragment] = []
    run: list[Location] = []
    for location in augmented:
        if run and location.sid != run[-1].sid:
            fragments.append(_make_fragment(trajectory.trid, run, keep_interior_points))
            run = []
        run.append(location)
    if run:
        fragments.append(_make_fragment(trajectory.trid, run, keep_interior_points))
    return fragments


def _make_fragment(
    trid: int, run: list[Location], keep_interior_points: bool
) -> TFragment:
    """Build a fragment from a same-sid run of locations."""
    if keep_interior_points or len(run) <= 2:
        kept = tuple(run)
    else:
        kept = (run[0], run[-1])
    return TFragment(trid=trid, sid=run[0].sid, locations=kept)


#: Below this many trajectories per worker, Phase 1 stays serial — one
#: fragmentation is cheap, so a pool needs a real backlog to pay off.
MIN_TRAJECTORIES_PER_WORKER = 16


def _fragment_chunk(
    keep_interior_points: bool,
    network: RoadNetwork,
    trajectories: list[Trajectory],
) -> list[TFragment]:
    """Worker-side Phase 1 unit: fragment one contiguous trajectory chunk.

    Module level (picklable); the network arrives as a pool resource
    broadcast once per worker start, not pickled per chunk.
    """
    fragments: list[TFragment] = []
    for trajectory in trajectories:
        fragments.extend(
            fragment_trajectory(network, trajectory, keep_interior_points)
        )
    return fragments


def fragment_all(
    network: RoadNetwork,
    trajectories: Iterable[Trajectory],
    keep_interior_points: bool = False,
    workers: int | None = 1,
) -> list[TFragment]:
    """Fragment every trajectory, concatenating results in input order.

    Args:
        workers: Fan the trajectories out per-chunk over the persistent
            worker pool (``None``/``0`` = one per CPU, ``<=1`` = serial,
            the default).  The network is registered as a broadcast-once
            pool resource; chunks are contiguous and results merge in
            input order, so the output is identical to a serial run.
    """
    trajectory_list = list(trajectories)
    return map_chunked(
        partial(_fragment_chunk, keep_interior_points),
        trajectory_list,
        workers=workers,
        min_items_per_worker=MIN_TRAJECTORIES_PER_WORKER,
        resource=network_resource(network),
    )
