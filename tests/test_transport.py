"""Tests for repro.distributed.transport: the framed TCP wire protocol.

Covers the frame codec (roundtrip, bad magic, bad CRC, absurd length),
the versioned handshake, the four RPCs against an in-process
:class:`ShardNodeServer`, all four scheduled connection faults
(refuse / drop / stall / garble) at deterministic 1-based call indexes,
retry recovery across faults, the determinism of the ``transport.*``
counters under identical chaos schedules, and byte-identity of a
remote-node coordinator run against the serial pipeline.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.core.serialize import result_to_dict
from repro.distributed import (
    NeatCoordinator,
    RegionShardMap,
    RemoteDataNode,
    ShardNodeServer,
    TransportClient,
)
from repro.distributed.transport import (
    FRAME_HEADER,
    FRAME_MAGIC,
    FrameError,
    TornFrame,
    clusters_from_wire,
    clusters_to_wire,
    decode_frame,
    encode_frame,
    read_frame,
    trajectories_from_wire,
    trajectories_to_wire,
)
from repro.errors import HandshakeFailed, NodeDown, TransportError
from repro.obs import Telemetry
from repro.resilience import FaultInjector, FaultPlan

from conftest import trajectory_through


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_roundtrip(self):
        for payload in (b"", b"x", b'{"op": "ping"}', bytes(range(256))):
            assert decode_frame(encode_frame(payload)) == payload

    def test_read_frame_stream(self):
        stream = io.BytesIO(encode_frame(b"one") + encode_frame(b"two"))
        assert read_frame(stream) == b"one"
        assert read_frame(stream) == b"two"
        assert read_frame(stream) is None  # clean EOF at a boundary

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(b"payload"))
        frame[:4] = b"NOPE"
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))
        with pytest.raises(FrameError):
            read_frame(io.BytesIO(bytes(frame)))

    def test_bad_crc_rejected(self):
        frame = bytearray(encode_frame(b"payload"))
        frame[FRAME_HEADER.size] ^= 0x01  # flip one payload bit
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))

    def test_torn_frame_detected(self):
        frame = encode_frame(b"a longer payload than the cut")
        for cut in (1, FRAME_HEADER.size - 1, FRAME_HEADER.size + 3):
            with pytest.raises(TornFrame):
                read_frame(io.BytesIO(frame[:cut]))

    def test_absurd_length_rejected(self):
        header = FRAME_HEADER.pack(FRAME_MAGIC, 2**31, 0)
        with pytest.raises(FrameError):
            read_frame(io.BytesIO(header + b"x" * 64))

    def test_trajectory_wire_roundtrip(self, line3):
        trajectories = [
            trajectory_through(line3, 7, [0, 1, 2]),
            trajectory_through(line3, 9, [2, 1]),
        ]
        rows = trajectories_to_wire(trajectories)
        json.dumps(rows)  # must be JSON-serializable as-is
        assert trajectories_from_wire(rows) == trajectories

    def test_cluster_wire_roundtrip(self, line3):
        from repro.core.base_cluster import form_base_clusters

        trajectories = [trajectory_through(line3, i, [0, 1, 2]) for i in range(4)]
        clusters = form_base_clusters(line3, trajectories)
        rows = clusters_to_wire(clusters)
        json.dumps(rows)
        restored = clusters_from_wire(rows)
        assert [c.sid for c in restored] == [c.sid for c in clusters]
        assert [c.fragments for c in restored] == [c.fragments for c in clusters]


# ----------------------------------------------------------------------
# RPCs against a live in-process server
# ----------------------------------------------------------------------
@pytest.fixture
def shard(line3):
    server = ShardNodeServer(line3, node_id=0).start()
    yield server
    server.stop()


class TestShardRPC:
    def test_ping(self, shard):
        client = TransportClient(shard.host, shard.port)
        assert client.call("ping") == {"node_id": 0}

    def test_preprocess_matches_local(self, line3, shard):
        from repro.core.base_cluster import form_base_clusters

        trajectories = [trajectory_through(line3, i, [0, 1, 2]) for i in range(5)]
        client = TransportClient(shard.host, shard.port)
        result = client.call(
            "preprocess",
            {"trajectories": trajectories_to_wire(trajectories),
             "keep_interior_points": False},
        )
        remote = clusters_from_wire(result["clusters"])
        local = form_base_clusters(line3, trajectories)
        assert [c.sid for c in remote] == [c.sid for c in local]
        assert [c.fragments for c in remote] == [c.fragments for c in local]

    def test_stats_counts_requests(self, line3, shard):
        client = TransportClient(shard.host, shard.port)
        client.call("ping")
        stats = client.call("stats")
        assert stats["node_id"] == 0
        assert stats["requests"] >= 2
        assert stats["bad_frames"] == 0

    def test_unknown_op_is_protocol_error(self, shard):
        client = TransportClient(shard.host, shard.port)
        with pytest.raises(TransportError) as excinfo:
            client.call("frobnicate")
        assert excinfo.value.kind == "protocol"

    def test_handshake_version_mismatch(self, shard):
        client = TransportClient(shard.host, shard.port, proto=99)
        with pytest.raises(HandshakeFailed):
            client.call("ping")
        # The server survives a rejected hello and keeps serving.
        assert TransportClient(shard.host, shard.port).call("ping") == {"node_id": 0}

    def test_shutdown_rpc_stops_server(self, line3):
        server = ShardNodeServer(line3, node_id=3).start()
        client = TransportClient(server.host, server.port)
        assert client.call("shutdown") == {"stopping": True}
        assert server._shutdown_requested.wait(timeout=5.0)
        server.stop()

    def test_connect_to_dead_server_is_refused(self, line3):
        server = ShardNodeServer(line3, node_id=1).start()
        host, port = server.host, server.port
        server.stop()
        client = TransportClient(host, port, timeout_s=1.0)
        with pytest.raises(TransportError) as excinfo:
            client.call("ping")
        assert excinfo.value.kind == "refused"


# ----------------------------------------------------------------------
# Scheduled connection faults — organic, deterministic, counted
# ----------------------------------------------------------------------
def chaos_client(shard, plan: FaultPlan, metrics=None, timeout_s: float = 5.0):
    faults = FaultInjector()
    faults.arm("transport.node0", plan)
    return TransportClient(
        shard.host, shard.port, timeout_s=timeout_s,
        faults=faults, fault_operation="transport.node0", metrics=metrics,
    ), faults


class TestConnectionFaults:
    def test_refuse_at_exact_index(self, shard):
        client, faults = chaos_client(shard, FaultPlan(refuse_nth=2))
        assert client.call("ping") == {"node_id": 0}
        with pytest.raises(TransportError) as excinfo:
            client.call("ping")
        assert excinfo.value.kind == "refused"
        assert client.call("ping") == {"node_id": 0}  # 3rd call clean
        assert faults.wrapper("transport.node0").injected_failures == 1

    def test_drop_mid_message(self, shard):
        client, _ = chaos_client(shard, FaultPlan(drop_nth=1))
        with pytest.raises(TransportError) as excinfo:
            client.call("ping")
        assert excinfo.value.kind == "dropped"
        # The server saw a torn frame, counted it, and kept serving.
        stats = TransportClient(shard.host, shard.port).call("stats")
        assert stats["torn_frames"] == 1
        assert client.call("ping") == {"node_id": 0}

    def test_stall_past_deadline(self, shard):
        client, _ = chaos_client(
            shard, FaultPlan(stall_nth=1, stall_s=2.0), timeout_s=0.3
        )
        with pytest.raises(TransportError) as excinfo:
            client.call("ping")
        assert excinfo.value.kind == "stalled"
        assert client.call("ping") == {"node_id": 0}

    def test_garbled_frame_rejected_by_crc(self, shard):
        client, _ = chaos_client(shard, FaultPlan(garble_nth=1))
        with pytest.raises(TransportError) as excinfo:
            client.call("ping")
        assert excinfo.value.kind == "garbled"
        stats = TransportClient(shard.host, shard.port).call("stats")
        assert stats["bad_frames"] == 1
        assert client.call("ping") == {"node_id": 0}

    def test_chaos_counters_deterministic_across_runs(self, shard):
        plan = FaultPlan(refuse_nth=1, drop_nth=3, stall_nth=5,
                         garble_nth=7, stall_s=2.0)

        def run_schedule() -> dict[str, float]:
            telemetry = Telemetry.create()
            client, _ = chaos_client(
                shard, plan, metrics=telemetry.metrics, timeout_s=0.3
            )
            outcomes = []
            for _ in range(8):
                try:
                    client.call("ping")
                    outcomes.append("ok")
                except TransportError as error:
                    outcomes.append(error.kind)
            counters = {
                inst.name: inst.value
                for inst in telemetry.metrics if inst.kind == "counter"
            }
            return outcomes, counters

        first_outcomes, first = run_schedule()
        second_outcomes, second = run_schedule()
        assert first_outcomes == [
            "refused", "ok", "dropped", "ok", "stalled", "ok", "garbled", "ok",
        ]
        assert first_outcomes == second_outcomes
        assert first == second
        assert first["transport.requests"] == 8
        assert first["transport.errors"] == 4
        for kind in ("refused", "dropped", "stalled", "garbled"):
            assert first[f"transport.{kind}"] == 1


# ----------------------------------------------------------------------
# The coordinator over remote nodes
# ----------------------------------------------------------------------
class TestRemoteCoordinator:
    def test_remote_node_duck_types(self, line3, shard):
        node = RemoteDataNode(0, TransportClient(shard.host, shard.port))
        assert node.ping()
        node.kill()
        with pytest.raises(NodeDown):
            node.preprocess_batch([])
        node.revive()
        assert node.preprocess_batch([]) == []

    def test_remote_run_byte_identical_to_serial(self, small_workload):
        network, dataset = small_workload
        trajectories = list(dataset)
        serial = NEAT(network, NEATConfig()).run(trajectories, mode="opt")
        reference = json.dumps(
            result_to_dict(serial, network_name=network.name), sort_keys=True
        )

        servers = [ShardNodeServer(network, node_id=i).start() for i in range(3)]
        try:
            nodes = [
                RemoteDataNode(i, TransportClient(s.host, s.port))
                for i, s in enumerate(servers)
            ]
            coordinator = NeatCoordinator(
                network, NEATConfig(), nodes=nodes,
                shardmap=RegionShardMap(network, [0, 1, 2]),
            )
            result = coordinator.run(trajectories, mode="opt")
            document = json.dumps(
                result_to_dict(result, network_name=network.name), sort_keys=True
            )
        finally:
            for server in servers:
                server.stop()
        assert document == reference

    def test_remote_run_with_retryable_faults_still_identical(
        self, small_workload
    ):
        network, dataset = small_workload
        trajectories = list(dataset)
        serial = NEAT(network, NEATConfig()).run(trajectories, mode="opt")
        reference = json.dumps(
            result_to_dict(serial, network_name=network.name), sort_keys=True
        )

        faults = FaultInjector()
        faults.arm("transport.node0", FaultPlan(refuse_nth=1))
        faults.arm("transport.node1", FaultPlan(garble_nth=1))
        servers = [ShardNodeServer(network, node_id=i).start() for i in range(2)]
        try:
            nodes = [
                RemoteDataNode(i, TransportClient(
                    s.host, s.port, faults=faults,
                    fault_operation=f"transport.node{i}",
                ))
                for i, s in enumerate(servers)
            ]
            coordinator = NeatCoordinator(
                network, NEATConfig(), nodes=nodes,
                shardmap=RegionShardMap(network, [0, 1]),
            )
            result = coordinator.run(trajectories, mode="opt")
            document = json.dumps(
                result_to_dict(result, network_name=network.name), sort_keys=True
            )
        finally:
            for server in servers:
                server.stop()
        assert document == reference
        assert result.dropped_shards == []
