"""Worker-pool helpers and process-parallel pipeline determinism.

The contract under test: any ``workers`` setting produces byte-identical
pipeline output (cluster membership, representative routes, telemetry
counters) to a serial run — parallelism may only change wall-clock time.
"""

from __future__ import annotations

import pytest

import repro.core.fragmentation as fragmentation_module
import repro.roadnet.shortest_path as sp_module
from repro.core import NEAT, NEATConfig
from repro.core.base_cluster import form_base_clusters
from repro.core.fragmentation import fragment_all
from repro.errors import ConfigError
from repro.mobisim.simulator import SimulationConfig, simulate_dataset
from repro.parallel import (
    effective_workers,
    map_chunked,
    resolve_workers,
    split_chunks,
)
from repro.roadnet import GridConfig, generate_grid_network, many_to_many_distances


def _double_chunk(chunk):
    """Module-level chunk fn so the process pool can pickle it."""
    return [2 * x for x in chunk]


class TestWorkerResolution:
    def test_auto_modes(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_effective_workers_degrades_for_small_batches(self):
        assert effective_workers(8, 10, min_items_per_worker=32) == 1
        assert effective_workers(8, 64, min_items_per_worker=32) == 2
        assert effective_workers(2, 10_000, min_items_per_worker=32) == 2
        assert effective_workers(1, 10_000) == 1

    def test_config_validates_workers(self):
        assert NEATConfig(workers=None).workers is None
        assert NEATConfig(workers=4).workers == 4
        with pytest.raises(ConfigError):
            NEATConfig(workers=-2)

    def test_config_validates_backend(self):
        with pytest.raises(ConfigError):
            NEATConfig(sp_backend="quantum")


class TestChunking:
    def test_split_chunks_partition(self):
        items = list(range(23))
        chunks = split_chunks(items, 5)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) == 5
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_split_chunks_never_empty(self):
        assert split_chunks([1, 2], 8) == [[1], [2]]
        assert split_chunks([], 3) == [[]]

    def test_map_chunked_serial_equals_parallel(self):
        items = list(range(101))
        serial = map_chunked(_double_chunk, items, workers=1)
        parallel = map_chunked(
            _double_chunk, items, workers=3, min_items_per_worker=1
        )
        assert serial == parallel == [2 * x for x in items]

    def test_map_chunked_empty(self):
        assert map_chunked(_double_chunk, [], workers=4) == []


@pytest.fixture(scope="module")
def workload():
    network = generate_grid_network(GridConfig(rows=12, cols=12, seed=5))
    dataset = simulate_dataset(
        network,
        SimulationConfig(object_count=80, seed=9, name="parallel-agreement"),
    )
    return network, dataset


def _force_small_thresholds(monkeypatch):
    """Let tiny test workloads actually reach the process pool."""
    monkeypatch.setattr(fragmentation_module, "MIN_TRAJECTORIES_PER_WORKER", 1)
    monkeypatch.setattr(sp_module, "MIN_PAIRS_PER_WORKER", 1)


def _cluster_key(result):
    """Order-insensitive identity of final clusters and their routes."""
    return sorted(
        sorted((flow.endpoints, flow.route_length, tuple(sorted(flow.participants)))
               for flow in cluster.flows)
        for cluster in result.clusters
    )


class TestPhase1Parallel:
    def test_fragments_identical(self, workload, monkeypatch):
        _force_small_thresholds(monkeypatch)
        network, dataset = workload
        trajectories = list(dataset.trajectories)
        serial = fragment_all(network, trajectories, workers=1)
        fanned = fragment_all(network, trajectories, workers=4)
        assert serial == fanned

    def test_base_clusters_identical(self, workload, monkeypatch):
        _force_small_thresholds(monkeypatch)
        network, dataset = workload
        trajectories = list(dataset.trajectories)
        serial = form_base_clusters(network, trajectories, workers=1)
        fanned = form_base_clusters(network, trajectories, workers=4)
        assert [(c.sid, c.fragments) for c in serial] == [
            (c.sid, c.fragments) for c in fanned
        ]


class TestPipelineAgreement:
    """Acceptance: identical output across backends and worker counts."""

    def test_workers_and_backends_agree(self, workload, monkeypatch):
        _force_small_thresholds(monkeypatch)
        network, dataset = workload
        results = {}
        engines = {}
        for label, workers, backend in (
            ("serial-csr", 1, "csr"),
            ("parallel-csr", 4, "csr"),
            ("serial-dict", 1, "dict"),
            ("parallel-dict", 4, "dict"),
        ):
            neat = NEAT(
                network,
                NEATConfig(eps=1500.0, workers=workers, sp_backend=backend),
            )
            results[label] = neat.run_opt(dataset)
            engines[label] = neat.engine
        keys = {label: _cluster_key(result) for label, result in results.items()}
        assert keys["serial-csr"] == keys["parallel-csr"]
        assert keys["serial-csr"] == keys["serial-dict"]
        assert keys["serial-dict"] == keys["parallel-dict"]

        # Figure-7 accounting is exact: parallel prefetching must not
        # change what the engine reports having done.
        for backend in ("csr", "dict"):
            serial = engines[f"serial-{backend}"]
            parallel = engines[f"parallel-{backend}"]
            assert serial.computations == parallel.computations
            assert serial.cache_hits == parallel.cache_hits
            assert serial.nodes_expanded == parallel.nodes_expanded
        assert (
            results["serial-csr"].refinement_stats
            == results["parallel-csr"].refinement_stats
        )
        # Both backends run the same memoized searches.
        assert (
            engines["serial-csr"].computations
            == engines["serial-dict"].computations
        )

    def test_elb_disabled_agreement(self, workload, monkeypatch):
        _force_small_thresholds(monkeypatch)
        network, dataset = workload
        outs = []
        for workers in (1, 4):
            neat = NEAT(
                network,
                NEATConfig(eps=1200.0, workers=workers, use_elb=False),
            )
            outs.append(_cluster_key(neat.run_opt(dataset)))
        assert outs[0] == outs[1]


class TestManyToManyParallel:
    def test_matches_serial(self, workload):
        network, _ = workload
        ids = network.node_ids()
        sources = ids[::9]
        targets = ids[::7]
        serial = many_to_many_distances(network, sources, targets, workers=1)
        fanned = many_to_many_distances(network, sources, targets, workers=3)
        assert serial == fanned
