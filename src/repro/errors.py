"""Exception hierarchy for the NEAT reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class RoadNetworkError(ReproError):
    """Structural problem in a road network (unknown node, segment, ...)."""


class UnknownNodeError(RoadNetworkError):
    """A node id was referenced that does not exist in the network."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"unknown junction node: {node_id!r}")
        self.node_id = node_id


class UnknownSegmentError(RoadNetworkError):
    """A segment id was referenced that does not exist in the network."""

    def __init__(self, sid: int) -> None:
        super().__init__(f"unknown road segment: {sid!r}")
        self.sid = sid


class DuplicateSegmentError(RoadNetworkError):
    """Attempted to register a segment id twice."""

    def __init__(self, sid: int) -> None:
        super().__init__(f"duplicate road segment id: {sid!r}")
        self.sid = sid


class NoPathError(RoadNetworkError):
    """No route exists between two network locations."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"no path from {source!r} to {target!r}")
        self.source = source
        self.target = target


class TrajectoryError(ReproError):
    """Malformed trajectory input (too few points, bad ordering, ...)."""


class MapMatchError(ReproError):
    """Map matching failed to assign a location to any road segment."""


class ClusteringError(ReproError):
    """A clustering phase received inconsistent input."""


class ConfigError(ReproError):
    """Invalid algorithm configuration (weights, thresholds, ...)."""
