"""Zero-copy acceptance: byte-identical output everywhere it must be.

Three parity axes, each of which the zero-copy core could plausibly
break and therefore must be pinned:

* worker count — shared-memory CSR kernels vs serial inline runs;
* shortest-path backend — shared CSR vs the broadcast dict network;
* vector backend — the numpy bound kernels vs the stdlib loops
  (hypothesis drives the ELB guard band with adversarial coordinates
  right at the eps boundary).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.fragmentation as fragmentation_module
import repro.roadnet.shortest_path as sp_module
from repro.core import NEAT, NEATConfig
from repro.core.bounds import elb_far_mask, llb_far_mask
from repro.core.refinement import euclidean_lower_bound, landmark_lower_bound
from repro.errors import ConfigError
from repro.mobisim.simulator import SimulationConfig, simulate_dataset
from repro.roadnet import GridConfig, generate_grid_network
from repro.vec import get_numpy, resolve_vector_backend

HAVE_NUMPY = get_numpy() is not None

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy absent or disabled via REPRO_NO_NUMPY"
)


# ----------------------------------------------------------------------
# Mask parity (hypothesis): numpy and python kernels must decide alike.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _StubFlow:
    endpoints: tuple[int, int]


class _StubNetwork:
    """node_point-only network stub over explicit coordinates."""

    def __init__(self, points):
        from repro.roadnet.geometry import Point

        self._points = {i: Point(x, y) for i, (x, y) in enumerate(points)}

    def node_point(self, node_id):
        return self._points[node_id]


class _StubOracle:
    """lower_bound/landmark_table_rows over explicit landmark tables."""

    def __init__(self, tables):
        self._tables = tables

    def lower_bound(self, source, target):
        best = 0.0
        for table in self._tables:
            ds = table.get(source)
            dt = table.get(target)
            if ds is None or dt is None:
                continue
            bound = abs(dt - ds)
            if bound > best:
                best = bound
        return best

    def landmark_table_rows(self, nodes):
        return [
            [table.get(node, math.nan) for table in self._tables]
            for node in nodes
        ]


def _flows(point_count: int):
    return [
        _StubFlow((2 * i, 2 * i + 1)) for i in range(point_count // 2)
    ]


# Coordinates clustered near multiples of eps so many endpoint
# distances land exactly at / within ulps of the decision boundary —
# the adversarial case for the squared-distance guard band.
_EPS = 1000.0
_coord = st.one_of(
    st.floats(min_value=0.0, max_value=4000.0, allow_nan=False),
    st.sampled_from([0.0, _EPS, 2.0 * _EPS, _EPS + 1e-9, _EPS - 1e-9,
                     math.nextafter(_EPS, 0.0), math.nextafter(_EPS, math.inf)]),
)


@needs_numpy
class TestMaskParity:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(st.tuples(_coord, _coord), min_size=4, max_size=16))
    def test_elb_mask_numpy_equals_python(self, points):
        if len(points) % 2:
            points = points[:-1]
        network = _StubNetwork(points)
        flows = _flows(len(points))
        python_mask = elb_far_mask(network, flows, _EPS, "python")
        numpy_mask = elb_far_mask(network, flows, _EPS, "numpy")
        assert bytes(python_mask) == bytes(numpy_mask)
        # And both encode exactly the scalar decisions.
        n = len(flows)
        for i in range(n):
            for j in range(n):
                expected = i != j and (
                    euclidean_lower_bound(network, flows[i], flows[j]) > _EPS
                )
                assert bool(python_mask[i * n + j]) == expected

    @settings(max_examples=80, deadline=None)
    @given(
        st.integers(min_value=2, max_value=6),  # flows
        st.integers(min_value=1, max_value=4),  # landmarks
        st.data(),
    )
    def test_llb_mask_numpy_equals_python(self, flow_count, landmark_count, data):
        nodes = list(range(2 * flow_count))
        tables = []
        for _ in range(landmark_count):
            covered = data.draw(st.sets(st.sampled_from(nodes)))
            tables.append({
                node: data.draw(st.floats(
                    min_value=0.0, max_value=3000.0, allow_nan=False
                ))
                for node in covered
            })
        oracle = _StubOracle(tables)
        flows = _flows(len(nodes))
        python_mask = llb_far_mask(oracle, flows, _EPS, "python")
        numpy_mask = llb_far_mask(oracle, flows, _EPS, "numpy")
        assert bytes(python_mask) == bytes(numpy_mask)
        n = len(flows)
        for i in range(n):
            for j in range(n):
                expected = i != j and (
                    landmark_lower_bound(oracle, flows[i], flows[j]) > _EPS
                )
                assert bool(python_mask[i * n + j]) == expected


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestVectorBackendResolution:
    def test_auto_resolves(self):
        assert resolve_vector_backend("auto") in ("numpy", "python")

    def test_python_always_honored(self):
        assert resolve_vector_backend("python") == "python"

    def test_numpy_respects_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert get_numpy() is None
        assert resolve_vector_backend("auto") == "python"
        with pytest.raises(ConfigError):
            resolve_vector_backend("numpy")

    def test_unknown_setting_rejected(self):
        with pytest.raises(ConfigError):
            resolve_vector_backend("cuda")

    def test_config_validates_vector_backend(self):
        assert NEATConfig(vector_backend="python").vector_backend == "python"
        with pytest.raises(ConfigError):
            NEATConfig(vector_backend="simd")


# ----------------------------------------------------------------------
# Whole-pipeline parity: worker counts x sp backends x vector backends.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    network = generate_grid_network(GridConfig(rows=10, cols=10, seed=11))
    dataset = simulate_dataset(
        network,
        SimulationConfig(object_count=60, seed=13, name="zero-copy-parity"),
    )
    return network, dataset


def _force_small_thresholds(monkeypatch):
    monkeypatch.setattr(fragmentation_module, "MIN_TRAJECTORIES_PER_WORKER", 1)
    monkeypatch.setattr(sp_module, "MIN_PAIRS_PER_WORKER", 1)
    monkeypatch.setattr(sp_module, "MIN_GROUPS_PER_WORKER", 1)


def _run_key(result):
    return sorted(
        sorted((flow.endpoints, flow.route_length, tuple(sorted(flow.participants)))
               for flow in cluster.flows)
        for cluster in result.clusters
    )


class TestPipelineParity:
    def test_every_worker_count_matches_serial(self, workload, monkeypatch):
        _force_small_thresholds(monkeypatch)
        network, dataset = workload
        baseline = None
        for workers in (1, 2, 3, 4):
            neat = NEAT(network, NEATConfig(eps=1400.0, workers=workers))
            result = neat.run_opt(dataset)
            key = (_run_key(result), result.refinement_stats,
                   neat.engine.computations, neat.engine.cache_hits,
                   neat.engine.nodes_expanded)
            if baseline is None:
                baseline = key
            else:
                assert key == baseline, f"workers={workers} diverged"

    def test_backends_match_at_every_worker_count(self, workload, monkeypatch):
        _force_small_thresholds(monkeypatch)
        network, dataset = workload
        keys = {}
        for backend in ("csr", "dict"):
            for workers in (1, 3):
                neat = NEAT(
                    network,
                    NEATConfig(eps=1400.0, workers=workers, sp_backend=backend),
                )
                keys[(backend, workers)] = _run_key(neat.run_opt(dataset))
        assert len(set(map(str, keys.values()))) == 1

    def test_vector_backends_match(self, workload, monkeypatch):
        _force_small_thresholds(monkeypatch)
        network, dataset = workload
        backends = ["python"] + (["numpy"] if HAVE_NUMPY else [])
        outs = []
        for backend in backends:
            neat = NEAT(
                network,
                NEATConfig(
                    eps=1400.0, workers=2, use_llb=True, vector_backend=backend
                ),
            )
            result = neat.run_opt(dataset)
            outs.append((_run_key(result), result.refinement_stats))
        assert all(out == outs[0] for out in outs)
