"""Analysis utilities: comparison metrics, accuracy, SVG visualization."""

from .accuracy import (
    SegmentAccuracy,
    co_clustering_agreement,
    flow_purity,
    segment_accuracy,
    true_segment_usage,
)
from .charts import LineChart, Series
from .geojson import (
    clusters_geojson,
    flows_geojson,
    network_geojson,
    save_geojson,
    trajectories_geojson,
)
from .hotspot_detection import HotspotArea, detect_hotspots
from .metrics import (
    ComparisonRow,
    RouteLengthSummary,
    cluster_summary,
    compare_results,
    flow_continuity,
    flow_route_lengths,
    fragment_coverage,
    traclus_route_lengths,
    trajectory_coverage,
)
from .odmatrix import ODMatrix, format_od_matrix, od_matrix
from .visualize import PALETTE, SEQUENTIAL_BLUE, SvgScene, render_svg

__all__ = [
    "ComparisonRow",
    "HotspotArea",
    "LineChart",
    "ODMatrix",
    "PALETTE",
    "RouteLengthSummary",
    "SEQUENTIAL_BLUE",
    "SegmentAccuracy",
    "Series",
    "SvgScene",
    "cluster_summary",
    "clusters_geojson",
    "co_clustering_agreement",
    "compare_results",
    "detect_hotspots",
    "flow_continuity",
    "flow_purity",
    "flow_route_lengths",
    "flows_geojson",
    "format_od_matrix",
    "fragment_coverage",
    "network_geojson",
    "od_matrix",
    "render_svg",
    "save_geojson",
    "segment_accuracy",
    "traclus_route_lengths",
    "trajectories_geojson",
    "trajectory_coverage",
    "true_segment_usage",
]
