"""Property-based fuzz tests (hypothesis) for the distance-oracle tiers.

Two admissibility invariants and one end-to-end invariance, fuzzed over
randomly generated road networks rather than example-tested:

* both prune tiers are true lower bounds — the Euclidean straight-line
  distance and the landmark (ALT) triangle-inequality bound never exceed
  the exact network shortest-path distance for any node pair;
* the composed flow-level landmark bound never exceeds the modified
  Hausdorff flow distance (max/min are monotone, so admissibility
  survives the Equation 5 composition);
* no combination of oracle tiers (pairwise/tiered × ELB × LLB) changes
  the final clustering — pruning and batching are pure accelerations.
"""

from __future__ import annotations

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.core.refinement import flow_distance, landmark_lower_bound
from repro.core.serialize import result_to_dict
from repro.roadnet import INFINITY, LandmarkOracle, ShortestPathEngine
from repro.roadnet.shortest_path import dijkstra_distance

from conftest import trajectory_through
from test_csr import random_network

#: Relative tolerance for float round-off in bound comparisons.
TOL = 1e-9

seeds = st.integers(min_value=0, max_value=10_000)


class TestLowerBoundAdmissibility:
    @given(seed=seeds, pair_seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_euclidean_never_exceeds_network_distance(self, seed, pair_seed):
        network = random_network(seed, rows=5, cols=5)
        rng = random.Random(pair_seed)
        ids = network.node_ids()
        for _ in range(10):
            s, t = rng.choice(ids), rng.choice(ids)
            exact = dijkstra_distance(network, s, t)
            euclid = network.node_point(s).distance_to(network.node_point(t))
            if exact == INFINITY:
                continue  # disconnected: any finite bound is admissible
            assert euclid <= exact * (1.0 + TOL) + TOL

    @given(seed=seeds, pair_seed=seeds, count=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_landmark_never_exceeds_network_distance(
        self, seed, pair_seed, count
    ):
        network = random_network(seed, rows=5, cols=5)
        oracle = LandmarkOracle(network, landmark_count=count)
        rng = random.Random(pair_seed)
        ids = network.node_ids()
        for _ in range(10):
            s, t = rng.choice(ids), rng.choice(ids)
            exact = dijkstra_distance(network, s, t)
            bound = oracle.lower_bound(s, t)
            if exact == INFINITY:
                continue
            assert bound <= exact * (1.0 + TOL) + TOL

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_flow_level_bound_is_admissible(self, seed):
        """The Equation 5 composition preserves admissibility."""
        network = random_network(seed, rows=5, cols=5)
        engine = ShortestPathEngine(network)
        oracle = engine.landmark_bounds(count=4)
        rng = random.Random(seed + 1)
        ids = network.node_ids()

        class StubFlow:
            def __init__(self, endpoints):
                self.endpoints = endpoints

        for _ in range(6):
            flow_a = StubFlow((rng.choice(ids), rng.choice(ids)))
            flow_b = StubFlow((rng.choice(ids), rng.choice(ids)))
            exact = flow_distance(engine, flow_a, flow_b)
            bound = landmark_lower_bound(oracle, flow_a, flow_b)
            if exact == INFINITY:
                continue
            assert bound <= exact * (1.0 + TOL) + TOL


def _digest(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestTierInvariance:
    @given(
        seed=seeds,
        eps=st.floats(min_value=50.0, max_value=2000.0),
        trajectories=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=10, deadline=None)
    def test_no_tier_combination_changes_clusters(
        self, seed, eps, trajectories
    ):
        network = random_network(seed, rows=4, cols=4)
        rng = random.Random(seed + 17)
        sids = [segment.sid for segment in network.segments()]
        dataset = [
            trajectory_through(network, trid, [rng.choice(sids)])
            for trid in range(trajectories)
        ]
        digests = set()
        for sp_oracle in ("pairwise", "tiered"):
            for use_elb in (False, True):
                for use_llb in (False, True):
                    neat = NEAT(network, NEATConfig(
                        eps=eps, min_card=0, sp_oracle=sp_oracle,
                        use_elb=use_elb, use_llb=use_llb,
                    ))
                    digests.add(_digest(neat.run_opt(dataset)))
        assert len(digests) == 1
