"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but measurements backing its design
arguments:

* **SF weight presets** (Definition 10's discussion) — how the flow/
  density/speed weights change what the flows describe;
* **dense-core vs random seeding** (Section III-B1) — random seeds
  produce different flows per run and tend to grow weaker streams;
* **β-domination** (Section III-B2) — how the threshold changes flow
  boundaries;
* **TraClus grid filter** (our implementation note in
  ``repro.traclus.grouping``) — the candidate pre-filter changes cost,
  never results.
"""

from __future__ import annotations

import random
from dataclasses import replace

from conftest import TRACLUS_COUNTS

from repro.analysis.metrics import flow_route_lengths
from repro.core.base_cluster import form_base_clusters
from repro.core.config import (
    NEATConfig,
    PRESET_BALANCED,
    PRESET_DENSEST,
    PRESET_FASTEST,
    PRESET_MAX_FLOW,
)
from repro.core.flow_formation import form_flow_clusters
from repro.experiments.harness import format_table, timed
from repro.experiments.workloads import WorkloadSpec, build_dataset, build_network
from repro.traclus.grouping import TraClusParams, group_segments
from repro.traclus.partition import partition_all


def _workload(region: str = "ATL", object_count: int = 200):
    network = build_network(region)
    dataset = build_dataset(network, WorkloadSpec(region, object_count))
    return network, dataset


def bench_ablation_sf_weights(benchmark, emit):
    """Flow shape under the Definition 10 weight presets.

    Uses a many-hotspot workload: with traffic criss-crossing, junctions
    present real alternatives, so the weights actually discriminate
    (on a two-hotspot commute the best candidate is usually unique).
    """
    from repro.mobisim.simulator import SimulationConfig, simulate_dataset

    network = build_network("SJ")
    dataset = simulate_dataset(
        network,
        SimulationConfig(
            object_count=300, hotspot_count=6, destination_count=10,
            seed=31, name="mixed",
        ),
    )
    base = form_base_clusters(network, dataset.trajectories)

    presets = (
        ("balanced 1/3,1/3,1/3", PRESET_BALANCED),
        ("max-flow 1,0,0", PRESET_MAX_FLOW),
        ("densest 0,1,0", PRESET_DENSEST),
        ("fastest 0,0,1", PRESET_FASTEST),
    )
    rows = []
    speeds = {}
    for label, preset in presets:
        config = replace(preset, min_card=0)
        result = form_flow_clusters(network, base, config)
        lengths = flow_route_lengths(result.all_flows)
        # Judge the weights where they act: the 10 strongest flows (the
        # long tail of single-segment flows averages out to the network
        # mean under every preset).
        top = sorted(
            result.all_flows, key=lambda f: -f.trajectory_cardinality
        )[:10]
        top_speed = sum(
            network.segment(sid).speed_limit for flow in top for sid in flow.sids
        ) / max(1, sum(len(flow) for flow in top))
        speeds[label] = top_speed
        rows.append(
            (
                label,
                len(result.all_flows),
                f"{lengths.average_m:.0f}",
                f"{lengths.maximum_m:.0f}",
                f"{top_speed:.1f}",
            )
        )
    benchmark.pedantic(
        lambda: form_flow_clusters(network, base, replace(PRESET_BALANCED, min_card=0)),
        rounds=3,
        iterations=1,
    )
    emit(
        "ablation_sf_weights",
        "SF = wq*q + wk*k + wv*v (Definition 10): preset effects\n"
        + format_table(
            ("preset", "#flows", "avg route(m)", "max route(m)",
             "top-10 flow speed(m/s)"),
            rows,
        )
        + "\n(wv=1 drags flows onto faster roads; wk=1 onto the densest; "
        "the paper leaves the choice to the application.)",
    )
    # The fastest preset must ride faster roads than the densest preset.
    assert speeds["fastest 0,0,1"] >= speeds["densest 0,1,0"]


def bench_ablation_seeding(benchmark, emit):
    """Dense-core seeding vs random seeding (Section III-B1)."""
    network, dataset = _workload()
    base = form_base_clusters(network, dataset.trajectories)
    config = NEATConfig(min_card=0)

    deterministic_runs = {
        tuple(f.sids for f in form_flow_clusters(network, base, config).flows)
        for _ in range(3)
    }
    random_runs = {
        tuple(
            f.sids
            for f in form_flow_clusters(
                network, base, config,
                seed_strategy="random", seed_rng=random.Random(trial),
            ).flows
        )
        for trial in range(3)
    }
    dense_result = form_flow_clusters(network, base, config)
    random_result = form_flow_clusters(
        network, base, config, seed_strategy="random",
        seed_rng=random.Random(0),
    )
    dense_top = max(f.trajectory_cardinality for f in dense_result.flows)
    random_top = max(f.trajectory_cardinality for f in random_result.flows)

    benchmark.pedantic(
        lambda: form_flow_clusters(network, base, config), rounds=3, iterations=1
    )
    emit(
        "ablation_seeding",
        "Seeding (Section III-B1): dense-core-first vs random\n"
        f"  deterministic runs produce {len(deterministic_runs)} distinct "
        f"flow set(s) over 3 trials (paper requires exactly 1)\n"
        f"  random seeding produces {len(random_runs)} distinct flow set(s) "
        "over 3 trials\n"
        f"  strongest flow cardinality: dense-core {dense_top} vs "
        f"random-seed {random_top}",
    )
    assert len(deterministic_runs) == 1


def bench_ablation_beta(benchmark, emit):
    """β-domination threshold sweep (Section III-B2)."""
    import math

    network, dataset = _workload()
    base = form_base_clusters(network, dataset.trajectories)

    rows = []
    for beta in (1.5, 2.0, 5.0, 20.0, math.inf):
        config = NEATConfig(min_card=0, beta=beta)
        result = form_flow_clusters(network, base, config)
        lengths = flow_route_lengths(result.all_flows)
        rows.append(
            (
                "inf" if math.isinf(beta) else f"{beta:g}",
                len(result.all_flows),
                f"{lengths.average_m:.0f}",
                f"{lengths.maximum_m:.0f}",
            )
        )
    benchmark.pedantic(
        lambda: form_flow_clusters(network, base, NEATConfig(min_card=0, beta=2.0)),
        rounds=3,
        iterations=1,
    )
    emit(
        "ablation_beta",
        "β-domination sweep (Section III-B2)\n"
        + format_table(("beta", "#flows", "avg route(m)", "max route(m)"), rows)
        + "\n(Lower β defers more merges to dominant cross-streams, "
        "fragmenting flows; β=inf recovers pure maxFlow/SF selection.)",
    )


def bench_ablation_traclus_grid_filter(benchmark, emit):
    """The midpoint-grid candidate filter: same clusters, lower cost."""
    network, dataset = _workload("ATL", TRACLUS_COUNTS[0])
    segments = partition_all(list(dataset))

    with_grid, grid_seconds = timed(
        lambda: group_segments(
            segments, TraClusParams(eps=10.0, min_lns=5, use_grid_filter=True)
        )
    )
    without_grid, brute_seconds = timed(
        lambda: group_segments(
            segments, TraClusParams(eps=10.0, min_lns=5, use_grid_filter=False)
        )
    )

    def shape(clusters):
        return sorted(
            tuple(sorted((s.trid, s.start.x, s.start.y) for s in c.segments))
            for c in clusters
        )

    assert shape(with_grid) == shape(without_grid)
    benchmark.pedantic(
        lambda: group_segments(
            segments, TraClusParams(eps=10.0, min_lns=5, use_grid_filter=True)
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "ablation_traclus_grid",
        "TraClus grouping candidate pre-filter (implementation ablation)\n"
        f"  {len(segments)} segments: grid filter {grid_seconds:.2f}s vs "
        f"brute force {brute_seconds:.2f}s; identical clusters "
        f"({len(with_grid)}); the grid only prunes provably-far pairs.",
    )
