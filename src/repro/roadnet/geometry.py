"""Planar geometry primitives used throughout the library.

The paper models road-network locations with geometric ``(x, y)`` coordinates
(Section II-A).  All geometry in this reproduction is planar Cartesian with
distances in metres, which matches the projected road maps the paper uses.

The module provides a small, allocation-light toolkit: a :class:`Point`
value type, segment projection (used by map matching and by the simulator),
polyline measures and interpolation (used to place sampled locations along a
road segment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable planar point in metres."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


def euclidean(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between two coordinate pairs."""
    return math.hypot(ax - bx, ay - by)


def dot(ax: float, ay: float, bx: float, by: float) -> float:
    """2-D dot product."""
    return ax * bx + ay * by


def cross(ax: float, ay: float, bx: float, by: float) -> float:
    """2-D cross product magnitude (z component)."""
    return ax * by - ay * bx


def interpolate(a: Point, b: Point, t: float) -> Point:
    """The point at parameter ``t`` in [0, 1] along the segment ``a -> b``."""
    return Point(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)


def project_onto_segment(p: Point, a: Point, b: Point) -> tuple[Point, float, float]:
    """Project point ``p`` onto the segment ``a -> b``.

    Returns ``(closest_point, t, distance)`` where ``t`` is the clamped
    parameter in [0, 1] of the projection along the segment and ``distance``
    is the Euclidean distance from ``p`` to the closest point.
    """
    vx, vy = b.x - a.x, b.y - a.y
    seg_len_sq = vx * vx + vy * vy
    if seg_len_sq <= 0.0:
        return a, 0.0, p.distance_to(a)
    t = ((p.x - a.x) * vx + (p.y - a.y) * vy) / seg_len_sq
    t = min(1.0, max(0.0, t))
    closest = Point(a.x + vx * t, a.y + vy * t)
    return closest, t, p.distance_to(closest)


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Shortest Euclidean distance from ``p`` to the segment ``a -> b``."""
    return project_onto_segment(p, a, b)[2]


def polyline_length(points: Sequence[Point]) -> float:
    """Total length of a polyline given as a point sequence."""
    return sum(points[i].distance_to(points[i + 1]) for i in range(len(points) - 1))


def point_along_polyline(points: Sequence[Point], offset: float) -> Point:
    """The point at arc-length ``offset`` along a polyline.

    Offsets below zero clamp to the first point; offsets beyond the total
    length clamp to the last point.
    """
    if not points:
        raise ValueError("empty polyline")
    if offset <= 0.0:
        return points[0]
    remaining = offset
    for i in range(len(points) - 1):
        step = points[i].distance_to(points[i + 1])
        if remaining <= step and step > 0.0:
            return interpolate(points[i], points[i + 1], remaining / step)
        remaining -= step
    return points[-1]


def heading(a: Point, b: Point) -> float:
    """Heading of the vector ``a -> b`` in radians in ``(-pi, pi]``."""
    return math.atan2(b.y - a.y, b.x - a.x)


def angle_between(h1: float, h2: float) -> float:
    """Smallest absolute angle between two headings, in ``[0, pi]``."""
    diff = (h2 - h1) % (2.0 * math.pi)
    if diff > math.pi:
        diff = 2.0 * math.pi - diff
    return diff


def bounding_box(points: Iterable[Point]) -> tuple[float, float, float, float]:
    """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)``."""
    iterator = iter(points)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("bounding_box of empty point set") from None
    min_x = max_x = first.x
    min_y = max_y = first.y
    for p in iterator:
        min_x = min(min_x, p.x)
        max_x = max(max_x, p.x)
        min_y = min(min_y, p.y)
        max_y = max(max_y, p.y)
    return (min_x, min_y, max_x, max_y)
