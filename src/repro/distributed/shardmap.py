"""Region sharding over a consistent-hash ring.

The distributed tier partitions work *by map region*, not by arrival
order: the road network's bounding box is cut into grid cells and every
cell is assigned to a shard node through a consistent-hash ring.  A
trajectory is routed to the node that owns the cell its first sample
falls in, so spatially close trajectories land on the same node (the
locality the paper's data-node sketch assumes).

The ring is the classic construction — each node contributes
``virtual_nodes`` points hashed onto a 64-bit circle, a key is owned by
the first point clockwise from its own hash — with two properties the
robustness tier leans on:

* **determinism**: points are SHA-256 hashes of ``"node:{id}:{replica}"``
  tokens, so the same membership always produces the same ring, on every
  host, in every run (the chaos suite asserts byte-identical placements);
* **stable rebalance**: removing a node moves *only* the keys that node
  owned (to the next surviving point clockwise); every other key stays
  put.  :meth:`HashRing.remove_node` is therefore the whole "rebalance
  on node death" story, and the coordinator counts each one in
  ``ring.rebalances``.

Because NEAT's Phase 1 is a distributive aggregation (partials merge
exactly by sid — see :func:`~repro.distributed.nodes.merge_base_clusters`),
*any* trajectory partition yields byte-identical final clusters; region
sharding changes data movement, never results.  Segments whose fragments
arrive from more than one shard are the *boundary segments* of the
partition, surfaced by :func:`boundary_sids` and the
``ring.boundary_segments`` counter.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Sequence

from ..core.base_cluster import BaseCluster
from ..core.model import Trajectory
from ..errors import ConfigError
from ..roadnet.network import RoadNetwork

__all__ = [
    "HashRing",
    "RegionShardMap",
    "boundary_sids",
    "partition_slices",
]


def _hash64(token: str) -> int:
    """A stable 64-bit point on the ring (first 8 bytes of SHA-256)."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A deterministic consistent-hash ring with virtual nodes.

    Args:
        node_ids: Initial members.
        virtual_nodes: Points each member contributes to the circle;
            more points smooth the key distribution at the cost of a
            larger (still tiny) sorted table.
    """

    def __init__(
        self, node_ids: Iterable[int] = (), virtual_nodes: int = 64
    ) -> None:
        if virtual_nodes < 1:
            raise ConfigError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.virtual_nodes = virtual_nodes
        self._members: set[int] = set()
        # Sorted (point, node_id) pairs; rebuilt on membership change
        # (memberships are tiny and changes are rare — node death).
        self._points: list[tuple[int, int]] = []
        for node_id in node_ids:
            self.add_node(node_id)

    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> tuple[int, ...]:
        """Current members, ascending."""
        return tuple(sorted(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def add_node(self, node_id: int) -> bool:
        """Add a member (idempotent); True when membership changed."""
        if node_id in self._members:
            return False
        self._members.add(node_id)
        for replica in range(self.virtual_nodes):
            self._points.append(
                (_hash64(f"node:{node_id}:{replica}"), node_id)
            )
        self._points.sort()
        return True

    def remove_node(self, node_id: int) -> bool:
        """Remove a member (idempotent); True when membership changed.

        Only keys the removed node owned move — each to the next
        surviving point clockwise from its hash.  Everything else keeps
        its owner, which is what makes a mid-run rebalance deterministic.
        """
        if node_id not in self._members:
            return False
        self._members.discard(node_id)
        self._points = [p for p in self._points if p[1] != node_id]
        return True

    def node_for(self, key: str) -> int:
        """The member owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise ConfigError("hash ring has no members")
        index = bisect_right(self._points, (_hash64(key), -1))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def preference(self, key: str) -> list[int]:
        """All members in ring order starting at ``key``'s owner.

        The re-dispatch order for a shard keyed by ``key``: the owner
        first, then the nodes that would inherit the key were earlier
        entries removed — so a failover target is the same node a real
        rebalance would have picked.
        """
        if not self._points:
            return []
        start = bisect_right(self._points, (_hash64(key), -1))
        ordered: list[int] = []
        seen: set[int] = set()
        for offset in range(len(self._points)):
            node_id = self._points[(start + offset) % len(self._points)][1]
            if node_id not in seen:
                seen.add(node_id)
                ordered.append(node_id)
        return ordered


class RegionShardMap:
    """Maps trajectories to shard nodes by map region.

    The network's bounding box is divided into a ``grid`` × ``grid``
    lattice of cells; each cell is a ring key, each trajectory belongs
    to the cell of its first sample.

    Args:
        network: The road network whose bounds define the lattice.
        node_ids: Shard-node members seeding the ring.
        grid: Cells per axis (``grid**2`` regions).
        virtual_nodes: Ring smoothing factor (see :class:`HashRing`).
        route: Routing key scheme.  ``"region"`` (the default) routes a
            trajectory by its first sample's grid cell — maximal map
            locality, but datasets whose trips start from a few hotspots
            pile onto whichever nodes own the hot cells.  ``"trid"``
            routes by trajectory id through the same ring — near-uniform
            shard *load*, which is what the ingest-scaling benchmark
            needs: an unbalanced split caps the parallel speedup at the
            largest shard's share.  Either scheme keeps the ring's
            deterministic rebalance-on-death semantics, and results are
            byte-identical under any partition.
    """

    def __init__(
        self,
        network: RoadNetwork,
        node_ids: Iterable[int],
        grid: int = 8,
        virtual_nodes: int = 64,
        route: str = "region",
    ) -> None:
        if grid < 1:
            raise ConfigError(f"grid must be >= 1, got {grid}")
        if route not in ("region", "trid"):
            raise ConfigError(
                f"route must be 'region' or 'trid', got {route!r}"
            )
        self.grid = grid
        self.route = route
        self.ring = HashRing(node_ids, virtual_nodes=virtual_nodes)
        if not len(self.ring):
            raise ConfigError("a shard map needs at least one node")
        min_x, min_y, max_x, max_y = network.bounds()
        self._origin = (min_x, min_y)
        self._cell_w = max((max_x - min_x) / grid, 1e-9)
        self._cell_h = max((max_y - min_y) / grid, 1e-9)
        self.rebalances = 0

    # ------------------------------------------------------------------
    def cell_key(self, x: float, y: float) -> str:
        """The ring key of the grid cell containing ``(x, y)``.

        Points outside the network bounds clamp to the border cells, so
        every coordinate has a well-defined owner.
        """
        col = min(self.grid - 1, max(0, int((x - self._origin[0]) / self._cell_w)))
        row = min(self.grid - 1, max(0, int((y - self._origin[1]) / self._cell_h)))
        return f"cell:{row}:{col}"

    def trajectory_key(self, trajectory: Trajectory) -> str:
        """The ring key a trajectory is routed by.

        The first sample's grid cell under ``route="region"``, the
        trajectory id under ``route="trid"``.
        """
        if self.route == "trid":
            return f"trid:{trajectory.trid}"
        start = trajectory.locations[0]
        return self.cell_key(start.x, start.y)

    def node_for_trajectory(self, trajectory: Trajectory) -> int:
        """The shard node owning a trajectory's home cell."""
        return self.ring.node_for(self.trajectory_key(trajectory))

    def shard(
        self, trajectories: Sequence[Trajectory]
    ) -> dict[int, list[Trajectory]]:
        """Partition trajectories across current members, by region.

        Every current member gets an entry (possibly empty); within a
        shard the input order is preserved, so two identical runs build
        byte-identical shards.
        """
        shards: dict[int, list[Trajectory]] = {
            node_id: [] for node_id in self.ring.node_ids
        }
        for trajectory in trajectories:
            shards[self.node_for_trajectory(trajectory)].append(trajectory)
        return shards

    def remove_node(self, node_id: int) -> bool:
        """Deterministic rebalance on node death; True when it was a member."""
        removed = self.ring.remove_node(node_id)
        if removed:
            self.rebalances += 1
        return removed

    def redispatch_order(self, shard: Sequence[Trajectory]) -> list[int]:
        """Surviving members in failover order for ``shard``.

        Keys the order on the shard's first trajectory (shards preserve
        input order, so this is stable): the node a rebalance would hand
        the region to comes first.
        """
        if not shard:
            return list(self.ring.node_ids)
        return self.ring.preference(self.trajectory_key(shard[0]))


def boundary_sids(
    partials: Iterable[Sequence[BaseCluster]],
) -> set[int]:
    """Segments whose fragments arrived from more than one shard.

    These are the partition's *boundary segments* — trajectories from
    different regions meeting on the same road.  The merge handles them
    exactly (Phase 1 is distributive); this function only surfaces how
    many there were, for the ``ring.boundary_segments`` counter and the
    ``/statusz`` shard table.
    """
    seen: set[int] = set()
    boundary: set[int] = set()
    for partial in partials:
        partial_sids = {cluster.sid for cluster in partial}
        boundary.update(partial_sids & seen)
        seen.update(partial_sids)
    return boundary


def partition_slices(
    count: int, node_ids: Sequence[int]
) -> list[tuple[int, int, int]]:
    """Cut ``range(count)`` into contiguous near-even per-node slices.

    Returns ``(node_id, start, stop)`` triples in ``node_ids`` order;
    the first ``count % len(node_ids)`` nodes get one extra item.  The
    split is a pure function of ``(count, node_ids)`` — the shard-side
    Phase 3 fan-out relies on that determinism: two identical runs send
    identical pair slices to identical nodes, so every downstream
    counter matches byte-for-byte.  Nodes past ``count`` come back with
    empty slices (``start == stop``) rather than being dropped, keeping
    the triple list aligned with its input.
    """
    if not node_ids:
        raise ValueError("node_ids must be non-empty")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    base, extra = divmod(count, len(node_ids))
    slices: list[tuple[int, int, int]] = []
    start = 0
    for position, node_id in enumerate(node_ids):
        size = base + (1 if position < extra else 0)
        slices.append((node_id, start, start + size))
        start += size
    return slices
