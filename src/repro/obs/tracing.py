"""Span tracing: nested wall-clock timers collected into a trace tree.

A :class:`Tracer` hands out :class:`Span` context managers::

    tracer = Tracer()
    with tracer.span("neat.run"):
        with tracer.span("phase1.fragmentation"):
            ...

Spans opened while another span is active become its children, so one run
produces a tree mirroring the call structure.  The tree exports to plain
dicts (:meth:`Tracer.to_dict`) for JSON dumping, and :meth:`Tracer.find`
fetches a span by name for assertions and derived views (the pipeline's
``PhaseTimings`` is exactly that).

Every tracer carries an **epoch**: the ``perf_counter`` reading taken at
construction (and again on :meth:`Tracer.reset`), paired with the
wall-clock time at the same instant (:attr:`Tracer.epoch_unix`).  Spans
record raw ``perf_counter`` stamps, so ``span.start - tracer.epoch`` is
a monotonic offset into the trace — what timeline exporters
(:mod:`repro.obs.export`) need to lay spans out on a shared axis.
:meth:`Tracer.to_dict` includes those offsets (``start_offset_s`` /
``end_offset_s``) next to the compatibility field ``duration_s``.

:class:`NullTracer` (singleton :data:`NULL_TRACER`) implements the same
surface with a single reusable no-op context manager, so instrumented hot
paths cost one attribute lookup and an empty ``with`` block when tracing
is disabled.
"""

from __future__ import annotations

from time import perf_counter, time as wall_time
from typing import Any, Iterator


class Span:
    """One timed region: a name, start/end stamps and child spans."""

    __slots__ = ("name", "start", "end", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit (0 while open)."""
        return max(self.end - self.start, 0.0)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self, epoch: float | None = None) -> dict[str, Any]:
        """JSON-compatible subtree: name, duration, offsets and children.

        Args:
            epoch: The owning tracer's epoch (a ``perf_counter`` reading).
                When given, ``start_offset_s``/``end_offset_s`` — the
                span's position on the tracer's monotonic timeline — are
                included alongside ``duration_s``.
        """
        document: dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if epoch is not None:
            document["start_offset_s"] = max(self.start - epoch, 0.0)
            document["end_offset_s"] = max(self.end - epoch, 0.0)
        if self.children:
            document["children"] = [
                child.to_dict(epoch) for child in self.children
            ]
        return document

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration:.6f}s, {len(self.children)} children)"


class _SpanContext:
    """Context manager entering/exiting one span on its tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tracer = self._tracer
        parent = tracer._stack[-1] if tracer._stack else None
        (parent.children if parent is not None else tracer.roots).append(self._span)
        tracer._stack.append(self._span)
        self._span.start = perf_counter()
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._span.end = perf_counter()
        self._tracer._stack.pop()


class Tracer:
    """Collects spans into a forest of trace trees.

    Not thread-safe: one tracer per run/worker, by design (the pipeline
    creates a fresh one per :meth:`~repro.core.pipeline.NEAT.run`).

    Attributes:
        epoch: ``perf_counter`` reading when this tracer started (or was
            last reset); span offsets are measured from here.
        epoch_unix: Wall-clock seconds (``time.time``) captured at the
            same instant, anchoring the monotonic timeline to real time
            for exporters.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.epoch = perf_counter()
        self.epoch_unix = wall_time()

    def span(self, name: str) -> _SpanContext:
        """A context manager timing ``name`` nested under the open span."""
        return _SpanContext(self, Span(name))

    def find(self, name: str) -> Span | None:
        """First span named ``name`` across all recorded trees."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> list[dict[str, Any]]:
        """The recorded trees as JSON-compatible dicts (with offsets)."""
        return [root.to_dict(self.epoch) for root in self.roots]

    def reset(self) -> None:
        """Drop every recorded span (open spans must not be on the stack).

        The epoch is re-anchored, so the next trace starts at offset 0.
        """
        if self._stack:
            raise RuntimeError("cannot reset a tracer with open spans")
        self.roots.clear()
        self.epoch = perf_counter()
        self.epoch_unix = wall_time()


class _NullSpan(Span):
    """The span no-op contexts yield; always zero duration, no children."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("<null>")


class _NullSpanContext:
    __slots__ = ("_span",)

    def __init__(self) -> None:
        self._span = _NullSpan()

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        return None


class NullTracer(Tracer):
    """A tracer that records nothing and allocates nothing per span."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_context = _NullSpanContext()

    def span(self, name: str) -> _NullSpanContext:  # type: ignore[override]
        return self._null_context


#: Shared no-op tracer for disabled telemetry.
NULL_TRACER = NullTracer()
