"""Dataset passports: per-dataset/per-network sanity statistics.

A *passport* is the one-page identity card of a (network, dataset) pair:
trajectory counts, point densities, segment-length and degree
distributions, and the observed ranges of the three SF components of
Definition 9/10 — the per-segment trajectory flow (``q``), the
per-segment point density (``k``) and the speed limits (``v``).  Tuning
decisions (which ``eps`` ladder, which weight presets are worth sweeping)
read straight off these numbers, and a regenerated passport that drifts
from its committed twin flags a silent workload change before it can
masquerade as a perf shift.

Every statistic is a deterministic function of the workload spec, so the
JSON documents are byte-stable across runs and machines.
"""

from __future__ import annotations

import csv
import io
import json
import statistics
from pathlib import Path
from typing import Iterable, Sequence

from ..core.model import TrajectoryDataset
from ..experiments.workloads import WorkloadSpec, build_dataset, build_network
from ..roadnet.network import RoadNetwork

#: Document schema tag (bump on incompatible layout changes).
SCHEMA = "neat.passport/1"

#: Columns of the summary CSV, in order.
SUMMARY_COLUMNS = (
    "dataset",
    "region",
    "junctions",
    "segments",
    "total_length_km",
    "avg_degree",
    "max_degree",
    "trajectories",
    "total_points",
    "points_per_trajectory_mean",
    "visited_segments",
    "segment_coverage",
    "points_per_km",
    "flow_q_max",
    "density_k_max",
    "speed_v_max",
)


def _round(value: float, digits: int = 6) -> float:
    """Stable rounding so passports are byte-identical across platforms."""
    return round(float(value), digits)


def distribution(values: Sequence[float]) -> dict:
    """min/mean/median/p90/max summary of a numeric sample.

    ``p90`` uses the deterministic nearest-rank index ``int(0.9*(n-1))``
    over the sorted sample — no interpolation, no platform wobble.
    """
    if not values:
        return {"count": 0, "min": 0, "max": 0, "mean": 0, "median": 0, "p90": 0}
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "min": _round(ordered[0]),
        "max": _round(ordered[-1]),
        "mean": _round(statistics.fmean(ordered)),
        "median": _round(statistics.median(ordered)),
        "p90": _round(ordered[int(0.9 * (len(ordered) - 1))]),
    }


def network_passport(network: RoadNetwork) -> dict:
    """Table-I-and-beyond statistics of one road network."""
    segment_lengths = [segment.length for segment in network.segments()]
    speed_limits = [segment.speed_limit for segment in network.segments()]
    degrees = [network.degree(node_id) for node_id in network.node_ids()]
    histogram: dict[str, int] = {}
    for degree in sorted(degrees):
        histogram[str(degree)] = histogram.get(str(degree), 0) + 1
    return {
        "name": network.name,
        "junctions": network.junction_count,
        "segments": network.segment_count,
        "total_length_km": _round(network.total_length() / 1000.0),
        "segment_length_m": distribution(segment_lengths),
        "degree": {
            "mean": _round(statistics.fmean(degrees)) if degrees else 0,
            "max": max(degrees, default=0),
            "histogram": histogram,
        },
        "speed_limit_mps": distribution(speed_limits),
    }


def dataset_passport(network: RoadNetwork, dataset: TrajectoryDataset) -> dict:
    """Trajectory, density and SF-component statistics of one dataset."""
    points_per_trajectory = [len(trajectory) for trajectory in dataset]
    durations = [trajectory.duration for trajectory in dataset]
    intervals = [
        later.t - earlier.t
        for trajectory in dataset
        for earlier, later in zip(
            trajectory.locations, trajectory.locations[1:]
        )
    ]

    segment_points: dict[int, int] = {}
    segment_trajectories: dict[int, set[int]] = {}
    for trajectory in dataset:
        for location in trajectory:
            segment_points[location.sid] = segment_points.get(location.sid, 0) + 1
        for sid in trajectory.segment_ids():
            segment_trajectories.setdefault(sid, set()).add(trajectory.trid)

    total_points = dataset.total_points
    total_length_km = network.total_length() / 1000.0
    visited = sorted(segment_points)
    visited_speeds = [
        network.segment(sid).speed_limit for sid in visited
        if network.has_segment(sid)
    ]
    return {
        "name": dataset.name,
        "trajectories": len(dataset),
        "total_points": total_points,
        "points_per_trajectory": distribution(points_per_trajectory),
        "duration_s": distribution(durations),
        "sample_interval_s": distribution(intervals),
        "density": {
            "visited_segments": len(visited),
            "segment_coverage": _round(
                len(visited) / network.segment_count
            ) if network.segment_count else 0,
            "points_per_visited_segment": distribution(
                [segment_points[sid] for sid in visited]
            ),
            "points_per_km": _round(total_points / total_length_km)
            if total_length_km else 0,
        },
        # The observed ranges of the Definition 9 SF ingredients: the
        # per-segment trajectory flow (q numerators), the per-segment
        # point density (k numerators) and the speed limits (v).
        "sf_components": {
            "flow_q": distribution(
                [len(segment_trajectories[sid]) for sid in visited]
            ),
            "density_k": distribution(
                [segment_points[sid] for sid in visited]
            ),
            "speed_v": distribution(visited_speeds),
        },
    }


def build_passport(spec: WorkloadSpec, profile: str | None = None) -> dict:
    """The full passport document for one workload spec."""
    network = build_network(spec.region, spec.network_scale, spec.seed)
    dataset = build_dataset(network, spec)
    document = {
        "schema": SCHEMA,
        "profile": profile,
        "spec": {
            "region": spec.region,
            "object_count": spec.object_count,
            "network_scale": spec.resolved_scale,
            "sample_interval": spec.sample_interval,
            "seed": spec.seed,
        },
        "network": network_passport(network),
        "dataset": dataset_passport(network, dataset),
    }
    return document


def write_passport(document: dict, path: str | Path) -> Path:
    """Write one passport as stable pretty-printed JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def summary_row(document: dict) -> dict:
    """The one-line summary of a passport (a SUMMARY_COLUMNS record)."""
    network = document["network"]
    dataset = document["dataset"]
    return {
        "dataset": dataset["name"],
        "region": document["spec"]["region"],
        "junctions": network["junctions"],
        "segments": network["segments"],
        "total_length_km": network["total_length_km"],
        "avg_degree": network["degree"]["mean"],
        "max_degree": network["degree"]["max"],
        "trajectories": dataset["trajectories"],
        "total_points": dataset["total_points"],
        "points_per_trajectory_mean": dataset["points_per_trajectory"]["mean"],
        "visited_segments": dataset["density"]["visited_segments"],
        "segment_coverage": dataset["density"]["segment_coverage"],
        "points_per_km": dataset["density"]["points_per_km"],
        "flow_q_max": dataset["sf_components"]["flow_q"]["max"],
        "density_k_max": dataset["sf_components"]["density_k"]["max"],
        "speed_v_max": dataset["sf_components"]["speed_v"]["max"],
    }


def summary_csv(documents: Iterable[dict]) -> str:
    """Render the summary CSV (header + one row per passport)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=SUMMARY_COLUMNS, lineterminator="\n"
    )
    writer.writeheader()
    for document in documents:
        writer.writerow(summary_row(document))
    return buffer.getvalue()


def passports_artifact(documents: Sequence[dict], profile: str) -> dict:
    """The BENCH-style artifact the trend ledger ingests.

    Flattens each passport to its summary numbers so
    ``bench_history.py report`` gets trendable columns, and carries the
    totals at the top level for the workload key and quick gates.
    """
    return {
        "profile": profile,
        "datasets_count": len(documents),
        "total_trajectories": sum(
            document["dataset"]["trajectories"] for document in documents
        ),
        "total_points": sum(
            document["dataset"]["total_points"] for document in documents
        ),
        "datasets": {
            document["dataset"]["name"]: summary_row(document)
            for document in documents
        },
    }
