"""The road network graph.

Implements the reference model of Section II-A: a directed graph
``G = (V, E)`` of junction nodes and ``sid``-labelled road segments, with
the adjacency operators the NEAT algorithms rely on:

* ``L(e)`` — the set of segments adjacent to segment ``e``
  (:meth:`RoadNetwork.adjacent_segments`),
* ``L_n(e)`` — the subset of ``L(e)`` meeting ``e`` at junction ``n``
  (:meth:`RoadNetwork.adjacent_segments_at`),
* ``I(e_i, e_j)`` — the junction shared by two adjacent segments
  (:meth:`RoadNetwork.common_junction`).

Segment geometry is the straight chord between the two junctions; segment
``length`` may exceed the chord to model curvature (the simulator and all
distance computations use ``length``, while geometric positions interpolate
the chord).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..errors import (
    DuplicateSegmentError,
    RoadNetworkError,
    UnknownNodeError,
    UnknownSegmentError,
)
from .geometry import Point, bounding_box, interpolate
from .segment import DEFAULT_SPEED_LIMIT, DirectedEdge, Junction, RoadSegment


class RoadNetwork:
    """A mutable road-network graph.

    Build a network by adding junctions then segments (or use
    :class:`~repro.roadnet.builder.RoadNetworkBuilder` /
    :mod:`~repro.roadnet.generators` for convenience), then treat it as
    read-only while running simulations and clustering.

    Example:
        >>> net = RoadNetwork()
        >>> a = net.add_junction(Point(0.0, 0.0))
        >>> b = net.add_junction(Point(100.0, 0.0))
        >>> sid = net.add_segment(a, b)
        >>> net.segment(sid).length
        100.0
    """

    def __init__(self, name: str = "road-network") -> None:
        self.name = name
        self._junctions: dict[int, Junction] = {}
        self._segments: dict[int, RoadSegment] = {}
        # node id -> sorted-on-demand list of incident segment ids
        self._incidence: dict[int, list[int]] = {}
        self._next_node_id = 0
        self._next_sid = 0
        # Mutation counter; CSR snapshots are cached against it so a
        # stale snapshot is never served after add_junction/add_segment.
        self._version = 0
        self._csr_cache: dict[bool, tuple[int, object]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_junction(self, point: Point, node_id: int | None = None) -> int:
        """Add a junction at ``point`` and return its node id.

        Passing an explicit ``node_id`` is supported for deserialization;
        it must not collide with an existing junction.
        """
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self._junctions:
            raise RoadNetworkError(f"duplicate junction node id: {node_id}")
        self._junctions[node_id] = Junction(node_id, point)
        self._incidence[node_id] = []
        self._next_node_id = max(self._next_node_id, node_id + 1)
        self._version += 1
        return node_id

    def add_segment(
        self,
        node_u: int,
        node_v: int,
        length: float | None = None,
        speed_limit: float = DEFAULT_SPEED_LIMIT,
        bidirectional: bool = True,
        road_class: str = "local",
        sid: int | None = None,
    ) -> int:
        """Add a road segment between two existing junctions.

        When ``length`` is omitted it defaults to the straight-line distance
        between the junctions.  Returns the assigned segment id.
        """
        if node_u not in self._junctions:
            raise UnknownNodeError(node_u)
        if node_v not in self._junctions:
            raise UnknownNodeError(node_v)
        if sid is None:
            sid = self._next_sid
        if sid in self._segments:
            raise DuplicateSegmentError(sid)
        if length is None:
            length = self.node_point(node_u).distance_to(self.node_point(node_v))
            if length <= 0.0:
                raise RoadNetworkError(
                    f"junctions {node_u} and {node_v} are coincident; "
                    "pass an explicit length"
                )
        segment = RoadSegment(
            sid=sid,
            node_u=node_u,
            node_v=node_v,
            length=length,
            speed_limit=speed_limit,
            bidirectional=bidirectional,
            road_class=road_class,
        )
        self._segments[sid] = segment
        self._incidence[node_u].append(sid)
        self._incidence[node_v].append(sid)
        self._next_sid = max(self._next_sid, sid + 1)
        self._version += 1
        return sid

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def junction_count(self) -> int:
        """Number of junction nodes."""
        return len(self._junctions)

    @property
    def segment_count(self) -> int:
        """Number of road segments (each bidirectional road counts once)."""
        return len(self._segments)

    def junction(self, node_id: int) -> Junction:
        """The :class:`Junction` with the given id."""
        try:
            return self._junctions[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def node_point(self, node_id: int) -> Point:
        """Planar position of a junction."""
        return self.junction(node_id).point

    def has_node(self, node_id: int) -> bool:
        """Whether a junction with this id exists."""
        return node_id in self._junctions

    def has_segment(self, sid: int) -> bool:
        """Whether a segment with this id exists."""
        return sid in self._segments

    def segment(self, sid: int) -> RoadSegment:
        """The :class:`RoadSegment` with the given id."""
        try:
            return self._segments[sid]
        except KeyError:
            raise UnknownSegmentError(sid) from None

    def junctions(self) -> Iterator[Junction]:
        """Iterate over all junctions in ascending node-id order."""
        for node_id in sorted(self._junctions):
            yield self._junctions[node_id]

    def segments(self) -> Iterator[RoadSegment]:
        """Iterate over all segments in ascending sid order."""
        for sid in sorted(self._segments):
            yield self._segments[sid]

    def node_ids(self) -> list[int]:
        """Sorted list of junction node ids."""
        return sorted(self._junctions)

    def segment_ids(self) -> list[int]:
        """Sorted list of segment ids."""
        return sorted(self._segments)

    # ------------------------------------------------------------------
    # Adjacency operators from the paper
    # ------------------------------------------------------------------
    def incident_segments(self, node_id: int) -> list[int]:
        """Segment ids incident to a junction (the junction's degree set)."""
        if node_id not in self._incidence:
            raise UnknownNodeError(node_id)
        return list(self._incidence[node_id])

    def degree(self, node_id: int) -> int:
        """Junction degree: number of incident segments."""
        if node_id not in self._incidence:
            raise UnknownNodeError(node_id)
        return len(self._incidence[node_id])

    def adjacent_segments_at(self, sid: int, node_id: int) -> list[int]:
        """``L_n(e)``: segments adjacent to segment ``sid`` at junction ``node_id``.

        Returns an empty list when ``node_id`` is a dead end reached only by
        ``sid`` (paper: ``L_n(e) = φ``).
        """
        segment = self.segment(sid)
        if not segment.has_endpoint(node_id):
            raise RoadNetworkError(
                f"junction {node_id} is not an endpoint of segment {sid}"
            )
        return [other for other in self._incidence[node_id] if other != sid]

    def adjacent_segments(self, sid: int) -> list[int]:
        """``L(e)``: all segments sharing a junction with segment ``sid``."""
        segment = self.segment(sid)
        adjacent = self.adjacent_segments_at(sid, segment.node_u)
        seen = set(adjacent)
        for other in self.adjacent_segments_at(sid, segment.node_v):
            if other not in seen:
                adjacent.append(other)
                seen.add(other)
        return adjacent

    def common_junction(self, sid_a: int, sid_b: int) -> int | None:
        """``I(e_i, e_j)``: the junction shared by two segments, else ``None``.

        When two segments share both endpoints (parallel roads), the lower
        node id is returned for determinism.
        """
        seg_a = self.segment(sid_a)
        seg_b = self.segment(sid_b)
        shared = sorted(
            set(seg_a.endpoints) & set(seg_b.endpoints)
        )
        return shared[0] if shared else None

    def are_adjacent(self, sid_a: int, sid_b: int) -> bool:
        """Whether two distinct segments share a junction."""
        if sid_a == sid_b:
            return False
        return self.common_junction(sid_a, sid_b) is not None

    def is_route(self, sids: Iterable[int]) -> bool:
        """Whether a sequence of segment ids forms a route (network path).

        A route per the paper is ``e_0 e_1 ... e_k`` with each consecutive
        pair adjacent.  Additionally, consecutive triples must progress
        through distinct junctions (no immediate bounce through the same
        junction twice in a row via the same shared node).
        """
        sid_list = list(sids)
        if not sid_list:
            return False
        if len(sid_list) == 1:
            return self.has_segment(sid_list[0])
        previous_junction: int | None = None
        for first, second in zip(sid_list, sid_list[1:]):
            junction = self.common_junction(first, second)
            if junction is None:
                return False
            if previous_junction is not None and junction == previous_junction:
                # The route entered and left `first` through the same
                # junction, which is not a simple concatenation.
                return False
            previous_junction = junction
        return True

    # ------------------------------------------------------------------
    # Directed view (for routing)
    # ------------------------------------------------------------------
    def out_edges(self, node_id: int) -> list[DirectedEdge]:
        """Directed edges leaving a junction, respecting one-way segments."""
        if node_id not in self._incidence:
            raise UnknownNodeError(node_id)
        edges: list[DirectedEdge] = []
        for sid in self._incidence[node_id]:
            segment = self._segments[sid]
            if segment.node_u == node_id:
                edges.append(
                    DirectedEdge(
                        sid, node_id, segment.node_v, segment.length,
                        segment.speed_limit,
                    )
                )
            elif segment.bidirectional:
                edges.append(
                    DirectedEdge(
                        sid, node_id, segment.node_u, segment.length,
                        segment.speed_limit,
                    )
                )
        return edges

    def undirected_neighbors(self, node_id: int) -> list[tuple[int, int, float]]:
        """``(neighbor_node, sid, length)`` triples ignoring direction.

        Phase 3 of NEAT measures network proximity on the undirected graph
        (paper, Section III-C3), so refinement uses this view.
        """
        if node_id not in self._incidence:
            raise UnknownNodeError(node_id)
        neighbors: list[tuple[int, int, float]] = []
        for sid in self._incidence[node_id]:
            segment = self._segments[sid]
            neighbors.append(
                (segment.other_endpoint(node_id), sid, segment.length)
            )
        return neighbors

    # ------------------------------------------------------------------
    # Flat-array snapshot (the fast shortest-path backend)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; increments on every junction/segment add."""
        return self._version

    def csr(self, directed: bool = False):
        """The cached :class:`~repro.roadnet.csr.CSRGraph` snapshot.

        Built on first use per direction mode and memoized until the
        network is mutated, so repeated shortest-path queries share one
        frozen flat-array view.  The snapshot is read-only and picklable
        (worker processes receive it directly).
        """
        cached = self._csr_cache.get(directed)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        from .csr import build_csr

        graph = build_csr(self, directed=directed)
        self._csr_cache[directed] = (self._version, graph)
        return graph

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def segment_endpoints(self, sid: int) -> tuple[Point, Point]:
        """The ``(u, v)`` junction positions of a segment."""
        segment = self.segment(sid)
        return (self.node_point(segment.node_u), self.node_point(segment.node_v))

    def point_on_segment(self, sid: int, offset: float) -> Point:
        """Position at arc-length ``offset`` from the ``u`` end of a segment.

        Offsets are expressed against the segment's ``length`` attribute and
        interpolated linearly along the chord, clamped to ``[0, length]``.
        """
        segment = self.segment(sid)
        a, b = self.segment_endpoints(sid)
        if segment.length <= 0.0:
            return a
        t = min(1.0, max(0.0, offset / segment.length))
        return interpolate(a, b, t)

    def bounds(self) -> tuple[float, float, float, float]:
        """Bounding box ``(min_x, min_y, max_x, max_y)`` of all junctions."""
        return bounding_box(j.point for j in self._junctions.values())

    def total_length(self) -> float:
        """Sum of all segment lengths in metres."""
        return sum(s.length for s in self._segments.values())

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # CSR snapshots are derived data; drop them so pickling a network
        # (e.g. shipping it to a worker process) stays lean.
        state = self.__dict__.copy()
        state["_csr_cache"] = {}
        return state

    def __contains__(self, sid: int) -> bool:
        return sid in self._segments

    def __len__(self) -> int:
        return len(self._segments)

    def __repr__(self) -> str:
        return (
            f"RoadNetwork(name={self.name!r}, junctions={self.junction_count}, "
            f"segments={self.segment_count})"
        )

    # ------------------------------------------------------------------
    # Read-only mapping views (used by serialization and tests)
    # ------------------------------------------------------------------
    @property
    def junction_map(self) -> Mapping[int, Junction]:
        """Read-only view of the junction table."""
        return dict(self._junctions)

    @property
    def segment_map(self) -> Mapping[int, RoadSegment]:
        """Read-only view of the segment table."""
        return dict(self._segments)
