"""Persistent warm-start distance cache: roundtrip, staleness, restarts.

The cache is a pure accelerator keyed on the network's mutation version:
these tests pin the byte format, the invalidation rules (a stale cache
must never answer for a mutated network), and the headline restart
property — a recovered service replays its journal with **zero**
shortest-path computations when the network is unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro.core import NEATConfig
from repro.core.incremental import IncrementalNEAT
from repro.core.serialize import result_to_dict
from repro.distributed.service import NeatService
from repro.obs import Telemetry
from repro.obs.metrics import MetricsRegistry
from repro.persist import (
    DISTCACHE_FORMAT,
    DISTCACHE_VERSION,
    decode_distance_cache,
    encode_distance_cache,
    load_distance_cache,
    save_distance_cache,
)
from repro.resilience import FaultInjector, FaultPlan
from repro.roadnet import ShortestPathEngine
from repro.roadnet.geometry import Point

from conftest import trajectory_through
from test_csr import random_network, sample_pairs

CONFIG = NEATConfig(min_card=0, eps=500.0)


def warmed_engine(network, seed: int = 3, cutoff: float = 400.0):
    engine = ShortestPathEngine(network)
    for a, b in sample_pairs(network, seed, count=30):
        engine.distance(a, b, cutoff=cutoff)
    return engine


def make_batches(network, count, per_batch=3):
    batches, trid = [], 0
    for index in range(count):
        batch = []
        for _ in range(per_batch):
            batch.append(trajectory_through(
                network, trid, [trid % 2, (trid % 2) + 1], t0=float(index)
            ))
            trid += 1
        batches.append(batch)
    return batches


class TestEncoding:
    def test_roundtrip_and_determinism(self):
        network = random_network(3)
        engine = warmed_engine(network)
        payload = encode_distance_cache(engine)
        assert payload == encode_distance_cache(engine)  # byte-stable

        header, exact, bounded = decode_distance_cache(payload)
        want_exact, want_bounded = engine.export_cache()
        assert header["format"] == DISTCACHE_FORMAT
        assert header["version"] == DISTCACHE_VERSION
        assert header["network"] == network.name
        assert header["network_version"] == network.version
        assert header["directed"] is False
        assert exact == want_exact
        assert bounded == want_bounded

    def test_malformed_payloads_raise_corrupt(self):
        from repro.errors import CorruptSnapshot

        network = random_network(3)
        payload = encode_distance_cache(warmed_engine(network))
        for broken in (
            b"no header newline",
            b"{not json}\n",
            b'{"format": "something-else"}\n',
            json.dumps({
                "format": DISTCACHE_FORMAT, "version": 99,
                "exact": 0, "bounded": 0,
            }).encode() + b"\n",
            payload[:-8],  # truncated record section
        ):
            with pytest.raises(CorruptSnapshot):
                decode_distance_cache(broken)


class TestSaveLoad:
    def test_warm_engine_answers_without_searching(self, tmp_path):
        network = random_network(7)
        path = tmp_path / "distcache.snap"
        hot = warmed_engine(network, seed=7)
        queries = [
            (a, b) for a, b in sample_pairs(network, 7, count=30) if a != b
        ]
        expected = [hot.distance(a, b, cutoff=400.0) for a, b in queries]
        entries = save_distance_cache(path, hot, fsync=False)
        assert entries > 0

        cold = ShortestPathEngine(network)
        absorbed = load_distance_cache(path, cold)
        assert absorbed == entries
        got = [cold.distance(a, b, cutoff=400.0) for a, b in queries]
        assert got == expected
        assert cold.computations == 0  # the restart property, engine-level
        assert cold.warm_hits > 0
        assert cold.warm_hits == cold.cache_hits

    def test_metrics_account_saves_and_loads(self, tmp_path):
        network = random_network(7)
        path = tmp_path / "distcache.snap"
        registry = MetricsRegistry()
        entries = save_distance_cache(
            path, warmed_engine(network, seed=7), fsync=False, metrics=registry
        )
        load_distance_cache(path, ShortestPathEngine(network), metrics=registry)
        assert registry.value("sp.cache.saves") == 1.0
        assert registry.value("sp.cache.saved_entries") == float(entries)
        assert registry.value("sp.cache.loads") == 1.0
        assert registry.value("sp.cache.loaded_entries") == float(entries)

    def test_missing_file_is_a_counted_miss(self, tmp_path):
        registry = MetricsRegistry()
        engine = ShortestPathEngine(random_network(7))
        assert load_distance_cache(
            tmp_path / "absent.snap", engine, metrics=registry
        ) is None
        assert registry.value("sp.cache.misses") == 1.0

    def test_corrupt_file_is_ignored_never_fatal(self, tmp_path):
        path = tmp_path / "distcache.snap"
        path.write_bytes(b"garbage that is certainly not a sealed snapshot")
        registry = MetricsRegistry()
        engine = ShortestPathEngine(random_network(7))
        assert load_distance_cache(path, engine, metrics=registry) is None
        assert registry.value("sp.cache.invalidations") == 1.0
        assert engine.export_cache() == ({}, {})


class TestStaleness:
    """Satellite regression: a CSR mutation-version bump kills the cache."""

    def test_network_mutation_invalidates(self, tmp_path):
        network = random_network(11)
        path = tmp_path / "distcache.snap"
        save_distance_cache(path, warmed_engine(network, seed=11), fsync=False)

        network.add_junction(Point(9999.0, 9999.0))  # bumps network.version
        registry = MetricsRegistry()
        cold = ShortestPathEngine(network)
        assert load_distance_cache(path, cold, metrics=registry) is None
        assert registry.value("sp.cache.invalidations") == 1.0
        assert cold.export_cache() == ({}, {})  # engine stays cold

    def test_different_network_name_invalidates(self, tmp_path):
        path = tmp_path / "distcache.snap"
        save_distance_cache(
            path, warmed_engine(random_network(11), seed=11), fsync=False
        )
        other = random_network(12)  # same shape family, different name
        assert load_distance_cache(path, ShortestPathEngine(other)) is None

    def test_direction_mode_mismatch_invalidates(self, tmp_path):
        network = random_network(11)
        path = tmp_path / "distcache.snap"
        save_distance_cache(path, warmed_engine(network, seed=11), fsync=False)
        directed = ShortestPathEngine(network, directed=True, backend="dict")
        assert load_distance_cache(path, directed) is None


class TestIncrementalIntegration:
    def test_add_batch_spills_and_recover_warm_starts(self, grid3x3, tmp_path):
        batches = make_batches(grid3x3, 3)
        clusterer = IncrementalNEAT(grid3x3, CONFIG)
        clusterer.enable_persistence(tmp_path, fsync=False)
        for batch in batches:
            clusterer.add_batch(batch)
        assert clusterer.distcache_path is not None
        assert clusterer.distcache_path.exists()
        assert clusterer.engine.computations > 0
        reference = json.dumps(
            result_to_dict(clusterer.snapshot_result(), "warm"), sort_keys=True
        )

        recovered = IncrementalNEAT.recover(tmp_path, grid3x3, CONFIG)
        document = json.dumps(
            result_to_dict(recovered.snapshot_result(), "warm"), sort_keys=True
        )
        assert document == reference
        # The acceptance property: journal replay over an unchanged
        # network re-ran Phase 3 without one shortest-path search.
        assert recovered.engine.computations == 0
        assert recovered.engine.warm_hits > 0

    def test_save_failure_is_best_effort(self, grid3x3, tmp_path):
        faults = FaultInjector()
        telemetry = Telemetry.create()
        clusterer = IncrementalNEAT(grid3x3, CONFIG, telemetry=telemetry)
        clusterer.enable_persistence(tmp_path, fsync=False, faults=faults)
        faults.arm("distcache.pre_rename", FaultPlan(fail_nth=1))
        applied = clusterer.add_batch(make_batches(grid3x3, 1)[0])
        assert applied.batch_index == 0  # the batch itself committed
        assert telemetry.metrics.value("sp.cache.save_failures") == 1.0

    def test_unchanged_cache_is_not_rewritten(self, grid3x3, tmp_path):
        clusterer = IncrementalNEAT(grid3x3, CONFIG)
        clusterer.enable_persistence(tmp_path, fsync=False)
        clusterer.add_batch(make_batches(grid3x3, 1)[0])
        first = clusterer.save_distance_cache()
        assert first is None  # already saved by add_batch, sizes unchanged


class TestServiceRestart:
    """Acceptance: a restarted service performs zero distance searches."""

    def test_restart_with_unchanged_network_is_all_warm(self, grid3x3, tmp_path):
        batches = make_batches(grid3x3, 3)
        service = NeatService(grid3x3, CONFIG, state_dir=tmp_path)
        for batch in batches:
            service.submit(batch)
        before = service.stats()
        assert before.shortest_path_computations > 0
        document = service.get_clustering()
        del service

        reborn = NeatService(grid3x3, CONFIG, state_dir=tmp_path)
        after = reborn.stats()
        assert after.flow_count == before.flow_count
        assert after.cluster_count == before.cluster_count
        # Counter snapshot: recovery replayed every batch and refreshed
        # Phase 3 entirely from the persisted distance cache.
        assert after.shortest_path_computations == 0
        assert after.warm_distance_hits > 0
        restored = reborn.get_clustering()
        for key in ("flows", "clusters", "base_clusters"):
            assert restored[key] == document[key]

    def test_restart_after_mutation_recomputes(self, grid3x3, tmp_path):
        service = NeatService(grid3x3, CONFIG, state_dir=tmp_path)
        for batch in make_batches(grid3x3, 2):
            service.submit(batch)
        del service

        grid3x3.add_junction(Point(9999.0, 9999.0))
        reborn = NeatService(grid3x3, CONFIG, state_dir=tmp_path)
        stats = reborn.stats()
        # The stale cache was discarded, so replay searched from scratch
        # — slower, but never a wrong distance.
        assert stats.shortest_path_computations > 0
        assert stats.warm_distance_hits == 0
