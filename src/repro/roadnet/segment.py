"""Road segment and junction value types.

A road network (Section II-A of the paper) is a directed graph whose nodes
are junctions and whose edges are road segments labelled with a segment
identifier ``sid``.  A bidirectional road is represented by two directed
edges sharing the same ``sid``; this module stores one :class:`RoadSegment`
record per ``sid`` with a ``bidirectional`` flag, and the owning
:class:`~repro.roadnet.network.RoadNetwork` derives the directed edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from .geometry import Point

#: Default speed limit in metres/second when none is supplied (~50 km/h).
DEFAULT_SPEED_LIMIT = 13.9


@dataclass(frozen=True, slots=True)
class Junction:
    """A road junction (intersection or dead end).

    Attributes:
        node_id: Unique integer identifier within a network.
        point: Planar position of the junction in metres.
    """

    node_id: int
    point: Point


@dataclass(frozen=True, slots=True)
class RoadSegment:
    """A road segment connecting two junctions.

    Attributes:
        sid: Unique road-segment identifier.  Both travel directions of a
            bidirectional road share this identifier (paper, Section II-A).
        node_u: Identifier of the start junction (direction ``u -> v``).
        node_v: Identifier of the end junction.
        length: Length of the segment in metres.  May exceed the straight
            chord between the junctions to model curved streets.
        speed_limit: Speed limit in metres/second.
        bidirectional: Whether travel is permitted in both directions.
        road_class: Free-form class label (e.g. ``"highway"``, ``"local"``)
            used by generators and visualization; not interpreted by NEAT.
    """

    sid: int
    node_u: int
    node_v: int
    length: float
    speed_limit: float = DEFAULT_SPEED_LIMIT
    bidirectional: bool = True
    road_class: str = "local"

    def __post_init__(self) -> None:
        if self.length <= 0.0:
            raise ValueError(f"segment {self.sid}: non-positive length {self.length}")
        if self.speed_limit <= 0.0:
            raise ValueError(
                f"segment {self.sid}: non-positive speed limit {self.speed_limit}"
            )
        if self.node_u == self.node_v:
            raise ValueError(f"segment {self.sid}: self-loop at node {self.node_u}")

    @property
    def endpoints(self) -> tuple[int, int]:
        """The ``(node_u, node_v)`` junction pair."""
        return (self.node_u, self.node_v)

    def other_endpoint(self, node_id: int) -> int:
        """The endpoint opposite to ``node_id``.

        Raises:
            ValueError: if ``node_id`` is not an endpoint of this segment.
        """
        if node_id == self.node_u:
            return self.node_v
        if node_id == self.node_v:
            return self.node_u
        raise ValueError(f"node {node_id} is not an endpoint of segment {self.sid}")

    def has_endpoint(self, node_id: int) -> bool:
        """Whether ``node_id`` is one of this segment's junctions."""
        return node_id == self.node_u or node_id == self.node_v

    @property
    def travel_time(self) -> float:
        """Traversal time in seconds at the speed limit."""
        return self.length / self.speed_limit


@dataclass(frozen=True, slots=True)
class DirectedEdge:
    """A directed edge ``(sid, tail -> head)`` derived from a road segment.

    The paper writes an edge as ``e = (sid, n_i n_j)``; this type is its
    in-memory equivalent, produced by the network for routing.
    """

    sid: int
    tail: int
    head: int
    length: float
    speed_limit: float = DEFAULT_SPEED_LIMIT

    @property
    def travel_time(self) -> float:
        """Traversal time in seconds at the speed limit."""
        return self.length / self.speed_limit
