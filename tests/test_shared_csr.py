"""SharedCSR: zero-copy shared-memory CSR snapshots.

The contract under test: a published snapshot attaches into an
equal-in-every-column, equal-in-every-answer graph without copying; the
publisher owns (and reliably reclaims) the segment; attachers never
unlink; corrupted segments are rejected at attach time.
"""

from __future__ import annotations

import pickle

import pytest

from repro.roadnet import GridConfig, generate_grid_network
from repro.roadnet.csr import CSRGraph
from repro.roadnet.sharedcsr import LAYOUT_VERSION, MAGIC, SharedCSR


@pytest.fixture(scope="module")
def network():
    return generate_grid_network(GridConfig(rows=6, cols=6, seed=3))


def _columns_equal(a: CSRGraph, b: CSRGraph) -> None:
    assert list(a.node_ids) == list(b.node_ids)
    assert list(a.indptr) == list(b.indptr)
    assert list(a.adj) == list(b.adj)
    assert list(a.sids) == list(b.sids)
    assert list(a.weights) == list(b.weights)
    assert list(a.rindptr) == list(b.rindptr)
    assert list(a.radj) == list(b.radj)
    assert a.directed == b.directed
    assert a.node_count == b.node_count
    assert a.edge_count == b.edge_count


class TestPublishAttach:
    @pytest.mark.parametrize("directed", [False, True])
    def test_attached_columns_equal(self, network, directed):
        graph = network.csr(directed)
        published = SharedCSR.publish(graph)
        try:
            attached = SharedCSR.attach(published.name)
            try:
                _columns_equal(graph, attached.graph)
            finally:
                attached.close()
        finally:
            published.unlink()

    def test_attached_answers_identical(self, network):
        graph = network.csr(False)
        ids = list(graph.node_ids)
        pairs = [(ids[0], ids[-1]), (ids[3], ids[17]), (ids[5], ids[5])]
        published = SharedCSR.publish(graph)
        try:
            attached = SharedCSR.attach(published.name)
            try:
                for a, b in pairs:
                    assert attached.graph.bidirectional_distance_counted(
                        a, b
                    ) == graph.bidirectional_distance_counted(a, b)
                    assert attached.graph.distance_counted(
                        a, b
                    ) == graph.distance_counted(a, b)
                assert attached.graph.single_source(ids[0]) == (
                    graph.single_source(ids[0])
                )
            finally:
                attached.close()
        finally:
            published.unlink()

    def test_attached_graph_pickles_by_materializing(self, network):
        # Workers may hand an attached graph to pickle (e.g. a nested
        # fan-out); __getstate__ must materialize the shared views into
        # private arrays rather than trying to pickle memoryviews.
        graph = network.csr(False)
        published = SharedCSR.publish(graph)
        try:
            attached = SharedCSR.attach(published.name)
            try:
                clone = pickle.loads(pickle.dumps(attached.graph))
            finally:
                attached.close()
        finally:
            published.unlink()
        # The segment is gone; the clone must still answer from its own
        # private copies.
        _columns_equal(graph, clone)
        ids = list(graph.node_ids)
        assert clone.distance_counted(ids[0], ids[-1]) == (
            graph.distance_counted(ids[0], ids[-1])
        )

    def test_header_sanity(self, network):
        published = SharedCSR.publish(network.csr(False))
        try:
            attached = SharedCSR.attach(published.name)
            try:
                header = memoryview(attached._shm.buf)[:40].cast("q")
                try:
                    assert header[0] == MAGIC
                    assert header[1] == LAYOUT_VERSION
                    assert header[2] == 0  # undirected
                finally:
                    header.release()
            finally:
                attached.close()
        finally:
            published.unlink()


class TestLifecycle:
    def test_close_is_idempotent(self, network):
        published = SharedCSR.publish(network.csr(False))
        attached = SharedCSR.attach(published.name)
        attached.close()
        attached.close()
        published.unlink()

    def test_unlink_implies_close_and_is_idempotent(self, network):
        published = SharedCSR.publish(network.csr(False))
        name = published.name
        published.unlink()
        published.unlink()
        with pytest.raises(FileNotFoundError):
            SharedCSR.attach(name)

    def test_attacher_cannot_unlink(self, network):
        published = SharedCSR.publish(network.csr(False))
        try:
            attached = SharedCSR.attach(published.name)
            try:
                with pytest.raises(ValueError):
                    attached.unlink()
            finally:
                attached.close()
        finally:
            published.unlink()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=4096)
        try:
            with pytest.raises(ValueError):
                SharedCSR.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()


class TestFromArrays:
    def test_directed_requires_reverse_columns(self, network):
        graph = network.csr(True)
        with pytest.raises(ValueError):
            CSRGraph.from_arrays(
                True,
                graph.node_ids,
                graph.indptr,
                graph.adj,
                graph.sids,
                graph.weights,
            )

    def test_undirected_aliases_forward(self, network):
        graph = network.csr(False)
        rebuilt = CSRGraph.from_arrays(
            False,
            graph.node_ids,
            graph.indptr,
            graph.adj,
            graph.sids,
            graph.weights,
        )
        assert rebuilt.rindptr is rebuilt.indptr
        assert rebuilt.radj is rebuilt.adj
        _columns_equal(graph, rebuilt)
