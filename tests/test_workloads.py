"""Unit tests for experiment workload construction."""

from __future__ import annotations

import pytest

from repro.experiments.workloads import (
    BENCH_OBJECT_COUNTS,
    PAPER_OBJECT_COUNTS,
    REGIONS,
    WorkloadSpec,
    build_dataset,
    build_network,
    build_suite,
    build_workload,
)


class TestWorkloadSpec:
    def test_name_convention(self):
        assert WorkloadSpec("ATL", 500).name == "ATL500"

    def test_rejects_unknown_region(self):
        with pytest.raises(ValueError):
            WorkloadSpec("NYC", 100)

    def test_resolved_scale_defaults(self):
        assert WorkloadSpec("ATL", 10).resolved_scale == 0.1
        assert WorkloadSpec("MIA", 10).resolved_scale == 0.02
        assert WorkloadSpec("ATL", 10, network_scale=0.5).resolved_scale == 0.5

    def test_counts_progressions(self):
        # Bench counts keep the paper's 1:2:4:6:10 progression.
        ratio = [c / BENCH_OBJECT_COUNTS[0] for c in BENCH_OBJECT_COUNTS]
        paper_ratio = [c / PAPER_OBJECT_COUNTS[0] for c in PAPER_OBJECT_COUNTS]
        assert ratio == paper_ratio


class TestBuilders:
    def test_build_network_regions(self):
        for region in REGIONS:
            net = build_network(region, network_scale=0.02)
            assert net.segment_count > 0
            assert region in net.name

    def test_build_network_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_network("LA")

    def test_build_dataset_name_and_size(self):
        spec = WorkloadSpec("ATL", 20, network_scale=0.03)
        network = build_network("ATL", 0.03)
        dataset = build_dataset(network, spec)
        assert dataset.name == "ATL20"
        assert 0 < len(dataset) <= 20

    def test_build_workload_deterministic(self):
        spec = WorkloadSpec("SJ", 15, network_scale=0.03)
        _net1, ds1 = build_workload(spec)
        _net2, ds2 = build_workload(spec)
        assert ds1.total_points == ds2.total_points
        for a, b in zip(ds1, ds2):
            assert a == b

    def test_build_suite_shares_network(self):
        network, datasets = build_suite("ATL", (5, 10), network_scale=0.03)
        assert len(datasets) == 2
        assert all(ds.network_name == network.name for ds in datasets)
        # Larger object count means more points.
        assert datasets[1].total_points > datasets[0].total_points
