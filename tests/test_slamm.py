"""Unit tests for the SLAMM-style map matcher."""

from __future__ import annotations

import pytest

from repro.errors import MapMatchError
from repro.mapmatch.slamm import MatchConfig, SlammMatcher
from repro.mobisim.noise import degrade_dataset
from repro.mobisim.simulator import SimulationConfig, simulate_dataset
from repro.roadnet.builder import network_from_edges
from repro.roadnet.generators import GridConfig, generate_grid_network


class TestBasics:
    def test_needs_two_fixes(self, grid3x3):
        matcher = SlammMatcher(grid3x3)
        with pytest.raises(MapMatchError):
            matcher.match_fixes(0, [(50.0, 0.0, 0.0)])

    def test_unmatchable_fix_raises(self, grid3x3):
        matcher = SlammMatcher(grid3x3)
        with pytest.raises(MapMatchError):
            matcher.match_fixes(0, [(50.0, 0.0, 0.0), (1e7, 1e7, 1.0)])

    def test_clean_fixes_match_exactly(self, grid3x3):
        matcher = SlammMatcher(grid3x3)
        # Straight drive along the bottom row: (0,0) -> (200,0).
        fixes = [(20.0, 0.0, 0.0), (80.0, 0.0, 6.0), (120.0, 0.0, 12.0),
                 (180.0, 0.0, 18.0)]
        matched = matcher.match_fixes(7, fixes)
        assert matched.trid == 7
        sids = [l.sid for l in matched.locations]
        # First two on segment (0-1), last two on (1-2).
        assert sids[0] == sids[1]
        assert sids[2] == sids[3]
        assert grid3x3.are_adjacent(sids[0], sids[2])

    def test_output_snapped_to_segment(self, grid3x3):
        from repro.roadnet.geometry import point_segment_distance

        matcher = SlammMatcher(grid3x3)
        fixes = [(20.0, 3.0, 0.0), (80.0, -2.0, 6.0)]
        matched = matcher.match_fixes(0, fixes)
        for location in matched.locations:
            a, b = grid3x3.segment_endpoints(location.sid)
            assert point_segment_distance(location.point, a, b) < 1e-9

    def test_timestamps_preserved(self, grid3x3):
        matcher = SlammMatcher(grid3x3)
        fixes = [(20.0, 0.0, 5.0), (80.0, 0.0, 11.0)]
        matched = matcher.match_fixes(0, fixes)
        assert [l.t for l in matched.locations] == [5.0, 11.0]


class TestParallelRoadDisambiguation:
    def test_connectivity_beats_raw_distance(self):
        # Two parallel horizontal roads 30 m apart, connected at the left.
        # A trace drives the lower road but one noisy fix leans toward the
        # upper one; connectivity with its neighbours must keep it low.
        net = network_from_edges(
            [(0, 0), (300, 0), (0, 30), (300, 30)],
            [(0, 1), (2, 3), (0, 2)],
        )
        matcher = SlammMatcher(net, MatchConfig(sigma=10.0))
        fixes = [
            (50.0, 2.0, 0.0),
            (150.0, 16.0, 10.0),  # slightly closer to the upper road
            (250.0, 1.0, 20.0),
        ]
        matched = matcher.match_fixes(0, fixes)
        assert [l.sid for l in matched.locations] == [0, 0, 0]


class TestAccuracyOnSimulatedTraces:
    def test_accuracy_above_85_percent(self):
        net = generate_grid_network(GridConfig(rows=10, cols=10, seed=21))
        dataset = simulate_dataset(net, SimulationConfig(object_count=25, seed=21))
        raws = degrade_dataset(dataset, sigma=5.0, seed=21)
        matcher = SlammMatcher(net, MatchConfig(sigma=5.0))
        correct = total = 0
        for truth, raw in zip(dataset, raws):
            matched = matcher.match_trace(raw)
            for a, b in zip(truth.locations, matched.locations):
                total += 1
                correct += a.sid == b.sid
        assert total > 0
        assert correct / total > 0.85

    def test_lookahead_improves_over_greedy(self):
        net = generate_grid_network(GridConfig(rows=10, cols=10, seed=22))
        dataset = simulate_dataset(net, SimulationConfig(object_count=20, seed=22))
        raws = degrade_dataset(dataset, sigma=8.0, seed=22)

        def accuracy(config: MatchConfig) -> float:
            matcher = SlammMatcher(net, config)
            correct = total = 0
            for truth, raw in zip(dataset, raws):
                matched = matcher.match_trace(raw)
                for a, b in zip(truth.locations, matched.locations):
                    total += 1
                    correct += a.sid == b.sid
            return correct / total

        with_lookahead = accuracy(MatchConfig(sigma=8.0, lookahead=3))
        greedy = accuracy(MatchConfig(sigma=8.0, lookahead=0))
        assert with_lookahead >= greedy
