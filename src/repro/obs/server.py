"""The /metrics exposition server: the telemetry layer's HTTP face.

:class:`ObservabilityServer` wraps a stdlib ``ThreadingHTTPServer`` (no
dependencies, daemon threads) around one
:class:`~repro.obs.telemetry.Telemetry` bundle and serves the
operational plane:

========== =============================================================
Endpoint   Body
========== =============================================================
/metrics   Prometheus text exposition format (``to_prometheus()``)
/health    JSON health document (status, breaker, SLO verdicts) from the
           owner's ``health`` callable; HTTP 200 while ``ok``/
           ``degraded``, 503 otherwise — load balancers can act on the
           status code alone
/statusz   JSON operational status (stats + config) from the owner's
           ``statusz`` callable
/tracez    JSON: the most recent span trees (timeline offsets included)
/          tiny plain-text index of the endpoints above
========== =============================================================

The server binds ``127.0.0.1`` by default and ``port=0`` asks the OS for
an ephemeral port (read it back from :attr:`ObservabilityServer.port`) —
what tests and supervisors running many instances want.  Scrapes run on
short-lived daemon threads, reading the registry through its internal
lock while pipeline threads write; handler exceptions are converted to
HTTP 500 JSON bodies, never crashes.  Malformed or oversized requests
(garbage request lines, >64 KiB request lines or header lines) are
rejected with 400/414/431 JSON bodies — counted in
``server.bad_requests``, never a handler traceback.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from .logging import get_logger
from .telemetry import Telemetry

__all__ = ["ObservabilityServer", "PROMETHEUS_CONTENT_TYPE"]

_log = get_logger("obs.server")

#: Content type of the Prometheus text exposition format, v0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_JSON_CONTENT_TYPE = "application/json; charset=utf-8"


class _ObsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Bound by ObservabilityServer before serving starts.
    obs: "ObservabilityServer"

    def handle_error(self, request: Any, client_address: Any) -> None:
        # The stdlib default prints a traceback to stderr for any
        # exception a handler thread leaks (e.g. a peer slamming the
        # connection mid-response).  A hostile or broken client must
        # never look like a server crash: log one structured line.
        error = sys.exc_info()[1]
        _log.warning(
            "connection handler error",
            peer=str(client_address), error=repr(error),
        )


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _log.debug("request", peer=self.address_string(),
                   line=format % args if args else format)

    def send_error(
        self, code: int, message: str | None = None,
        explain: str | None = None,
    ) -> None:
        """Malformed-request rejection: counted, compact, traceback-free.

        The stdlib parse path routes every protocol defect here — bad
        request lines (400), oversized request lines (414), oversized or
        too-many headers (431).  Each one bumps ``server.bad_requests``
        and gets a small JSON body instead of the stdlib HTML error
        page; the connection is closed (a peer that cannot frame a
        request cannot be trusted to keep-alive).
        """
        obs = getattr(self.server, "obs", None)
        if obs is not None and code >= 400:
            obs.telemetry.metrics.inc(
                "server.bad_requests",
                description="Malformed or oversized HTTP requests rejected",
            )
        _log.warning(
            "bad request rejected",
            peer=self.address_string(), code=code, message=message,
        )
        self.close_connection = True
        # A garbage request line parses as HTTP/0.9, for which the stdlib
        # suppresses the status line entirely — force a real one so the
        # peer always sees "HTTP/1.1 <code>".
        if getattr(self, "request_version", "HTTP/0.9") == "HTTP/0.9":
            self.request_version = self.protocol_version
        try:
            body = json.dumps(
                {"error": message or self.responses.get(code, ("", ""))[0],
                 "code": code},
                sort_keys=True,
            ).encode("utf-8") + b"\n"
            self.send_response(code, message)
            self.send_header("Content-Type", _JSON_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            if getattr(self, "command", None) != "HEAD" and code >= 200:
                self.wfile.write(body)
        except OSError:  # peer already gone; nothing to report to it
            pass

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, document: Any) -> None:
        body = json.dumps(document, sort_keys=True, indent=2).encode("utf-8")
        self._send(status, _JSON_CONTENT_TYPE, body + b"\n")

    # -- routing --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        obs = self.server.obs  # type: ignore[attr-defined]
        try:
            if path == "/metrics":
                body = obs.telemetry.metrics.to_prometheus().encode("utf-8")
                self._send(200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/health":
                document = obs.health_document()
                status = str(document.get("status", "ok"))
                code = 200 if status in ("ok", "degraded") else 503
                self._send_json(code, document)
            elif path == "/statusz":
                self._send_json(200, obs.statusz_document())
            elif path == "/tracez":
                self._send_json(200, obs.tracez_document())
            elif path == "/":
                body = (
                    "repro observability plane\n"
                    "  /metrics  Prometheus text exposition\n"
                    "  /health   health + degraded/SLO state (JSON)\n"
                    "  /statusz  service stats + config (JSON)\n"
                    "  /tracez   recent span trees (JSON)\n"
                ).encode("utf-8")
                self._send(200, "text/plain; charset=utf-8", body)
            else:
                self._send_json(404, {"error": "not found", "path": path})
        except Exception as error:  # pragma: no cover - defensive
            _log.error("handler failed", path=path, error=repr(error))
            try:
                self._send_json(500, {"error": repr(error)})
            except Exception:
                pass


class ObservabilityServer:
    """Serves one telemetry bundle (and optional owner views) over HTTP.

    Args:
        telemetry: The bundle whose registry/tracer back ``/metrics`` and
            the default ``/tracez``.
        health: Zero-argument callable returning the ``/health`` JSON
            document (``{"status": "ok" | "degraded" | ...}``); default
            reports ``ok`` with the instrument count.
        statusz: Zero-argument callable returning the ``/statusz`` JSON
            document; default is the instrument snapshot.
        host: Bind address (loopback by default — expose deliberately).
        port: TCP port; 0 picks an ephemeral one.
        max_tracez_roots: Most recent span trees served by ``/tracez``.

    Use :meth:`start`/:meth:`stop` or a ``with`` block::

        with ObservabilityServer(telemetry, port=0) as obs:
            scrape(f"http://127.0.0.1:{obs.port}/metrics")
    """

    def __init__(
        self,
        telemetry: Telemetry,
        health: Callable[[], dict[str, Any]] | None = None,
        statusz: Callable[[], dict[str, Any]] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_tracez_roots: int = 50,
    ) -> None:
        if max_tracez_roots < 1:
            raise ValueError(
                f"max_tracez_roots must be >= 1, got {max_tracez_roots}"
            )
        self.telemetry = telemetry
        self._health = health
        self._statusz = statusz
        self.max_tracez_roots = max_tracez_roots
        self._server = _ObsHTTPServer((host, port), _Handler)
        self._server.obs = self
        self._thread: threading.Thread | None = None

    # -- address --------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even when constructed with 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the plane (no trailing slash)."""
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the serving thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ObservabilityServer":
        """Serve on a daemon thread (idempotent while running)."""
        if self.running:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-obs-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        _log.info("observability plane listening", url=self.url)
        return self

    def stop(self) -> None:
        """Shut down and join the serving thread (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._server.shutdown()
        thread.join(timeout=5.0)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- documents ------------------------------------------------------
    def health_document(self) -> dict[str, Any]:
        """The ``/health`` body (owner-supplied, or a minimal default)."""
        if self._health is not None:
            return self._health()
        return {
            "status": "ok",
            "instruments": len(self.telemetry.metrics),
        }

    def statusz_document(self) -> dict[str, Any]:
        """The ``/statusz`` body (owner-supplied, or the metric dict)."""
        if self._statusz is not None:
            return self._statusz()
        return {"metrics": self.telemetry.metrics.as_dict()}

    def tracez_document(self) -> dict[str, Any]:
        """The ``/tracez`` body: the most recent span trees.

        Reads the live tracer; roots being appended concurrently are
        tolerated (the list is copied before export).
        """
        tracer = self.telemetry.tracer
        roots = list(tracer.roots)[-self.max_tracez_roots :]
        return {
            "epoch_unix": getattr(tracer, "epoch_unix", 0.0),
            "span_count": sum(1 for root in roots for _ in root.walk()),
            "spans": [root.to_dict(tracer.epoch) for root in roots],
        }
