"""Accuracy experiment: quantifying the paper's "highly accurate" claim.

The paper argues NEAT's accuracy visually (Figures 3-4).  Our simulator
knows each trajectory's true route, so this bench measures it: segment
recall/precision/F1 of the kept flows against truly-busy segments, flow
purity, and pairwise co-clustering agreement — for NEAT and, as the
contrast, for a base-NEAT density thresholding (the TraClus-equivalent
output per Section IV-C).
"""

from __future__ import annotations

from conftest import NEAT_COUNTS

from repro.analysis.accuracy import (
    co_clustering_agreement,
    flow_purity,
    segment_accuracy,
)
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.experiments.figures import DEFAULT_EPS
from repro.experiments.harness import format_table
from repro.experiments.workloads import build_suite


def bench_accuracy_vs_ground_truth(benchmark, emit):
    """Accuracy of flow-NEAT across ATL dataset sizes."""
    network, datasets = build_suite("ATL", NEAT_COUNTS)
    neat = NEAT(network, NEATConfig(eps=DEFAULT_EPS["ATL"]))

    rows = []
    for dataset in datasets:
        result = neat.run_flow(dataset)
        trajectories = list(dataset)
        accuracy = segment_accuracy(result, trajectories)
        purity = flow_purity(result)
        agreement = co_clustering_agreement(result, trajectories)
        rows.append(
            (
                dataset.name,
                f"{accuracy.recall:.2f}",
                f"{accuracy.precision:.2f}",
                f"{accuracy.f1:.2f}",
                f"{purity:.2f}",
                f"{agreement:.2f}",
            )
        )

    result = benchmark.pedantic(
        lambda: neat.run_flow(datasets[-1]), rounds=3, iterations=1
    )
    assert result.flows

    emit(
        "accuracy",
        "Accuracy vs simulator ground truth (flow-NEAT, ATL sizes)\n"
        + format_table(
            ("dataset", "seg recall", "seg precision", "F1",
             "flow purity", "co-cluster agreement"),
            rows,
        )
        + "\n(busy threshold = the run's resolved minCard; the paper "
        "could only assess this visually — Figure 3.)",
    )
    # "Highly accurate": strong F1 on every size.
    for row in rows:
        assert float(row[3]) > 0.6, f"F1 regression on {row[0]}"
