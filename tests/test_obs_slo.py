"""Tests for repro.obs.slo: windowed latency-SLO evaluation."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.slo import (
    BREACH_COUNTER,
    BREACH_GAUGE,
    RECOVERY_COUNTER,
    SLORule,
    SLOWatchdog,
)

BUCKETS = (0.001, 0.01, 0.1, 1.0)


def make_rule(threshold_s: float = 0.05, **kwargs) -> SLORule:
    return SLORule(
        "ingest", Histogram("lat", buckets=BUCKETS), threshold_s, **kwargs
    )


class TestSLORule:
    def test_validation(self):
        histogram = Histogram("lat", buckets=BUCKETS)
        with pytest.raises(ValueError):
            SLORule("r", histogram, threshold_s=0.0)
        with pytest.raises(ValueError):
            SLORule("r", histogram, threshold_s=1.0, quantile=0.0)
        with pytest.raises(ValueError):
            SLORule("r", histogram, threshold_s=1.0, quantile=1.5)
        with pytest.raises(ValueError):
            SLORule("r", histogram, threshold_s=1.0, min_samples=0)

    def test_empty_window_returns_none(self):
        rule = make_rule()
        assert rule.window_quantile() is None

    def test_window_is_a_delta_not_cumulative(self):
        rule = make_rule()
        rule.histogram.observe(0.5)  # slow
        count, value = rule.window_quantile()
        assert count == 1
        assert value > 0.1
        # Second window: only fast observations — the slow one is gone.
        for _ in range(10):
            rule.histogram.observe(0.0005)
        count, value = rule.window_quantile()
        assert count == 10
        assert value <= 0.001

    def test_min_samples_accumulates_across_calls(self):
        rule = make_rule(min_samples=3)
        rule.histogram.observe(0.5)
        assert rule.window_quantile() is None
        rule.histogram.observe(0.5)
        assert rule.window_quantile() is None
        rule.histogram.observe(0.5)
        count, value = rule.window_quantile()
        # The pending observations were kept, not dropped.
        assert count == 3
        assert value > 0.1


class TestSLOWatchdog:
    def test_instruments_created_up_front(self):
        metrics = MetricsRegistry()
        watchdog = SLOWatchdog(metrics)
        assert BREACH_GAUGE in metrics
        assert BREACH_COUNTER in metrics
        assert RECOVERY_COUNTER in metrics
        watchdog.add_rule(make_rule())
        assert f"{BREACH_GAUGE}.ingest" in metrics
        assert metrics.value(f"{BREACH_GAUGE}.ingest") == 0.0

    def test_no_rules_evaluates_empty(self):
        watchdog = SLOWatchdog(MetricsRegistry())
        assert watchdog.evaluate() == {}
        assert not watchdog.breached

    def test_breach_and_recovery_cycle(self):
        metrics = MetricsRegistry()
        events: list[str] = []
        watchdog = SLOWatchdog(
            metrics,
            on_breach=lambda rule: events.append(f"breach:{rule.name}"),
            on_clear=lambda rule: events.append(f"clear:{rule.name}"),
        )
        rule = watchdog.add_rule(make_rule(threshold_s=0.05))

        rule.histogram.observe(0.5)
        assert watchdog.evaluate() == {"ingest": True}
        assert watchdog.breached
        assert metrics.value(BREACH_GAUGE) == 1.0
        assert metrics.value(f"{BREACH_GAUGE}.ingest") == 1.0
        assert metrics.value(BREACH_COUNTER) == 1
        assert events == ["breach:ingest"]

        # Fast window clears the breach.
        rule.histogram.observe(0.0005)
        assert watchdog.evaluate() == {"ingest": False}
        assert not watchdog.breached
        assert metrics.value(BREACH_GAUGE) == 0.0
        assert metrics.value(RECOVERY_COUNTER) == 1
        assert events == ["breach:ingest", "clear:ingest"]

    def test_transitions_fire_once(self):
        metrics = MetricsRegistry()
        watchdog = SLOWatchdog(metrics)
        rule = watchdog.add_rule(make_rule(threshold_s=0.05))
        for _ in range(3):
            rule.histogram.observe(0.5)
            watchdog.evaluate()
        assert metrics.value(BREACH_COUNTER) == 1
        assert metrics.value(f"{BREACH_GAUGE}.ingest") == 1.0

    def test_empty_window_keeps_previous_verdict(self):
        metrics = MetricsRegistry()
        watchdog = SLOWatchdog(metrics)
        rule = watchdog.add_rule(make_rule(threshold_s=0.05))
        rule.histogram.observe(0.5)
        watchdog.evaluate()
        # No new observations: still breached.
        assert watchdog.evaluate() == {"ingest": True}
        assert metrics.value(BREACH_COUNTER) == 1

    def test_independent_rules(self):
        metrics = MetricsRegistry()
        watchdog = SLOWatchdog(metrics)
        slow = watchdog.add_rule(make_rule(threshold_s=0.05))
        fast_histogram = Histogram("q", buckets=BUCKETS)
        watchdog.add_rule(SLORule("query", fast_histogram, 0.05))
        slow.histogram.observe(0.5)
        fast_histogram.observe(0.0005)
        verdicts = watchdog.evaluate()
        assert verdicts == {"ingest": True, "query": False}
        assert metrics.value(f"{BREACH_GAUGE}.ingest") == 1.0
        assert metrics.value(f"{BREACH_GAUGE}.query") == 0.0
        assert metrics.value(BREACH_GAUGE) == 1.0

    def test_snapshot(self):
        watchdog = SLOWatchdog(MetricsRegistry())
        rule = watchdog.add_rule(make_rule(threshold_s=0.25, quantile=0.9))
        rule.histogram.observe(0.5)
        watchdog.evaluate()
        snapshot = watchdog.snapshot()
        assert snapshot == {
            "ingest": {
                "threshold_s": 0.25,
                "quantile": 0.9,
                "breached": True,
                "observed": 1,
            }
        }

    def test_determinism_across_identical_runs(self):
        def run() -> tuple:
            metrics = MetricsRegistry()
            watchdog = SLOWatchdog(metrics)
            rule = watchdog.add_rule(make_rule(threshold_s=0.05))
            trail = []
            for value in (0.0005, 0.5, 0.5, 0.0005, 0.0005, 0.7):
                rule.histogram.observe(value)
                trail.append(tuple(sorted(watchdog.evaluate().items())))
            return (
                tuple(trail),
                metrics.value(BREACH_COUNTER),
                metrics.value(RECOVERY_COUNTER),
            )

        assert run() == run()
