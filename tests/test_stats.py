"""Unit tests for network statistics (Table I schema)."""

from __future__ import annotations

import pytest

from repro.roadnet.builder import star_network
from repro.roadnet.network import RoadNetwork
from repro.roadnet.stats import format_table1, network_stats


class TestNetworkStats:
    def test_line_stats(self, line3):
        stats = network_stats(line3)
        assert stats.segment_count == 3
        assert stats.junction_count == 4
        assert stats.total_length_km == pytest.approx(0.3)
        assert stats.avg_segment_length_m == pytest.approx(100.0)
        # Degrees: 1, 2, 2, 1.
        assert stats.avg_degree == pytest.approx(1.5)
        assert stats.max_degree == 2

    def test_star_stats(self):
        stats = network_stats(star_network(6, branch_length=50.0))
        assert stats.max_degree == 6
        assert stats.avg_degree == pytest.approx(12 / 7)

    def test_empty_network(self):
        stats = network_stats(RoadNetwork(name="empty"))
        assert stats.segment_count == 0
        assert stats.avg_segment_length_m == 0.0
        assert stats.max_degree == 0

    def test_as_row_formatting(self, line3):
        row = network_stats(line3).as_row()
        assert row[0] == "line"
        assert row[1] == "0.3km"
        assert "avg: 1.5" in row[5]


class TestFormatTable1:
    def test_contains_header_and_rows(self, line3, grid3x3):
        text = format_table1([network_stats(line3), network_stats(grid3x3)])
        assert "Regions" in text
        assert "line" in text
        assert "grid3x3" in text
        # Fixed-width: all lines equally aligned columns (same separator count).
        lines = text.splitlines()
        assert len(lines) == 3
