"""Cross-module integration tests: the full paper pipeline end to end.

These tests wire together every substrate the way the paper's evaluation
does: generator -> simulator -> (noise -> map matching ->) NEAT -> metrics
and compare against the TraClus baseline.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import compare_results
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.mapmatch.slamm import MatchConfig, SlammMatcher
from repro.mobisim.noise import degrade_dataset
from repro.mobisim.simulator import SimulationConfig, simulate_dataset
from repro.roadnet.generators import atlanta_like
from repro.traclus.grouping import TraClusParams
from repro.traclus.traclus import TraClus


@pytest.fixture(scope="module")
def workload():
    network = atlanta_like(scale=0.05, seed=17)
    dataset = simulate_dataset(
        network, SimulationConfig(object_count=80, seed=17, name="ATL80")
    )
    return network, dataset


class TestFullNEATPipeline:
    def test_opt_neat_end_to_end(self, workload):
        network, dataset = workload
        result = NEAT(network, NEATConfig(eps=600.0)).run_opt(dataset)
        assert result.base_clusters
        assert result.flows
        assert result.clusters
        # Fewer clusters than flows than base clusters: each phase compacts.
        assert len(result.clusters) <= len(result.flows) <= len(
            result.base_clusters
        )

    def test_flows_describe_major_traffic(self, workload):
        """Kept flows must cover a dominant share of all t-fragments."""
        from repro.analysis.metrics import fragment_coverage

        network, dataset = workload
        result = NEAT(network, NEATConfig(eps=600.0)).run_flow(dataset)
        assert fragment_coverage(result) > 0.5

    def test_hotspot_destinations_connected_by_flows(self, workload):
        """The Figure 3 narrative: long flows reach the destination area."""
        network, dataset = workload
        result = NEAT(network, NEATConfig(eps=600.0)).run_flow(dataset)
        destinations = set(dataset.metadata["destinations"])
        flow_nodes = set()
        for flow in result.flows:
            flow_nodes.update(flow.route_nodes())
        assert destinations & flow_nodes


class TestMapMatchingIntegration:
    def test_noisy_pipeline_close_to_ground_truth(self, workload):
        """GPS noise + SLAMM + NEAT yields clusters close to the noiseless run."""
        network, dataset = workload
        raws = degrade_dataset(dataset, sigma=4.0, seed=99)
        matcher = SlammMatcher(network, MatchConfig(sigma=4.0))
        matched = [matcher.match_trace(raw) for raw in raws]

        clean = NEAT(network, NEATConfig(eps=600.0)).run_flow(dataset)
        noisy = NEAT(network, NEATConfig(eps=600.0)).run_flow(matched)

        clean_sids = {sid for flow in clean.flows for sid in flow.sids}
        noisy_sids = {sid for flow in noisy.flows for sid in flow.sids}
        jaccard = len(clean_sids & noisy_sids) / len(clean_sids | noisy_sids)
        assert jaccard > 0.6


class TestNEATvsTraClus:
    def test_neat_faster_and_more_continuous(self, workload):
        """The paper's headline: NEAT is faster with longer routes."""
        network, dataset = workload
        neat_result = NEAT(network, NEATConfig(eps=600.0)).run_flow(dataset)
        traclus_result = TraClus(TraClusParams(eps=10.0, min_lns=4)).run(dataset)
        row = compare_results(
            dataset.name, dataset.total_points, neat_result, traclus_result
        )
        assert row.speedup > 10.0  # orders of magnitude at paper scale
        assert row.neat_avg_route_m > row.traclus_avg_route_m

    def test_base_neat_matches_traclus_semantics(self, workload):
        """Sec IV-C: thresholded base clusters show dense road segments."""
        network, dataset = workload
        result = NEAT(network).run_base(dataset)
        dense = [c for c in result.base_clusters if c.density >= 10]
        assert dense
        # Dense base clusters are exactly the high-traffic segments.
        for cluster in dense:
            assert cluster.trajectory_cardinality >= 2


class TestIncrementalUse:
    def test_two_batch_clustering_reuses_engine(self, workload):
        """Section III-C's online scenario: phase 3 engine amortizes."""
        network, dataset = workload
        half = len(dataset) // 2
        first = list(dataset)[:half]
        second = list(dataset)[half:]
        neat = NEAT(network, NEATConfig(eps=600.0))
        neat.run_opt(first)
        after_first = neat.engine.computations
        neat.run_opt(second)
        growth = neat.engine.computations - after_first
        assert growth <= after_first * 3  # warm cache bounds new work

    def test_serialization_roundtrip_of_whole_workload(self, workload, tmp_path):
        from repro.mobisim.io import load_dataset, save_dataset
        from repro.roadnet.io import load_network, save_network

        network, dataset = workload
        save_network(network, tmp_path / "net.json")
        save_dataset(dataset, tmp_path / "data.json")
        network2 = load_network(tmp_path / "net.json")
        dataset2 = load_dataset(tmp_path / "data.json")
        r1 = NEAT(network, NEATConfig(eps=600.0)).run_flow(dataset)
        r2 = NEAT(network2, NEATConfig(eps=600.0)).run_flow(dataset2)
        assert [f.sids for f in r1.flows] == [f.sids for f in r2.flows]
