"""Origin-destination matrices from trajectory data.

Transit planning (the paper's first application) works with OD matrices:
how many trips go from area A to area B.  This module derives one
directly from the trajectories: each trip's origin and destination are
snapped to their nearest junctions, the junctions are grouped into areas
by network proximity (the same eps-connected grouping Phase 3 uses), and
trips are tallied per (origin area, destination area) pair.

Together with :mod:`repro.analysis.hotspot_detection` this closes the
loop on Figure 3's story: the clusters connect "two hotspot areas", and
the OD matrix says how much demand each connection carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..cluster.dbscan import clusters_from_labels, dbscan
from ..core.model import Trajectory
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine


@dataclass
class ODMatrix:
    """An origin-destination tally over junction areas.

    Attributes:
        areas: Junction groups, indexed by area id.
        counts: Trip counts keyed by ``(origin_area, destination_area)``.
    """

    areas: list[frozenset[int]] = field(default_factory=list)
    counts: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def trip_count(self) -> int:
        """Total trips tallied."""
        return sum(self.counts.values())

    def top_pairs(self, limit: int = 10) -> list[tuple[int, int, int]]:
        """The busiest ``(origin, destination, trips)`` pairs."""
        ranked = sorted(
            ((o, d, n) for (o, d), n in self.counts.items()),
            key=lambda item: (-item[2], item[0], item[1]),
        )
        return ranked[:limit]

    def demand_between(self, origin_area: int, destination_area: int) -> int:
        """Trips from one area to another (directional)."""
        return self.counts.get((origin_area, destination_area), 0)

    def area_of(self, node_id: int) -> int | None:
        """The area containing a junction, or ``None``."""
        for index, area in enumerate(self.areas):
            if node_id in area:
                return index
        return None


def _endpoint_node(network: RoadNetwork, trajectory: Trajectory, last: bool) -> int:
    """Snap a trip end to the nearest junction of its segment."""
    location = trajectory.end if last else trajectory.start
    segment = network.segment(location.sid)
    u_point = network.node_point(segment.node_u)
    v_point = network.node_point(segment.node_v)
    point = location.point
    return (
        segment.node_u
        if point.distance_to(u_point) <= point.distance_to(v_point)
        else segment.node_v
    )


def od_matrix(
    network: RoadNetwork,
    trajectories: Sequence[Trajectory],
    radius: float = 500.0,
    engine: ShortestPathEngine | None = None,
) -> ODMatrix:
    """Build an OD matrix by grouping trip endpoints into areas.

    Args:
        network: The road network.
        trajectories: The trips to tally.
        radius: Network distance threshold for two endpoints to belong to
            the same area.
        engine: Optional shared shortest-path engine.
    """
    matrix = ODMatrix()
    if not trajectories:
        return matrix
    if engine is None:
        engine = ShortestPathEngine(network, directed=False)

    endpoints: list[tuple[int, int]] = [
        (
            _endpoint_node(network, trajectory, last=False),
            _endpoint_node(network, trajectory, last=True),
        )
        for trajectory in trajectories
    ]
    nodes = sorted({node for pair in endpoints for node in pair})

    def region_query(index: int) -> list[int]:
        me = nodes[index]
        return [
            other
            for other in range(len(nodes))
            if other != index and engine.distance(me, nodes[other]) <= radius
        ]

    labels = dbscan(len(nodes), region_query, min_pts=1)
    area_of_node: dict[int, int] = {}
    for area_id, indices in enumerate(clusters_from_labels(labels)):
        matrix.areas.append(frozenset(nodes[i] for i in indices))
        for i in indices:
            area_of_node[nodes[i]] = area_id

    for origin_node, destination_node in endpoints:
        key = (area_of_node[origin_node], area_of_node[destination_node])
        matrix.counts[key] = matrix.counts.get(key, 0) + 1
    return matrix


def format_od_matrix(matrix: ODMatrix, limit: int = 10) -> str:
    """Readable top-pairs table."""
    if not matrix.counts:
        return "(no trips)"
    lines = [f"{'from':>6}  {'to':>6}  {'trips':>6}"]
    for origin, destination, trips in matrix.top_pairs(limit):
        lines.append(f"{origin:>6}  {destination:>6}  {trips:>6}")
    return "\n".join(lines)
