#!/usr/bin/env python3
"""A NEAT server session: ingest, query, serve (Section II-C).

The paper's system sketch: clients send trajectories to a NEAT server
and "make requests to the server to get trajectory clustering results".
This example drives the in-process server facade through a session —
three clients submitting batches, then queries for flow summaries and
the full validated clustering document a map UI would consume.

Run:  python examples/neat_server.py
"""

import json

from repro.core import NEATConfig
from repro.distributed import NeatService
from repro.mobisim import SimulationConfig, simulate_dataset
from repro.roadnet import san_jose_like

network = san_jose_like(scale=0.1)
service = NeatService(network, NEATConfig(eps=800.0, min_card=5))

# Three "clients" (e.g. taxi fleets) each upload their day of traces.
for client in range(3):
    fleet = simulate_dataset(
        network,
        SimulationConfig(object_count=120, seed=500 + client,
                         name=f"fleet-{client}"),
    )
    ack = service.submit(list(fleet))
    print(
        f"client {client}: accepted {ack['accepted']} trips -> "
        f"+{ack['new_flows']} flows (pool {ack['total_flows']}, "
        f"{ack['clusters']} clusters)"
    )

stats = service.stats()
print(
    f"\nserver state: {stats.batches_ingested} batches, "
    f"{stats.trajectories_ingested} trips, {stats.flow_count} flows, "
    f"{stats.cluster_count} clusters, "
    f"{stats.shortest_path_computations} Dijkstra searches so far"
)

# A lightweight query a map UI would poll.
print("\ntop flows by ridership:")
summaries = sorted(
    service.get_flow_summaries(), key=lambda s: -s["cardinality"]
)
for summary in summaries[:5]:
    print(
        f"  flow {summary['flow']}: {summary['cardinality']} trips, "
        f"{summary['route_length_m'] / 1000:.1f} km, "
        f"endpoints {summary['endpoints']}"
    )

# The full clustering document (validated server-side before serving).
document = service.get_clustering()
payload = json.dumps(document)
print(
    f"\nfull clustering document: {len(document['flows'])} flows, "
    f"{len(document['clusters'])} clusters, {len(payload) / 1024:.0f} KiB "
    "of JSON"
)
print("document keys:", sorted(document.keys()))
