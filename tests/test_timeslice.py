"""Tests for time-sliced clustering."""

from __future__ import annotations

import pytest

from repro.core.config import NEATConfig
from repro.core.timeslice import (
    flow_stability,
    persistent_segments,
    time_sliced_clustering,
)

from conftest import trajectory_through


def shifted(network, trid, sids, t0):
    return trajectory_through(network, trid, sids, t0=t0)


class TestSlicing:
    def test_trips_bucketed_by_departure(self, line3):
        trs = [shifted(line3, 0, [0, 1], 0.0), shifted(line3, 1, [0, 1], 50.0),
               shifted(line3, 2, [1, 2], 700.0)]
        slices = time_sliced_clustering(
            line3, trs, window=600.0, config=NEATConfig(min_card=0)
        )
        assert len(slices) == 2
        assert slices[0].trajectory_count == 2
        assert slices[1].trajectory_count == 1

    def test_window_boundaries(self, line3):
        trs = [shifted(line3, 0, [0], 0.0), shifted(line3, 1, [0], 1000.0)]
        slices = time_sliced_clustering(
            line3, trs, window=300.0, config=NEATConfig(min_card=0)
        )
        assert slices[0].start == 0.0
        assert slices[0].end == 300.0
        assert slices[-1].start <= 1000.0 < slices[-1].end

    def test_empty_windows_skipped(self, line3):
        trs = [shifted(line3, 0, [0], 0.0), shifted(line3, 1, [0], 5000.0)]
        slices = time_sliced_clustering(
            line3, trs, window=100.0, config=NEATConfig(min_card=0)
        )
        assert len(slices) == 2
        assert slices[1].index > 1

    def test_rejects_bad_window(self, line3):
        with pytest.raises(ValueError):
            time_sliced_clustering(line3, [], window=0.0)

    def test_empty_input(self, line3):
        assert time_sliced_clustering(line3, [], window=60.0) == []

    def test_covered_segments(self, line3):
        trs = [shifted(line3, i, [0, 1, 2], 0.0) for i in range(3)]
        slices = time_sliced_clustering(
            line3, trs, window=600.0, config=NEATConfig(min_card=0)
        )
        assert slices[0].covered_segments == frozenset({0, 1, 2})


class TestStability:
    def test_identical_windows_fully_stable(self, line3):
        trs = [shifted(line3, i, [0, 1, 2], 0.0) for i in range(3)]
        trs += [shifted(line3, 10 + i, [0, 1, 2], 700.0) for i in range(3)]
        slices = time_sliced_clustering(
            line3, trs, window=600.0, config=NEATConfig(min_card=0)
        )
        assert flow_stability(slices) == [pytest.approx(1.0)]

    def test_churn_detected(self, star4):
        trs = [shifted(star4, i, [0, 1], 0.0) for i in range(3)]
        trs += [shifted(star4, 10 + i, [2, 3], 700.0) for i in range(3)]
        slices = time_sliced_clustering(
            star4, trs, window=600.0, config=NEATConfig(min_card=0)
        )
        assert flow_stability(slices) == [pytest.approx(0.0)]

    def test_single_slice_no_pairs(self, line3):
        trs = [shifted(line3, 0, [0], 0.0)]
        slices = time_sliced_clustering(
            line3, trs, window=600.0, config=NEATConfig(min_card=0)
        )
        assert flow_stability(slices) == []


class TestPersistence:
    def test_all_day_corridor(self, star4):
        # Segments 0-1 busy in both windows; 2-3 only in the second.
        trs = [shifted(star4, i, [0, 1], 0.0) for i in range(3)]
        trs += [shifted(star4, 10 + i, [0, 1], 700.0) for i in range(3)]
        trs += [shifted(star4, 20 + i, [2, 3], 700.0) for i in range(3)]
        slices = time_sliced_clustering(
            star4, trs, window=600.0, config=NEATConfig(min_card=0)
        )
        assert persistent_segments(slices, min_fraction=1.0) == frozenset({0, 1})
        assert persistent_segments(slices, min_fraction=0.5) == frozenset(
            {0, 1, 2, 3}
        )

    def test_empty(self):
        assert persistent_segments([]) == frozenset()

    def test_bad_fraction(self, line3):
        trs = [shifted(line3, 0, [0], 0.0)]
        slices = time_sliced_clustering(
            line3, trs, window=60.0, config=NEATConfig(min_card=0)
        )
        with pytest.raises(ValueError):
            persistent_segments(slices, min_fraction=0.0)
