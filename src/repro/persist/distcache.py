"""Persistent warm-start distance cache for the shortest-path engine.

Phase 3's dominant cost is network shortest-path searches, and the
engine's memo table makes repeated refreshes cheap — but only within one
process.  This module spills that memo table to disk through the durable
store (:func:`~repro.persist.store.atomic_write` +
:func:`~repro.persist.store.seal_snapshot`) so a restarted
:class:`~repro.distributed.service.NeatService` or a recovered
:class:`~repro.core.incremental.IncrementalNEAT` warm-starts instead of
recomputing: with an unchanged network, journal replay after a restart
performs **zero** shortest-path computations.

Format: the SHA-256 sealed snapshot envelope around one JSON header line
(format/version tags, network name, the network's **mutation version**,
direction mode, entry counts) followed by fixed-width packed records —
``<qqd`` per ``(node_a, node_b, value)``, exact entries first, then
bounded verdicts (value = the largest cutoff the pair is proven to
exceed).  Entries are sorted, so the same cache content always produces
the same bytes.

Staleness is the whole point of the header: the cache is keyed on the
CSR mutation version (:attr:`~repro.roadnet.network.RoadNetwork.version`),
and a version, name, or direction mismatch *invalidates* the file — a
stale cache must never serve distances for a mutated network.  Loads are
best-effort: a missing, torn, corrupt, or stale file is a counted miss
(``sp.cache.misses`` / ``sp.cache.invalidations``), never a recovery
failure.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import CorruptSnapshot, PersistenceError, TornWrite
from ..obs import get_logger
from .store import atomic_write, seal_snapshot, unseal_snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from ..resilience import FaultInjector
    from ..roadnet.shortest_path import ShortestPathEngine

_log = get_logger("persist.distcache")

#: Format tag and schema version of the distance-cache payload.
DISTCACHE_FORMAT = "repro-distcache"
DISTCACHE_VERSION = 1

#: One cache entry: node_a (i64), node_b (i64), value (f64).
_RECORD = struct.Struct("<qqd")


def encode_distance_cache(engine: "ShortestPathEngine") -> bytes:
    """Serialize an engine's memo tables into the distcache payload.

    The payload is deterministic for a given cache content (entries are
    emitted sorted), so repeated saves of an unchanged cache are
    byte-identical.
    """
    exact, bounded = engine.export_cache()
    header = {
        "format": DISTCACHE_FORMAT,
        "version": DISTCACHE_VERSION,
        "network": engine.network.name,
        "network_version": engine.network.version,
        "directed": engine.directed,
        "exact": len(exact),
        "bounded": len(bounded),
    }
    parts = [json.dumps(header, sort_keys=True).encode("utf-8"), b"\n"]
    for (a, b), value in sorted(exact.items()):
        parts.append(_RECORD.pack(a, b, value))
    for (a, b), bound in sorted(bounded.items()):
        parts.append(_RECORD.pack(a, b, bound))
    return b"".join(parts)


def decode_distance_cache(
    payload: bytes, source: str | Path = "<memory>"
) -> tuple[dict, dict[tuple[int, int], float], dict[tuple[int, int], float]]:
    """Parse a distcache payload into ``(header, exact, bounded)``.

    Raises:
        CorruptSnapshot: Malformed header, wrong format tag or schema
            version, or a record section shorter than the header claims.
    """
    newline = payload.find(b"\n")
    if newline < 0:
        raise CorruptSnapshot(source, "distance cache has no header line")
    try:
        header = json.loads(payload[:newline].decode("utf-8"))
    except ValueError as error:
        raise CorruptSnapshot(
            source, f"unparseable distance-cache header: {error}"
        ) from error
    if not isinstance(header, dict) or header.get("format") != DISTCACHE_FORMAT:
        raise CorruptSnapshot(source, "not a distance cache (bad format tag)")
    if header.get("version") != DISTCACHE_VERSION:
        raise CorruptSnapshot(
            source,
            f"unsupported distance-cache version {header.get('version')!r}",
        )
    counts = (header.get("exact"), header.get("bounded"))
    if not all(isinstance(count, int) and count >= 0 for count in counts):
        raise CorruptSnapshot(source, "bad distance-cache entry counts")
    body = payload[newline + 1:]
    expected = (counts[0] + counts[1]) * _RECORD.size
    if len(body) != expected:
        raise CorruptSnapshot(
            source,
            f"distance-cache body is {len(body)} bytes, header "
            f"declares {expected}",
        )
    records = list(_RECORD.iter_unpack(body))
    exact = {(a, b): value for a, b, value in records[:counts[0]]}
    bounded = {(a, b): value for a, b, value in records[counts[0]:]}
    return header, exact, bounded


def save_distance_cache(
    path: str | Path,
    engine: "ShortestPathEngine",
    *,
    fsync: bool = True,
    metrics: "MetricsRegistry | None" = None,
    faults: "FaultInjector | None" = None,
) -> int:
    """Atomically persist an engine's memo tables to ``path``.

    Returns the number of entries written (exact + bounded).  The write
    goes through the ``distcache.pre_rename`` fault point, so crash
    drills leave either the old file or the new one, never a torn mix.
    """
    exact, bounded = engine.export_cache()
    entries = len(exact) + len(bounded)
    payload = encode_distance_cache(engine)
    # The cache may be the first file in a fresh state directory (the
    # journal and snapshot stores create theirs lazily on first write).
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    atomic_write(
        path,
        seal_snapshot(payload),
        fsync=fsync,
        faults=faults,
        fault_point="distcache.pre_rename",
    )
    if metrics is not None:
        metrics.inc(
            "sp.cache.saves", description="Distance-cache snapshots written"
        )
        metrics.inc(
            "sp.cache.saved_entries",
            amount=entries,
            description="Distance entries written across cache saves",
        )
    _log.debug("distance cache saved", path=str(path), entries=entries)
    return entries


def load_distance_cache(
    path: str | Path,
    engine: "ShortestPathEngine",
    *,
    metrics: "MetricsRegistry | None" = None,
    faults: "FaultInjector | None" = None,
) -> int | None:
    """Warm ``engine`` from a persisted distance cache, best-effort.

    Returns the number of entries absorbed, or ``None`` when the file is
    missing, torn, corrupt, or **stale** — written for a different
    network name, direction mode, or CSR mutation version.  A stale or
    unreadable cache is counted (``sp.cache.invalidations``) and ignored;
    it must never serve distances for a mutated network, and it must
    never turn a recovery into a failure.
    """
    target = Path(path)
    if not target.exists():
        if metrics is not None:
            metrics.inc(
                "sp.cache.misses",
                description="Cache loads finding no distance-cache file",
            )
        return None
    try:
        data = (
            faults.run("distcache.read", target.read_bytes)
            if faults is not None
            else target.read_bytes()
        )
        header, exact, bounded = decode_distance_cache(
            unseal_snapshot(data, target), target
        )
    except (CorruptSnapshot, TornWrite, PersistenceError, OSError) as error:
        if metrics is not None:
            metrics.inc(
                "sp.cache.invalidations",
                description=(
                    "Distance caches discarded as stale, torn, or corrupt"
                ),
            )
        _log.warning(
            "distance cache unreadable, ignoring",
            path=str(target),
            error=repr(error),
        )
        return None
    stale = (
        header.get("network") != engine.network.name
        or header.get("network_version") != engine.network.version
        or header.get("directed") != engine.directed
    )
    if stale:
        if metrics is not None:
            metrics.inc(
                "sp.cache.invalidations",
                description=(
                    "Distance caches discarded as stale, torn, or corrupt"
                ),
            )
        _log.info(
            "distance cache stale, ignoring",
            path=str(target),
            cached_version=header.get("network_version"),
            network_version=engine.network.version,
        )
        return None
    absorbed = engine.absorb_cache(exact, bounded)
    if metrics is not None:
        metrics.inc(
            "sp.cache.loads",
            description="Distance caches successfully loaded into an engine",
        )
        metrics.inc(
            "sp.cache.loaded_entries",
            amount=absorbed,
            description="Distance entries absorbed across cache loads",
        )
    _log.info(
        "distance cache loaded",
        path=str(target),
        entries=absorbed,
        network_version=header.get("network_version"),
    )
    return absorbed
