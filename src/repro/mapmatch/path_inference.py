"""Inferring the junctions crossed between two matched segments.

When two consecutive trajectory samples lie on different road segments, the
object crossed one or more junctions between them (Section III-A1).  For
contiguous segments the crossing is simply their shared junction
``I(e_i, e_j)``; otherwise the crossing sequence is recovered from the
shortest path between the segments' endpoints — the "map-matching approach"
the paper defers to.

The result is a list of :class:`Crossing` records, each saying "the object
crossed junction ``node_id`` and entered segment ``sid``"; the final
crossing always enters the destination segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NoPathError
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import shortest_route


@dataclass(frozen=True, slots=True)
class Crossing:
    """One junction crossing: the object enters ``sid`` at ``node_id``."""

    node_id: int
    sid: int


def infer_crossings(
    network: RoadNetwork, sid_from: int, sid_to: int
) -> list[Crossing]:
    """The junction crossings between segment ``sid_from`` and ``sid_to``.

    For adjacent segments this is the single shared junction.  For
    non-adjacent segments, the cheapest endpoint-to-endpoint shortest route
    supplies the intermediate segments; each intermediate junction becomes
    a crossing.

    Raises:
        NoPathError: when the two segments are not connected at all.
    """
    if sid_from == sid_to:
        return []
    junction = network.common_junction(sid_from, sid_to)
    if junction is not None:
        return [Crossing(junction, sid_to)]

    seg_from = network.segment(sid_from)
    seg_to = network.segment(sid_to)
    best = None
    for exit_node in seg_from.endpoints:
        for entry_node in seg_to.endpoints:
            try:
                route = shortest_route(network, exit_node, entry_node, directed=False)
            except NoPathError:
                continue
            if best is None or route.length < best.length:
                best = route
    if best is None:
        raise NoPathError(sid_from, sid_to)

    crossings = []
    for i, sid in enumerate(best.sids):
        crossings.append(Crossing(best.nodes[i], sid))
    crossings.append(Crossing(best.nodes[-1], sid_to))
    return crossings
