"""Exception hierarchy for the NEAT reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still being able to discriminate finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class RoadNetworkError(ReproError):
    """Structural problem in a road network (unknown node, segment, ...)."""


class UnknownNodeError(RoadNetworkError):
    """A node id was referenced that does not exist in the network."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"unknown junction node: {node_id!r}")
        self.node_id = node_id


class UnknownSegmentError(RoadNetworkError):
    """A segment id was referenced that does not exist in the network."""

    def __init__(self, sid: int) -> None:
        super().__init__(f"unknown road segment: {sid!r}")
        self.sid = sid


class DuplicateSegmentError(RoadNetworkError):
    """Attempted to register a segment id twice."""

    def __init__(self, sid: int) -> None:
        super().__init__(f"duplicate road segment id: {sid!r}")
        self.sid = sid


class NoPathError(RoadNetworkError):
    """No route exists between two network locations."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"no path from {source!r} to {target!r}")
        self.source = source
        self.target = target


class TrajectoryError(ReproError):
    """Malformed trajectory input (too few points, bad ordering, ...)."""


class MapMatchError(ReproError):
    """Map matching failed to assign a location to any road segment."""


class ClusteringError(ReproError):
    """A clustering phase received inconsistent input."""


class ConfigError(ReproError):
    """Invalid algorithm configuration (weights, thresholds, ...)."""


class ResilienceError(ReproError):
    """Base class for failures surfaced by the robustness layer."""


class DeadlineExceeded(ResilienceError):
    """An operation ran past its caller-supplied deadline."""

    def __init__(self, operation: str, budget_s: float) -> None:
        super().__init__(
            f"operation {operation!r} exceeded its {budget_s:.3f}s deadline"
        )
        self.operation = operation
        self.budget_s = budget_s


class RetriesExhausted(ResilienceError):
    """Every attempt allowed by a :class:`RetryPolicy` failed.

    The last underlying failure rides along as ``last_error`` (and as
    ``__cause__``).
    """

    def __init__(self, operation: str, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"operation {operation!r} failed after {attempts} attempt(s): "
            f"{last_error!r}"
        )
        self.operation = operation
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open; the call was rejected without running."""

    def __init__(self, name: str, retry_after_s: float) -> None:
        super().__init__(
            f"circuit {name!r} is open (retry in {max(retry_after_s, 0.0):.3f}s)"
        )
        self.name = name
        self.retry_after_s = retry_after_s


class FaultInjected(ReproError):
    """The failure raised by the fault-injection harness (tests/benchmarks)."""

    def __init__(self, operation: str, call_index: int) -> None:
        super().__init__(
            f"injected fault in {operation!r} (call #{call_index})"
        )
        self.operation = operation
        self.call_index = call_index


class NodeDown(ResilienceError):
    """A data node was addressed after being marked dead."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"data node {node_id} is down")
        self.node_id = node_id


class TransportError(ResilienceError):
    """A wire-protocol call to a remote shard node failed.

    Raised by the distributed transport for every socket-level failure —
    refused connections, connections dropped mid-message, responses that
    never arrive, frames that fail their CRC.  ``kind`` names the
    failure mode (``"refused"``, ``"dropped"``, ``"stalled"``,
    ``"garbled"``, ``"protocol"``) so retry policies and tests can
    discriminate without string matching.
    """

    def __init__(self, address: str, kind: str, detail: str) -> None:
        super().__init__(f"transport to {address} failed ({kind}): {detail}")
        self.address = address
        self.kind = kind
        self.detail = detail


class HandshakeFailed(TransportError):
    """The versioned wire handshake with a shard node was rejected."""

    def __init__(self, address: str, detail: str) -> None:
        super().__init__(address, "handshake", detail)


class QuorumLost(ResilienceError):
    """Too few shards survived for the coordinator's configured quorum."""

    def __init__(self, surviving: int, dispatched: int, quorum: float) -> None:
        super().__init__(
            f"only {surviving}/{dispatched} shards survived "
            f"(quorum {quorum:.2f})"
        )
        self.surviving = surviving
        self.dispatched = dispatched
        self.quorum = quorum


class PersistenceError(ReproError):
    """Base class for durable-storage failures (snapshots, journals)."""


class CorruptSnapshot(PersistenceError):
    """A persisted artifact failed its checksum or could not be decoded.

    Raised for any verified-on-read artifact — snapshot generations,
    journal records, serialized results — whose bytes are present but
    wrong (bit flips, tampering, schema-breaking truncation inside a
    complete frame).  ``path`` names the offending file.
    """

    def __init__(self, path: object, detail: str) -> None:
        super().__init__(f"corrupt persistence artifact {str(path)!r}: {detail}")
        self.path = str(path)
        self.detail = detail


class TornWrite(PersistenceError):
    """A persisted artifact ends mid-record (an interrupted write).

    Distinct from :class:`CorruptSnapshot`: the readable prefix is intact
    but the declared length runs past end-of-file — the classic signature
    of a crash between ``write()`` and ``fsync``/rename.
    """

    def __init__(self, path: object, detail: str) -> None:
        super().__init__(f"torn write in {str(path)!r}: {detail}")
        self.path = str(path)
        self.detail = detail


class RecoveryError(PersistenceError):
    """Recovery could not restore a consistent state from a state dir."""

    def __init__(self, state_dir: object, detail: str) -> None:
        super().__init__(f"recovery from {str(state_dir)!r} failed: {detail}")
        self.state_dir = str(state_dir)
        self.detail = detail


class ServiceOverloaded(ReproError):
    """Admission control rejected a batch: the pending queue is full."""

    def __init__(self, pending: int, max_pending: int) -> None:
        super().__init__(
            f"service overloaded: {pending} pending batch(es), "
            f"max_pending={max_pending}"
        )
        self.pending = pending
        self.max_pending = max_pending


class ServiceUnavailable(ReproError):
    """A query failed and no previously validated snapshot exists to serve."""
