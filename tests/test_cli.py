"""Tests for the command-line interface."""

from __future__ import annotations

import json
import logging

import pytest

from repro.cli import main
from repro.obs.logging import _HANDLER_MARK


@pytest.fixture(autouse=True)
def _drop_cli_log_handlers():
    """main() configures repro logging; detach handlers bound to capsys."""
    yield
    root = logging.getLogger("repro")
    for handler in [h for h in root.handlers if getattr(h, _HANDLER_MARK, False)]:
        root.removeHandler(handler)
    root.setLevel(logging.WARNING)


@pytest.fixture
def saved_network(tmp_path):
    path = tmp_path / "net.json"
    assert main([
        "generate-network", "--region", "ATL", "--scale", "0.03",
        "--out", str(path),
    ]) == 0
    return path


@pytest.fixture
def saved_traces(tmp_path, saved_network):
    path = tmp_path / "traces.json"
    assert main([
        "simulate", "--network", str(saved_network),
        "--objects", "30", "--out", str(path),
    ]) == 0
    return path


class TestGenerateNetwork:
    def test_writes_valid_json(self, saved_network):
        data = json.loads(saved_network.read_text())
        assert data["format"] == "repro-roadnet"
        assert data["segments"]

    def test_output_message(self, saved_network, capsys):
        main(["stats", str(saved_network)])
        out = capsys.readouterr().out
        assert "Regions" in out


class TestSimulate:
    def test_writes_traces(self, saved_traces):
        data = json.loads(saved_traces.read_text())
        assert data["format"] == "repro-trajectories"
        assert len(data["trajectories"]) > 0

    def test_seed_controls_output(self, tmp_path, saved_network):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["simulate", "--network", str(saved_network), "--objects", "10",
              "--seed", "1", "--out", str(a)])
        main(["simulate", "--network", str(saved_network), "--objects", "10",
              "--seed", "1", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestCluster:
    def test_opt_mode(self, saved_network, saved_traces, capsys):
        code = main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--mode", "opt",
            "--eps", "500", "--min-card", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "NEAT[opt]" in out
        assert "flow 0:" in out

    def test_svg_output(self, saved_network, saved_traces, tmp_path, capsys):
        svg = tmp_path / "map.svg"
        main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--svg", str(svg),
            "--min-card", "0",
        ])
        assert svg.exists()
        assert svg.read_text().startswith("<svg")

    def test_weight_flags(self, saved_network, saved_traces, capsys):
        code = main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces),
            "--wq", "1.0", "--wk", "0.0", "--wv", "0.0", "--min-card", "0",
        ])
        assert code == 0

    def test_json_output_is_single_document(
        self, saved_network, saved_traces, capsys
    ):
        code = main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--mode", "opt",
            "--min-card", "0", "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["mode"] == "opt"
        assert document["flows"]
        assert document["network_name"]

    def test_metrics_out_writes_snapshot(
        self, saved_network, saved_traces, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.json"
        code = main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--mode", "opt",
            "--min-card", "0", "--metrics-out", str(metrics),
        ])
        assert code == 0
        snapshot = json.loads(metrics.read_text())
        assert snapshot["trace"][0]["name"] == "neat.run"
        counters = snapshot["metrics"]["counters"]
        assert counters["neat.phase1.t_fragments"] > 0
        assert "neat.phase3.pair_checks" in counters


class TestLoggingFlags:
    def test_log_level_emits_run_records(
        self, saved_network, saved_traces, capsys
    ):
        code = main([
            "--log-level", "INFO",
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--min-card", "0",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "event=" in err
        assert "run complete" in err

    def test_log_json_emits_json_lines(
        self, saved_network, saved_traces, capsys
    ):
        code = main([
            "--log-level", "INFO", "--log-json",
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--min-card", "0",
        ])
        assert code == 0
        lines = [
            line for line in capsys.readouterr().err.splitlines() if line
        ]
        records = [json.loads(line) for line in lines]
        assert any(r["event"] == "run complete" for r in records)

    def test_default_level_is_quiet(self, saved_network, saved_traces, capsys):
        main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--min-card", "0",
        ])
        assert "run complete" not in capsys.readouterr().err


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestTimelineExports:
    def test_trace_out_and_folded_out(
        self, saved_network, saved_traces, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.json"
        folded_path = tmp_path / "run.folded"
        assert main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces),
            "--trace-out", str(trace_path),
            "--folded-out", str(folded_path),
        ]) == 0
        document = json.loads(trace_path.read_text())
        assert document["displayTimeUnit"] == "ms"
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} >= {
            "neat.run", "phase1.fragmentation",
            "phase2.flow_formation", "phase3.refinement",
        }
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        lines = folded_path.read_text().splitlines()
        assert any(line.startswith("neat.run ") for line in lines)
        # Folded self-times telescope back to the root spans' total
        # (integer microseconds, exact by construction).
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        root_events = [
            e for e in complete
            if e["name"] in ("neat.run", "pipeline.resume_probe")
        ]
        assert total > 0
        assert total <= sum(int(round(e["dur"])) for e in complete)
        assert root_events

    def test_profiler_flags(self, saved_network, saved_traces, tmp_path):
        profile_path = tmp_path / "profile.folded"
        assert main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces),
            "--profile-hz", "500", "--profile-out", str(profile_path),
        ]) == 0
        assert profile_path.exists()  # may be empty on a fast run

    def test_streaming_trace_out(
        self, saved_network, saved_traces, tmp_path
    ):
        trace_path = tmp_path / "stream-trace.json"
        assert main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--batch-size", "10",
            "--trace-out", str(trace_path),
        ]) == 0
        document = json.loads(trace_path.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert "incremental.add_batch" in names or len(names) > 2


class TestServe:
    def test_serves_all_endpoints_live(
        self, saved_network, saved_traces, tmp_path
    ):
        import json as json_module
        import threading
        import time
        import urllib.request

        port_file = tmp_path / "port.txt"
        codes = []

        def run() -> None:
            codes.append(main([
                "serve", "--network", str(saved_network),
                "--traces", str(saved_traces), "--batch-size", "10",
                "--obs-port", "0", "--port-file", str(port_file),
                "--duration", "8", "--slo-ingest-p99", "60",
            ]))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 20.0
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert port_file.exists(), "serve never wrote its port file"
        base = f"http://127.0.0.1:{int(port_file.read_text())}"

        def get_json(path: str):
            with urllib.request.urlopen(base + path, timeout=10) as response:
                return json_module.loads(response.read())

        health = get_json("/health")
        assert health["status"] in ("ok", "degraded")
        assert health["slo"]["ingest"]["threshold_s"] == 60
        statusz = get_json("/statusz")
        assert statusz["config"]["slo_ingest_p99_s"] == 60
        with urllib.request.urlopen(base + "/metrics", timeout=10) as response:
            text = response.read().decode("utf-8")
        assert "service_batches_ingested" in text
        tracez = get_json("/tracez")
        assert tracez["span_count"] >= 1
        thread.join(timeout=30.0)
        assert codes == [0]
