"""Tests for Phase 2 seeding strategies (dense-core vs random ablation)."""

from __future__ import annotations

import random

import pytest

from repro.core.base_cluster import form_base_clusters
from repro.core.config import NEATConfig
from repro.core.flow_formation import form_flow_clusters
from repro.core.neighborhood import BaseClusterPool

from conftest import trajectory_through


@pytest.fixture
def base(small_workload):
    network, dataset = small_workload
    return network, form_base_clusters(network, dataset.trajectories)


class TestPopRandom:
    def test_pop_random_drains_pool(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(2)]
        clusters = form_base_clusters(line3, trs)
        pool = BaseClusterPool(line3, clusters)
        rng = random.Random(1)
        popped = {pool.pop_random(rng).sid for _ in range(len(clusters))}
        assert popped == {c.sid for c in clusters}
        with pytest.raises(IndexError):
            pool.pop_random(rng)


class TestSeedStrategies:
    def test_unknown_strategy_rejected(self, base):
        network, clusters = base
        with pytest.raises(ValueError):
            form_flow_clusters(network, clusters, seed_strategy="magic")

    def test_random_requires_rng(self, base):
        network, clusters = base
        with pytest.raises(ValueError):
            form_flow_clusters(network, clusters, seed_strategy="random")

    def test_random_is_lossless_too(self, base):
        network, clusters = base
        result = form_flow_clusters(
            network, clusters, NEATConfig(min_card=0),
            seed_strategy="random", seed_rng=random.Random(3),
        )
        assigned = [sid for flow in result.all_flows for sid in flow.sids]
        assert sorted(assigned) == sorted(c.sid for c in clusters)

    def test_density_strategy_deterministic_random_not(self, base):
        network, clusters = base
        config = NEATConfig(min_card=0)

        def run_density():
            return tuple(
                f.sids for f in form_flow_clusters(network, clusters, config).flows
            )

        def run_random(seed):
            return tuple(
                f.sids
                for f in form_flow_clusters(
                    network, clusters, config,
                    seed_strategy="random", seed_rng=random.Random(seed),
                ).flows
            )

        assert run_density() == run_density()
        assert any(run_random(s) != run_random(s + 100) for s in range(3))

    def test_densecore_seeds_strongest_flow_first(self, base):
        """III-B1's argument: the first flow follows a major stream."""
        network, clusters = base
        result = form_flow_clusters(network, clusters, NEATConfig(min_card=0))
        top_cardinality = max(f.trajectory_cardinality for f in result.all_flows)
        assert result.all_flows[0].trajectory_cardinality == top_cardinality
