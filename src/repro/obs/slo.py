"""Latency SLO evaluation over metrics histograms.

An :class:`SLORule` names one latency histogram, a quantile and a
threshold ("ingest p99 must stay under 250 ms").  The
:class:`SLOWatchdog` evaluates its rules **deterministically and
inline** — no background thread, no wall clock of its own: every
:meth:`SLOWatchdog.evaluate` call diffs each rule's histogram against
the snapshot taken at the previous evaluation and interpolates the
quantile of exactly the observations recorded in between.  Windowed
evaluation (rather than the cumulative histogram) is what lets a breach
*clear* once latencies recover; evaluating inline (the service calls it
after each request) is what makes chaos runs byte-identical — the same
requests produce the same windows, the same verdicts and the same
counters on every run.

Verdicts are published to the shared registry:

* ``service.slo_breach`` — gauge, 1 while *any* rule is breached;
* ``service.slo_breach.<rule>`` — gauge per rule;
* ``service.slo_breaches`` / ``service.slo_recoveries`` — counters of
  ok→breach / breach→ok transitions.

The owner reacts through the ``on_breach`` / ``on_clear`` callbacks —
:class:`~repro.distributed.service.NeatService` uses them to flip its
degraded/admission machinery (shed ingest load, serve stale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .metrics import Histogram, MetricsRegistry, quantile_from_cumulative

__all__ = ["SLORule", "SLOWatchdog"]

#: Gauge flipped while any rule is breached.
BREACH_GAUGE = "service.slo_breach"
#: Counter of ok -> breached transitions (any rule).
BREACH_COUNTER = "service.slo_breaches"
#: Counter of breached -> ok transitions (any rule).
RECOVERY_COUNTER = "service.slo_recoveries"


@dataclass
class SLORule:
    """One latency objective: ``quantile(histogram) <= threshold_s``.

    Attributes:
        name: Short rule name (``"ingest"``); keyed into the per-rule
            gauge ``service.slo_breach.<name>``.
        histogram: The latency histogram the rule watches.
        threshold_s: The objective, in seconds.
        quantile: Which quantile to hold to the threshold (default p99).
        min_samples: Observations a window needs before it is judged;
            smaller windows carry the previous verdict forward (and stay
            pending until enough observations accumulate).
    """

    name: str
    histogram: Histogram
    threshold_s: float
    quantile: float = 0.99
    min_samples: int = 1

    # Evaluation state: the histogram snapshot the next window diffs
    # against, and the standing verdict.
    _last_count: int = field(default=0, repr=False)
    _last_buckets: tuple[int, ...] = field(default=(), repr=False)
    breached: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise ValueError(
                f"SLO threshold must be > 0, got {self.threshold_s}"
            )
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError(
                f"SLO quantile must be in (0, 1], got {self.quantile}"
            )
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        self._last_buckets = tuple([0] * len(self.histogram.buckets))

    def window_quantile(self) -> tuple[int, float] | None:
        """``(window_count, windowed_quantile)`` since the last judgment.

        Returns None (and leaves the snapshot untouched, so observations
        keep accumulating) when fewer than ``min_samples`` landed.
        """
        histogram = self.histogram
        counts = tuple(histogram.bucket_counts)
        window_count = histogram.count - self._last_count
        if window_count < self.min_samples:
            return None
        diff = [
            current - previous
            for current, previous in zip(counts, self._last_buckets)
        ]
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(histogram.buckets, diff):
            running += bucket
            pairs.append((bound, running))
        pairs.append((float("inf"), window_count))
        value = quantile_from_cumulative(pairs, window_count, self.quantile)
        self._last_count = histogram.count
        self._last_buckets = counts
        return window_count, value


class SLOWatchdog:
    """Evaluates :class:`SLORule` s and publishes breach state.

    Args:
        metrics: Registry receiving the breach gauges/counters (normally
            the same registry the watched histograms live in).
        on_breach: Called with the rule when it transitions ok → breach.
        on_clear: Called with the rule when it transitions breach → ok.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        on_breach: Callable[[SLORule], None] | None = None,
        on_clear: Callable[[SLORule], None] | None = None,
    ) -> None:
        self.metrics = metrics
        self.on_breach = on_breach
        self.on_clear = on_clear
        self.rules: list[SLORule] = []
        self._any_breach = metrics.gauge(
            BREACH_GAUGE, "1 while any latency SLO rule is breached"
        )
        self._breaches = metrics.counter(
            BREACH_COUNTER, "Latency SLO ok -> breached transitions"
        )
        self._recoveries = metrics.counter(
            RECOVERY_COUNTER, "Latency SLO breached -> ok transitions"
        )

    def add_rule(self, rule: SLORule) -> SLORule:
        """Register ``rule`` (its per-rule gauge is created immediately)."""
        self.rules.append(rule)
        self._rule_gauge(rule).set(0.0)
        return rule

    def _rule_gauge(self, rule: SLORule):
        return self.metrics.gauge(
            f"{BREACH_GAUGE}.{rule.name}",
            f"1 while the {rule.name} latency SLO is breached",
        )

    @property
    def breached(self) -> bool:
        """Whether any rule is currently breached."""
        return any(rule.breached for rule in self.rules)

    def evaluate(self) -> dict[str, bool]:
        """Judge every rule's window; returns ``{rule_name: breached}``.

        Rules whose window is still below ``min_samples`` keep their
        previous verdict.  Gauges, transition counters and callbacks
        fire only on verdict changes, so calling this after every
        request is cheap and idempotent between observations.
        """
        verdicts: dict[str, bool] = {}
        for rule in self.rules:
            window = rule.window_quantile()
            if window is not None:
                _, value = window
                breached_now = value > rule.threshold_s
                if breached_now != rule.breached:
                    rule.breached = breached_now
                    self._rule_gauge(rule).set(1.0 if breached_now else 0.0)
                    if breached_now:
                        self._breaches.inc()
                        if self.on_breach is not None:
                            self.on_breach(rule)
                    else:
                        self._recoveries.inc()
                        if self.on_clear is not None:
                            self.on_clear(rule)
            verdicts[rule.name] = rule.breached
        self._any_breach.set(1.0 if self.breached else 0.0)
        return verdicts

    def snapshot(self) -> dict[str, Any]:
        """Rule states for health endpoints: thresholds and verdicts."""
        return {
            rule.name: {
                "threshold_s": rule.threshold_s,
                "quantile": rule.quantile,
                "breached": rule.breached,
                "observed": rule.histogram.count,
            }
            for rule in self.rules
        }
