"""Unit tests for Dijkstra/A* routing and the caching engine."""

from __future__ import annotations

import math

import pytest

from repro.errors import NoPathError, UnknownNodeError
from repro.roadnet.builder import network_from_edges
from repro.roadnet.geometry import Point
from repro.roadnet.network import RoadNetwork
from repro.roadnet.shortest_path import (
    INFINITY,
    Route,
    ShortestPathEngine,
    dijkstra_distance,
    dijkstra_distance_counted,
    dijkstra_single_source,
    shortest_route,
)


@pytest.fixture
def square() -> RoadNetwork:
    """A unit square with one diagonal shortcut: 4 nodes, 5 edges."""
    return network_from_edges(
        [(0, 0), (100, 0), (100, 100), (0, 100)],
        [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
        name="square",
    )


class TestRoute:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Route((1, 2, 3), (0,), 100.0)

    def test_reversed(self):
        route = Route((1, 2, 3), (10, 11), 200.0)
        back = route.reversed()
        assert back.nodes == (3, 2, 1)
        assert back.sids == (11, 10)
        assert back.length == 200.0
        assert back.source == 3 and back.target == 1


class TestDijkstraDistance:
    def test_direct_edge(self, square):
        assert dijkstra_distance(square, 0, 1) == pytest.approx(100.0)

    def test_diagonal_beats_perimeter(self, square):
        assert dijkstra_distance(square, 0, 2) == pytest.approx(math.hypot(100, 100))

    def test_same_node_is_zero(self, square):
        assert dijkstra_distance(square, 3, 3) == 0.0

    def test_symmetry_undirected(self, square):
        for a in range(4):
            for b in range(4):
                assert dijkstra_distance(square, a, b) == pytest.approx(
                    dijkstra_distance(square, b, a)
                )

    def test_unreachable_is_infinite(self):
        net = RoadNetwork()
        net.add_junction(Point(0, 0))
        net.add_junction(Point(10, 0))
        net.add_junction(Point(100, 100))
        net.add_segment(0, 1)
        assert dijkstra_distance(net, 0, 2) == INFINITY

    def test_unknown_node_raises(self, square):
        with pytest.raises(UnknownNodeError):
            dijkstra_distance(square, 0, 42)

    def test_respects_one_way(self):
        net = RoadNetwork()
        a = net.add_junction(Point(0, 0))
        b = net.add_junction(Point(100, 0))
        net.add_segment(a, b, bidirectional=False)
        assert dijkstra_distance(net, a, b, directed=True) == pytest.approx(100.0)
        assert dijkstra_distance(net, b, a, directed=True) == INFINITY
        # Undirected view ignores the restriction.
        assert dijkstra_distance(net, b, a, directed=False) == pytest.approx(100.0)


class TestSingleSource:
    def test_all_distances(self, square):
        dist = dijkstra_single_source(square, 0)
        assert dist[0] == 0.0
        assert dist[1] == pytest.approx(100.0)
        assert dist[2] == pytest.approx(math.hypot(100, 100))

    def test_max_distance_prunes(self, square):
        dist = dijkstra_single_source(square, 0, max_distance=100.0)
        assert set(dist) == {0, 1, 3}

    def test_bounded_agrees_with_unbounded_inside_bound(self, square):
        # Regression: the heap-push prune must not change any distance
        # that survives the bound — only drop nodes beyond it.
        full = dijkstra_single_source(square, 0)
        for bound in (0.0, 100.0, 150.0, 250.0, 1e9):
            bounded = dijkstra_single_source(square, 0, max_distance=bound)
            assert bounded == {
                node: d for node, d in full.items() if d <= bound
            }


class TestCutoff:
    def test_counted_cutoff_exact_inside(self, square):
        exact = dijkstra_distance(square, 1, 3)
        d, _ = dijkstra_distance_counted(square, 1, 3, cutoff=exact)
        assert d == exact

    def test_counted_cutoff_infinite_beyond(self, square):
        exact = dijkstra_distance(square, 1, 3)
        d, _ = dijkstra_distance_counted(square, 1, 3, cutoff=exact - 1.0)
        assert d == INFINITY

    def test_cutoff_reduces_expansions(self, square):
        _, full = dijkstra_distance_counted(square, 0, 2)
        _, pruned = dijkstra_distance_counted(square, 0, 2, cutoff=50.0)
        assert pruned <= full


class TestShortestRoute:
    def test_route_recovery(self, square):
        route = shortest_route(square, 1, 3)
        assert route.source == 1 and route.target == 3
        assert square.is_route(route.sids)
        assert route.length == pytest.approx(200.0)

    def test_route_uses_diagonal(self, square):
        route = shortest_route(square, 0, 2)
        assert route.sids == (4,)

    def test_trivial_route(self, square):
        route = shortest_route(square, 2, 2)
        assert route.nodes == (2,)
        assert route.sids == ()
        assert route.length == 0.0

    def test_no_path_raises(self):
        net = RoadNetwork()
        net.add_junction(Point(0, 0))
        net.add_junction(Point(10, 0))
        net.add_junction(Point(500, 500))
        net.add_segment(0, 1)
        with pytest.raises(NoPathError):
            shortest_route(net, 0, 2)

    def test_route_length_matches_dijkstra(self, square):
        for a in range(4):
            for b in range(4):
                route = shortest_route(square, a, b, directed=False)
                assert route.length == pytest.approx(
                    dijkstra_distance(square, a, b)
                )


class TestEngine:
    def test_caches_symmetric_pairs(self, square):
        engine = ShortestPathEngine(square, directed=False)
        d1 = engine.distance(0, 2)
        assert engine.computations == 1
        d2 = engine.distance(2, 0)
        assert engine.computations == 1  # symmetric hit, no new search
        assert d1 == d2

    def test_same_node_free(self, square):
        engine = ShortestPathEngine(square)
        assert engine.distance(1, 1) == 0.0
        assert engine.computations == 0

    def test_reset_counters_keeps_cache(self, square):
        engine = ShortestPathEngine(square)
        engine.distance(0, 3)
        engine.reset_counters()
        assert engine.computations == 0
        engine.distance(0, 3)
        assert engine.computations == 0  # cache retained

    def test_clear_drops_cache(self, square):
        engine = ShortestPathEngine(square)
        engine.distance(0, 3)
        engine.clear()
        engine.distance(0, 3)
        assert engine.computations == 1

    def test_directed_engine_not_symmetric(self):
        net = RoadNetwork()
        a = net.add_junction(Point(0, 0))
        b = net.add_junction(Point(100, 0))
        net.add_segment(a, b, bidirectional=False)
        engine = ShortestPathEngine(net, directed=True)
        assert engine.distance(a, b) == pytest.approx(100.0)
        assert engine.distance(b, a) == INFINITY
        assert engine.computations == 2


class TestEngineCutoff:
    """Bounded queries cache INFINITY separately from exact distances."""

    def test_finite_result_within_cutoff_is_exact_and_cached(self, square):
        engine = ShortestPathEngine(square)
        exact = dijkstra_distance(square, 1, 3)
        assert engine.distance(1, 3, cutoff=exact + 1.0) == exact
        assert engine.computations == 1
        # The finite bounded answer is exact, so unbounded hits cache.
        assert engine.distance(1, 3) == exact
        assert engine.computations == 1
        assert engine.cache_hits == 1

    def test_bounded_infinity_not_poisoning_unbounded(self, square):
        engine = ShortestPathEngine(square)
        exact = dijkstra_distance(square, 1, 3)
        assert engine.distance(1, 3, cutoff=exact / 2) == INFINITY
        assert engine.computations == 1
        # An unbounded query must recompute and find the real distance.
        assert engine.distance(1, 3) == exact
        assert engine.computations == 2
        # ...after which bounded queries are served from the exact cache
        # (the true distance is strictly more informative than INFINITY).
        assert engine.distance(1, 3, cutoff=exact / 2) == exact
        assert engine.computations == 2
        assert engine.cache_hits == 1

    def test_bounded_cache_reused_for_smaller_cutoffs(self, square):
        engine = ShortestPathEngine(square)
        exact = dijkstra_distance(square, 1, 3)
        assert engine.distance(1, 3, cutoff=exact / 2) == INFINITY
        # A tighter bound is answered by the recorded proven bound.
        assert engine.distance(1, 3, cutoff=exact / 4) == INFINITY
        assert engine.computations == 1
        assert engine.cache_hits == 1
        # A looser (still insufficient) bound needs a fresh search.
        assert engine.distance(1, 3, cutoff=exact * 0.9) == INFINITY
        assert engine.computations == 2

    def test_truly_disconnected_with_cutoff(self):
        net = RoadNetwork()
        net.add_junction(Point(0, 0))
        net.add_junction(Point(10, 0))
        net.add_junction(Point(900, 900))
        net.add_segment(0, 1)
        for backend in ("dict", "csr"):
            engine = ShortestPathEngine(net, backend=backend)
            assert engine.distance(0, 2, cutoff=50.0) == INFINITY
            assert engine.distance(0, 2) == INFINITY

    def test_clear_drops_bounded_cache(self, square):
        engine = ShortestPathEngine(square)
        engine.distance(1, 3, cutoff=10.0)
        engine.clear()  # zeroes counters and drops the bounded table
        engine.distance(1, 3, cutoff=10.0)
        assert engine.computations == 1  # searched again, no cached verdict
        assert engine.cache_hits == 0
