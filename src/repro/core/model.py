"""Core data model: road-network locations, trajectories and t-fragments.

These types implement the definitions of Section II of the paper:

* a *road network location* ``l = (sid, x, y, t)`` — :class:`Location`;
* a *trajectory* ``TR = (trid, l_0 l_1 ... l_n)`` — :class:`Trajectory`;
* a *t-fragment* ``tf = (trid, sid, l_k .. l_{k+m})`` (Definition 1) —
  :class:`TFragment`.

The temporal order of locations encodes the direction of movement, which
the model preserves end to end (Section II-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, NamedTuple, Sequence

from ..errors import TrajectoryError
from ..roadnet.geometry import Point


class Location(NamedTuple):
    """A road-network location sample.

    A :class:`~typing.NamedTuple` rather than a dataclass: locations are
    by far the most numerous objects in the system (every GPS sample plus
    every inserted junction point), and tuple construction is ~3x cheaper
    than a frozen dataclass ``__init__`` — which is what the distributed
    tier's wire decoder and Phase 1 fragmentation spend their time on.
    The type stays immutable and field-addressed either way.

    Attributes:
        sid: Identifier of the road segment the sample lies on.
        x: Planar x coordinate in metres.
        y: Planar y coordinate in metres.
        t: Timestamp in seconds.
        node_id: When this "sample" is a road junction inserted during
            t-fragment extraction (Section III-A1), the junction's node id;
            ``None`` for original GPS samples.  The paper marks inserted
            junction points "as different points than the original location
            samples" — this field is that mark.
    """

    sid: int
    x: float
    y: float
    t: float
    node_id: int | None = None

    @property
    def is_junction(self) -> bool:
        """Whether this location is an inserted junction point."""
        return self.node_id is not None

    @property
    def point(self) -> Point:
        """The geometric position as a :class:`Point`."""
        return Point(self.x, self.y)


@dataclass(frozen=True)
class Trajectory:
    """A time-ordered sequence of locations of one mobile object trip.

    Attributes:
        trid: Unique trajectory identifier.
        locations: The ordered location samples; timestamps must be
            non-decreasing.
    """

    trid: int
    locations: tuple[Location, ...]

    def __post_init__(self) -> None:
        if len(self.locations) < 2:
            raise TrajectoryError(
                f"trajectory {self.trid}: needs at least 2 locations, "
                f"got {len(self.locations)}"
            )
        for earlier, later in zip(self.locations, self.locations[1:]):
            if later.t < earlier.t:
                raise TrajectoryError(
                    f"trajectory {self.trid}: timestamps not ordered "
                    f"({earlier.t} then {later.t})"
                )

    @classmethod
    def from_samples(
        cls, trid: int, samples: Sequence[tuple[int, float, float, float]]
    ) -> "Trajectory":
        """Build a trajectory from ``(sid, x, y, t)`` tuples."""
        return cls(trid, tuple(Location(*s) for s in samples))

    def __len__(self) -> int:
        return len(self.locations)

    def __iter__(self) -> Iterator[Location]:
        return iter(self.locations)

    @property
    def start(self) -> Location:
        """First recorded location."""
        return self.locations[0]

    @property
    def end(self) -> Location:
        """Last recorded location."""
        return self.locations[-1]

    @property
    def duration(self) -> float:
        """Elapsed time between first and last sample, in seconds."""
        return self.end.t - self.start.t

    def segment_ids(self) -> list[int]:
        """The distinct road segments visited, in first-visit order."""
        seen: set[int] = set()
        ordered: list[int] = []
        for location in self.locations:
            if location.sid not in seen:
                seen.add(location.sid)
                ordered.append(location.sid)
        return ordered


@dataclass(frozen=True)
class TFragment:
    """A trajectory fragment: consecutive samples on one road segment.

    Definition 1 of the paper.  A t-fragment keeps the identity of its
    source trajectory (``trid``), its road segment (``sid``) and its
    boundary locations, preserving route and direction information.

    Attributes:
        trid: Source trajectory identifier.
        sid: Road segment the fragment lies on.
        locations: The ``m+1`` consecutive locations, all with this ``sid``.
    """

    trid: int
    sid: int
    locations: tuple[Location, ...]

    def __post_init__(self) -> None:
        if not self.locations:
            raise TrajectoryError(f"t-fragment of trajectory {self.trid}: empty")
        for location in self.locations:
            if location.sid != self.sid:
                raise TrajectoryError(
                    f"t-fragment of trajectory {self.trid}: location on "
                    f"segment {location.sid}, expected {self.sid}"
                )

    @property
    def first(self) -> Location:
        """Entry location of the fragment."""
        return self.locations[0]

    @property
    def last(self) -> Location:
        """Exit location of the fragment."""
        return self.locations[-1]

    def __len__(self) -> int:
        return len(self.locations)


@dataclass(frozen=True)
class TrajectoryDataset:
    """A named set of trajectories over one road network.

    Mirrors the paper's datasets (ATL500, SJ2000, ...): the name records
    the region and object count, ``total_points`` is the quantity Table II
    reports.
    """

    name: str
    trajectories: tuple[Trajectory, ...]
    network_name: str = ""
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.trajectories)

    @property
    def total_points(self) -> int:
        """Total number of location samples across all trajectories."""
        return sum(len(tr) for tr in self.trajectories)

    def trajectory(self, trid: int) -> Trajectory:
        """Look up a trajectory by id."""
        for tr in self.trajectories:
            if tr.trid == trid:
                return tr
        raise TrajectoryError(f"no trajectory with id {trid}")
