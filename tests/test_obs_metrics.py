"""Tests for repro.obs.metrics: instruments, registry, exports."""

from __future__ import annotations

import json
import re
import threading
import time

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help,
    prometheus_name,
    quantile_from_cumulative,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 3.0, 7.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(111.5)
        # le=1.0 catches 0.5 and the boundary value 1.0 (inclusive).
        assert histogram.cumulative_buckets() == [
            (1.0, 2), (5.0, 3), (10.0, 4), (float("inf"), 5),
        ]

    def test_mean(self):
        histogram = Histogram("h", buckets=(1.0,))
        assert histogram.mean == 0.0
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean == 3.0

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_as_dict(self):
        histogram = Histogram("h", buckets=(0.5, 2.0))
        histogram.observe(0.1)
        histogram.observe(10.0)
        document = histogram.as_dict()
        assert document["count"] == 2
        assert document["buckets"] == {"0.5": 1, "2": 1, "+Inf": 2}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_value_accessor(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        assert registry.value("c") == 7
        assert registry.value("missing", default=-1) == -1
        registry.histogram("h").observe(1.0)
        with pytest.raises(TypeError):
            registry.value("h")

    def test_lookup_and_len(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        assert "a" in registry
        assert registry.get("b").kind == "gauge"
        assert registry.get("zzz") is None
        assert len(registry) == 2

    def test_reset_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.reset()
        assert registry.value("a") == 0
        assert registry.get("h").count == 0
        assert len(registry) == 2


class TestJsonExport:
    def test_as_dict_is_json_serializable_and_grouped(self):
        registry = MetricsRegistry()
        registry.counter("neat.phase3.elb_pruned").inc(42)
        registry.gauge("neat.phase2.min_card_used").set(5)
        registry.histogram("service.submit_latency_seconds").observe(0.02)
        document = registry.as_dict()
        round_tripped = json.loads(json.dumps(document))
        assert round_tripped["counters"]["neat.phase3.elb_pruned"] == 42
        assert round_tripped["gauges"]["neat.phase2.min_card_used"] == 5
        histogram = round_tripped["histograms"]["service.submit_latency_seconds"]
        assert histogram["count"] == 1
        assert histogram["buckets"]["+Inf"] == 1


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("neat.phase3.elb_pruned", "ELB-pruned pairs").inc(42)
        registry.gauge("neat.phase2.min_card_used").set(5)
        text = registry.to_prometheus()
        assert "# HELP neat_phase3_elb_pruned ELB-pruned pairs" in text
        assert "# TYPE neat_phase3_elb_pruned counter" in text
        assert "neat_phase3_elb_pruned 42" in text
        assert "# TYPE neat_phase2_min_card_used gauge" in text
        assert "neat_phase2_min_card_used 5" in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.25, 1.0))
        histogram.observe(0.125)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.to_prometheus()
        assert 'lat_bucket{le="0.25"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5.625" in text
        assert "lat_count 3" in text

    def test_empty_registry(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_name_sanitization(self):
        assert prometheus_name("neat.phase3.sp_computations") == (
            "neat_phase3_sp_computations"
        )
        assert prometheus_name("9lives").startswith("_")


class TestHistogramQuantile:
    def test_empty_histogram_returns_zero(self):
        assert Histogram("h").quantile(0.99) == 0.0

    def test_rejects_out_of_range_q(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)

    def test_single_bucket_interpolates_from_zero(self):
        histogram = Histogram("h", buckets=(10.0,))
        for _ in range(4):
            histogram.observe(5.0)
        # All mass in (0, 10]: median interpolates to the bucket midpoint.
        assert histogram.quantile(0.5) == pytest.approx(5.0)
        assert histogram.quantile(1.0) == pytest.approx(10.0)

    def test_interpolation_between_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            histogram.observe(value)
        # Rank 2 of 4 falls at the top of the (1, 2] bucket's first half.
        assert histogram.quantile(0.5) == pytest.approx(1.5)
        assert histogram.quantile(0.25) == pytest.approx(1.0)

    def test_inf_tail_returns_highest_finite_bound(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(100.0)  # beyond every finite bucket
        assert histogram.quantile(0.99) == pytest.approx(2.0)

    def test_all_observations_in_inf_tail(self):
        histogram = Histogram("h", buckets=(0.001,))
        histogram.observe(50.0)
        assert histogram.quantile(0.5) == pytest.approx(0.001)

    def test_quantile_from_cumulative_zero_count(self):
        assert quantile_from_cumulative([(1.0, 0), (float("inf"), 0)], 0, 0.9) == 0.0


class TestRegistryThreadSafety:
    def test_concurrent_get_or_create_yields_one_instrument(self):
        registry = MetricsRegistry()
        instruments = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            for index in range(50):
                instruments.append(registry.counter(f"shared.{index % 5}"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(registry) == 5
        for index in range(5):
            name = f"shared.{index}"
            matching = {id(i) for i in instruments if i.name == name}
            assert len(matching) == 1

    def test_scrape_races_registration(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def register():
            for index in range(2000):
                registry.counter(f"race.{index % 64}").inc()

        def scrape():
            try:
                while not stop.is_set():
                    text = registry.to_prometheus()
                    assert isinstance(text, str)
                    registry.as_dict()
                    list(registry)
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        workers = [
            threading.Thread(target=register, daemon=True) for _ in range(3)
        ]
        scraper = threading.Thread(target=scrape, daemon=True)
        try:
            for thread in (*workers, scraper):
                thread.start()
            for thread in workers:
                thread.join(timeout=30.0)
        finally:
            stop.set()
        scraper.join(timeout=30.0)
        assert errors == []
        assert len(registry) == 64


class TestPrometheusEdgeCases:
    def test_sanitization_collision_emits_both_series(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc(1)
        registry.counter("a_b").inc(2)
        text = registry.to_prometheus()
        assert text.count("# TYPE a_b counter") == 2
        assert "a_b 1" in text
        assert "a_b 2" in text

    def test_digit_leading_name_gets_prefixed(self):
        assert prometheus_name("404.responses") == "_404_responses"
        registry = MetricsRegistry()
        registry.counter("404.responses").inc()
        assert "_404_responses 1" in registry.to_prometheus()

    def test_help_newlines_and_backslashes_escaped(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"
        registry = MetricsRegistry()
        registry.counter("c", "first line\nsecond \\ slash").inc()
        text = registry.to_prometheus()
        (help_line,) = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert help_line == "# HELP c first line\\nsecond \\\\ slash"

    def test_empty_registry_is_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_every_line_parses_as_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("svc.requests", "Requests").inc(3)
        registry.gauge("svc.pending", "Pending").set(1.5)
        registry.histogram("svc.latency", "Latency", buckets=(0.1, 1.0)).observe(0.05)
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? -?[0-9.einf+]+$"
        )
        for line in registry.to_prometheus().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                assert sample.match(line), line
