"""Tiered distance oracle: grouped multi-source kernels vs per-pair Dijkstra.

One measurement, one artifact (``output/BENCH_distance_oracle.json``):
the same paper-scale Phase 3 workload is clustered three times —

* ``pairwise`` — the legacy oracle: one (bidirectional) Dijkstra per
  surviving endpoint pair, answered lazily during DBSCAN region queries.
* ``tiered`` — the default oracle: surviving endpoint pairs are grouped
  by shared endpoint and answered by eps-bounded multi-target searches
  (one Dijkstra per *group*, early-exiting once its targets settle).
* ``tiered_llb`` — the tiered oracle plus the landmark (ALT) lower-bound
  prune between the Euclidean bound and the exact Hausdorff distance.

All three must produce byte-identical cluster output (compared through
the canonical ``result_to_dict`` JSON serialization), and the tiered run
must be counter-deterministic across repeats.  The artifact records the
executed-search and settled-node reductions (acceptance: both >= 2x) and
the ELB-only vs ELB+LLB pruning rates for the Figure 7 discussion.

Scale knob: ``REPRO_BENCH_ORACLE_OBJECTS`` (dataset size, default 300).
Run standalone with ``python benchmarks/bench_distance_oracle.py
[--smoke]`` (smoke mode shrinks the workload so CI finishes in seconds;
the >= 2x assertions only apply at full scale).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"
ARTIFACT = OUTPUT_DIR / "BENCH_distance_oracle.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import NEATConfig  # noqa: E402
from repro.core.pipeline import NEAT  # noqa: E402
from repro.core.serialize import result_to_dict  # noqa: E402
from repro.experiments.figures import DEFAULT_EPS  # noqa: E402
from repro.experiments.harness import export_metrics, format_table  # noqa: E402
from repro.experiments.workloads import (  # noqa: E402
    WorkloadSpec,
    build_dataset,
    build_network,
)


def _object_count() -> int:
    return int(os.environ.get("REPRO_BENCH_ORACLE_OBJECTS", "300"))


def _cluster_digest(result) -> str:
    """Stable byte-level fingerprint of the final clustering."""
    document = result_to_dict(result)
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _run_variant(network, dataset, config: NEATConfig) -> dict:
    neat = NEAT(network, config)
    result = neat.run_opt(dataset)
    stats = result.refinement_stats
    pair_checks = stats.pair_checks or 1
    return {
        "clusters": len(result.clusters),
        "digest": _cluster_digest(result),
        "sp_computations": neat.engine.computations,
        "grouped_searches": neat.engine.grouped_searches,
        "nodes_expanded": neat.engine.nodes_expanded,
        "cache_hits": neat.engine.cache_hits,
        "pair_checks": stats.pair_checks,
        "elb_pruned": stats.elb_pruned,
        "llb_evaluations": stats.llb_evaluations,
        "llb_pruned": stats.llb_pruned,
        "hausdorff_evaluations": stats.hausdorff_evaluations,
        "elb_prune_rate": round(stats.elb_pruned / pair_checks, 4),
        "combined_prune_rate": round(
            (stats.elb_pruned + stats.llb_pruned) / pair_checks, 4
        ),
        "phase3_s": round(result.timings.refine, 4),
    }


def run_oracle_comparison(
    region: str = "SJ",
    objects: int | None = None,
    network_scale: float | None = None,
) -> dict:
    """Cluster one workload through all three oracle configurations.

    ``min_card=0`` keeps every flow so the pairwise distance matrix is
    large enough for grouping to matter (mirrors ``bench_sp_core``).
    """
    network = build_network(region, network_scale)
    dataset = build_dataset(
        network,
        WorkloadSpec(
            region,
            objects if objects is not None else _object_count(),
            network_scale=network_scale,
        ),
    )
    eps = 2.0 * DEFAULT_EPS.get(region, 800.0)

    variants = {
        "pairwise": NEATConfig(eps=eps, min_card=0, sp_oracle="pairwise"),
        "tiered": NEATConfig(eps=eps, min_card=0, sp_oracle="tiered"),
        "tiered_llb": NEATConfig(
            eps=eps, min_card=0, sp_oracle="tiered", use_llb=True
        ),
    }
    rows = {name: _run_variant(network, dataset, config)
            for name, config in variants.items()}

    # Correctness gate: the oracle tiers are pure accelerations — every
    # variant must emit the byte-identical clustering document.
    digests = {row["digest"] for row in rows.values()}
    assert len(digests) == 1, f"oracle variants disagree on clusters: {rows}"

    # Determinism gate: a repeated tiered run reproduces every counter
    # (wall clock is the one field allowed to wobble).
    repeat = _run_variant(network, dataset, variants["tiered"])
    counters = lambda row: {k: v for k, v in row.items() if k != "phase3_s"}  # noqa: E731
    assert counters(repeat) == counters(rows["tiered"]), (
        f"tiered oracle is not deterministic: {repeat} != {rows['tiered']}"
    )

    pairwise, tiered = rows["pairwise"], rows["tiered"]
    return {
        "network": region,
        "objects": len(dataset),
        "eps": eps,
        "pairwise": pairwise,
        "tiered": tiered,
        "tiered_llb": rows["tiered_llb"],
        "search_reduction": round(
            pairwise["sp_computations"] / max(1, tiered["sp_computations"]), 2
        ),
        "expansion_reduction": round(
            pairwise["nodes_expanded"] / max(1, tiered["nodes_expanded"]), 2
        ),
        "identical_clusters": True,
        "deterministic_counters": True,
    }


def render_oracle_comparison(report: dict) -> str:
    rows = []
    for name in ("pairwise", "tiered", "tiered_llb"):
        row = report[name]
        rows.append(
            (
                name,
                row["sp_computations"],
                row["nodes_expanded"],
                row["elb_prune_rate"],
                row["combined_prune_rate"],
                row["phase3_s"],
            )
        )
    return "\n".join(
        [
            "Distance oracle tiers: one Phase 3 workload, three oracles "
            f"({report['network']}, {report['objects']} objects, "
            f"eps={report['eps']})",
            format_table(
                (
                    "oracle",
                    "searches",
                    "settled nodes",
                    "ELB prune",
                    "ELB+LLB prune",
                    "phase3 s",
                ),
                rows,
            ),
            f"search reduction: {report['search_reduction']}x, "
            f"settled-node reduction: {report['expansion_reduction']}x "
            "(identical clusters, deterministic counters)",
        ]
    )


def bench_distance_oracle(emit):
    """Pytest entry point: run the comparison, write the artifact."""
    report = run_oracle_comparison()
    export_metrics(report, ARTIFACT)
    emit("distance_oracle", render_oracle_comparison(report))
    assert report["search_reduction"] >= 2.0
    assert report["expansion_reduction"] >= 2.0


def main(argv: list[str] | None = None) -> int:
    """Standalone runner (CI smoke mode shrinks the workload)."""
    import argparse

    from repro.tune.profiles import add_profile_argument, resolve_profile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload: checks the harness runs, not the reductions",
    )
    add_profile_argument(parser)
    options = parser.parse_args(argv)

    if options.profile:
        spec = resolve_profile(options.profile).bench_spec(smoke=options.smoke)
        report = run_oracle_comparison(
            region=spec.region,
            objects=spec.object_count,
            network_scale=spec.network_scale,
        )
    elif options.smoke:
        report = run_oracle_comparison(region="ATL", objects=40)
    else:
        report = run_oracle_comparison()
        assert report["search_reduction"] >= 2.0
        assert report["expansion_reduction"] >= 2.0
    export_metrics(report, ARTIFACT)
    print(render_oracle_comparison(report))
    print(f"\nwrote {ARTIFACT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
