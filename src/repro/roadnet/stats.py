"""Road-network statistics (the columns of Table I in the paper).

Table I reports, per network: total length, number of segments, number of
junctions, average segment length, and the average/maximum junction degree.
:func:`network_stats` computes the same summary for any
:class:`~repro.roadnet.network.RoadNetwork` so Table I can be regenerated
for the synthetic networks this reproduction uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from .network import RoadNetwork


@dataclass(frozen=True, slots=True)
class NetworkStats:
    """Summary statistics of a road network (Table I schema).

    Attributes:
        name: Network name.
        total_length_km: Sum of segment lengths in kilometres.
        segment_count: Number of road segments.
        junction_count: Number of junction nodes.
        avg_segment_length_m: Mean segment length in metres.
        avg_degree: Mean junction degree.
        max_degree: Maximum junction degree.
    """

    name: str
    total_length_km: float
    segment_count: int
    junction_count: int
    avg_segment_length_m: float
    avg_degree: float
    max_degree: int

    def as_row(self) -> tuple[str, str, str, str, str, str]:
        """Formatted strings matching Table I's column layout."""
        return (
            self.name,
            f"{self.total_length_km:.1f}km",
            str(self.segment_count),
            str(self.junction_count),
            f"{self.avg_segment_length_m:.1f}m",
            f"avg: {self.avg_degree:.1f}, max: {self.max_degree}",
        )


def network_stats(network: RoadNetwork) -> NetworkStats:
    """Compute Table I statistics for ``network``."""
    segment_count = network.segment_count
    junction_count = network.junction_count
    total_length = network.total_length()
    degrees = [network.degree(node_id) for node_id in network.node_ids()]
    return NetworkStats(
        name=network.name,
        total_length_km=total_length / 1000.0,
        segment_count=segment_count,
        junction_count=junction_count,
        avg_segment_length_m=(total_length / segment_count) if segment_count else 0.0,
        avg_degree=(sum(degrees) / junction_count) if junction_count else 0.0,
        max_degree=max(degrees, default=0),
    )


TABLE1_HEADER = (
    "Regions", "Total length", "# Segments", "# Junctions",
    "Avg. segment length", "Junction degree",
)


def format_table1(stats_rows: list[NetworkStats]) -> str:
    """Render a list of stats as a Table-I-style fixed-width text table."""
    rows = [TABLE1_HEADER] + [stats.as_row() for stats in stats_rows]
    widths = [max(len(row[i]) for row in rows) for i in range(len(TABLE1_HEADER))]
    lines = []
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
