"""The batch journal: an append-only WAL of ingested trajectory batches.

Each committed batch is appended as one checksummed frame
(:func:`~repro.persist.store.encode_frame`) and fsynced before the
ingest acknowledges, so the durable history is always a *prefix* of the
acknowledged history.  Replay (:meth:`BatchJournal.replay`) tolerates a
torn tail — the half-written frame a crash mid-append leaves behind is
dropped, counted and truncated by :meth:`repair` — while a checksum
failure on a *complete* record raises
:class:`~repro.errors.CorruptSnapshot` (a bit flip must never silently
erase the records behind it).

The journal knows nothing about trajectories; payload codecs live in
:mod:`repro.persist.checkpoint`.  The ``journal.mid_append`` fault point
fires *between* the two halves of a record write, which is how the
recovery gauntlet manufactures genuinely torn records.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING

from ..obs import get_logger
from .store import FrameScan, atomic_write, encode_frame, scan_frames

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry
    from ..resilience import FaultInjector

_log = get_logger("persist.journal")


def _noop() -> None:
    return None


class BatchJournal:
    """Append-only checksummed record log with truncation-tolerant replay.

    Args:
        path: The journal file (created on first append).
        fsync: Whether appends are fsynced before returning.
        faults: Optional injector for the ``journal.mid_append`` and
            ``journal.read`` fault points.
        metrics: Optional registry receiving the ``persist.journal_*``
            counters.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: bool = True,
        faults: "FaultInjector | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.faults = faults
        self.metrics = metrics

    # ------------------------------------------------------------------
    def append(self, payload: bytes) -> None:
        """Durably append one record; the batch is committed when this returns.

        The frame is written in two halves with the ``journal.mid_append``
        fault point between them: an armed plan raising there leaves a
        torn record on disk, exactly what a kill -9 mid-``write`` does.
        """
        frame = encode_frame(payload)
        split = len(frame) // 2
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            handle.write(frame[:split])
            if self.faults is not None:
                handle.flush()
                self.faults.run("journal.mid_append", _noop)
            handle.write(frame[split:])
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        if self.metrics is not None:
            self.metrics.inc(
                "persist.journal_appends",
                description="Batch records durably appended to the journal",
            )

    # ------------------------------------------------------------------
    def replay(self) -> FrameScan:
        """Scan every record, dropping (and counting) a torn tail.

        Raises:
            CorruptSnapshot: A complete record failed its checksum.
        """
        if not self.path.exists():
            return FrameScan()
        if self.faults is not None:
            data = self.faults.run("journal.read", self.path.read_bytes)
        else:
            data = self.path.read_bytes()
        scan = scan_frames(data, source=self.path)
        if self.metrics is not None:
            self.metrics.inc(
                "persist.journal_replays",
                description="Journal replay scans performed",
            )
            if scan.torn:
                self.metrics.inc(
                    "persist.journal_torn_tails",
                    description="Torn journal tails dropped during replay",
                )
        if scan.torn:
            _log.warning(
                "journal has a torn tail",
                good_bytes=scan.good_bytes, records=len(scan.payloads),
            )
        return scan

    def repair(self) -> int:
        """Truncate a torn tail so future appends start on a frame boundary.

        Returns the number of bytes removed (0 for a clean journal).
        """
        if not self.path.exists():
            return 0
        data = self.path.read_bytes()
        scan = scan_frames(data, source=self.path)
        removed = len(data) - scan.good_bytes
        if removed:
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.good_bytes)
                if self.fsync:
                    os.fsync(handle.fileno())
            _log.info(
                "journal repaired", removed_bytes=removed,
                records=len(scan.payloads),
            )
        return removed

    def rewrite(self, payloads: list[bytes]) -> None:
        """Atomically replace the journal's contents (compaction).

        Used after a checkpoint to drop records already covered by every
        retained snapshot generation; the rewrite goes through the same
        temp + fsync + rename path as snapshots, so a crash mid-compaction
        leaves the previous journal intact.
        """
        data = b"".join(encode_frame(payload) for payload in payloads)
        atomic_write(
            self.path, data, fsync=self.fsync,
            faults=self.faults, fault_point="journal.pre_rewrite",
        )
        if self.metrics is not None:
            self.metrics.inc(
                "persist.journal_compactions",
                description="Journal compactions after a checkpoint",
            )
