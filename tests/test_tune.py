"""Tests for the auto-tuning harness (``repro.tune``).

Covers the four pillars the tuning CI job stands on: deterministic
dataset passports, deterministic grid expansion and loading (including
the stdlib YAML-subset fallback), objective scoring with guardrails and
earliest-index tie-breaking, and the best_config round-trip — a winning
configuration must rebuild through :class:`NEATConfig` and replay its
clusters byte-identically.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.core.config import NEATConfig
from repro.errors import ConfigError
from repro.experiments.workloads import WorkloadSpec
from repro.tune.grid import (
    REGION_BASE_EPS,
    _parse_minimal_yaml,
    expand_grid,
    load_grid,
    overlay_config,
    pick_best,
    score_rows,
    validate_grid,
)
from repro.tune.passport import (
    SUMMARY_COLUMNS,
    build_passport,
    distribution,
    passports_artifact,
    summary_csv,
    write_passport,
)
from repro.tune.profiles import PROFILES, add_profile_argument, resolve_profile
from repro.tune.sweep import (
    BEST_CONFIG_SCHEMA,
    best_config_to_neat,
    reproduce_best_config,
    sweep_workload,
)

REPO = Path(__file__).resolve().parent.parent

#: One tiny fixture workload shared by the passport and sweep tests —
#: small enough that a full grid sweep over it stays in the millisecond
#: range, rich enough to produce flows and clusters.
FIXTURE_SPEC = WorkloadSpec("ATL", 10, network_scale=0.05)

TINY_GRID = {
    "base": {"min_card": 0, "min_pts": 1},
    "grid": {
        "eps_scale": [0.5, 1.0],
        "use_llb": [False, True],
    },
    "objective": {
        "minimize": "total_s",
        "guardrails": {"min_clusters": 1, "min_flows": 1},
    },
}


class TestProfiles:
    def test_ladder_names(self):
        assert sorted(PROFILES) == ["medium", "small", "stress"]
        for name, profile in PROFILES.items():
            assert profile.name == name
            assert profile.specs

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown profile"):
            resolve_profile("gigantic")

    def test_smoke_resolution(self):
        stress = resolve_profile("stress")
        assert stress.resolved_specs(smoke=False) == stress.specs
        assert stress.resolved_specs(smoke=True) == stress.smoke_specs
        assert stress.bench_spec(smoke=True).object_count == 150
        # Profiles without smoke stand-ins are their own smoke rung.
        small = resolve_profile("small")
        assert small.resolved_specs(smoke=True) == small.specs

    def test_shared_flag(self):
        import argparse

        parser = argparse.ArgumentParser()
        add_profile_argument(parser, default="small")
        assert parser.parse_args([]).profile == "small"
        assert parser.parse_args(["--profile", "stress"]).profile == "stress"
        with pytest.raises(SystemExit):
            parser.parse_args(["--profile", "gigantic"])


class TestPassport:
    @pytest.fixture(scope="class")
    def passport(self):
        return build_passport(FIXTURE_SPEC, profile="small")

    def test_deterministic(self, passport):
        # Byte-stable: a rebuild of the same spec is the same document.
        again = build_passport(FIXTURE_SPEC, profile="small")
        assert json.dumps(passport, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_internally_consistent(self, passport):
        dataset = passport["dataset"]
        network = passport["network"]
        assert dataset["trajectories"] == FIXTURE_SPEC.object_count
        per_trajectory = dataset["points_per_trajectory"]
        assert per_trajectory["count"] == dataset["trajectories"]
        assert dataset["total_points"] == pytest.approx(
            per_trajectory["mean"] * dataset["trajectories"]
        )
        density = dataset["density"]
        assert 0 < density["visited_segments"] <= network["segments"]
        assert density["segment_coverage"] == round(
            density["visited_segments"] / network["segments"], 6
        )
        sf = dataset["sf_components"]
        # Flow q counts distinct trajectories per segment — bounded by
        # the dataset size; density k counts points per segment.
        assert sf["flow_q"]["max"] <= dataset["trajectories"]
        assert sf["density_k"]["count"] == density["visited_segments"]
        assert sf["speed_v"]["min"] > 0

    def test_distribution_is_nearest_rank(self):
        sample = [5.0, 1.0, 3.0, 2.0, 4.0]
        stats = distribution(sample)
        assert stats == {
            "count": 5, "min": 1.0, "max": 5.0,
            "mean": 3.0, "median": 3.0,
            "p90": 4.0,  # int(0.9 * 4) == 3 -> sorted[3]
        }
        assert distribution([])["count"] == 0

    def test_write_and_summary(self, passport, tmp_path):
        path = write_passport(passport, tmp_path / "p.json")
        assert json.loads(path.read_text()) == passport
        csv_text = summary_csv([passport])
        lines = csv_text.strip().splitlines()
        assert lines[0] == ",".join(SUMMARY_COLUMNS)
        assert len(lines) == 2
        assert lines[1].startswith(f"{passport['dataset']['name']},ATL,")

    def test_artifact_totals(self, passport):
        artifact = passports_artifact([passport, passport], "small")
        assert artifact["datasets_count"] == 2
        assert artifact["total_points"] == 2 * passport["dataset"]["total_points"]
        assert passport["dataset"]["name"] in artifact["datasets"]


class TestGridLoading:
    def test_fallback_parser_matches_pyyaml_on_committed_grid(self):
        yaml = pytest.importorskip("yaml")
        text = (REPO / "tune_grid.yaml").read_text(encoding="utf-8")
        assert _parse_minimal_yaml(text) == yaml.safe_load(text)

    def test_load_committed_grid_validates(self):
        document = validate_grid(load_grid(REPO / "tune_grid.yaml"))
        assert set(document["grid"]) == {"weights", "eps_scale", "use_llb"}
        assert document["objective"]["minimize"] == "total_s"

    def test_minimal_parser_subset(self):
        parsed = _parse_minimal_yaml(
            "base:\n"
            "  min_card: 0\n"
            "  label: 'x'\n"
            "grid:\n"
            "  eps_scale: [0.5, 1.0]   # inline list\n"
            "  flags:\n"
            "    - true\n"
            "    - false\n"
        )
        assert parsed == {
            "base": {"min_card": 0, "label": "x"},
            "grid": {"eps_scale": [0.5, 1.0], "flags": [True, False]},
        }

    def test_validate_rejects_bad_shapes(self):
        with pytest.raises(ConfigError):
            validate_grid(["not", "a", "mapping"])
        with pytest.raises(ConfigError, match="'grid'"):
            validate_grid({"grid": {}})
        with pytest.raises(ConfigError, match="non-empty list"):
            validate_grid({"grid": {"eps_scale": []}})
        with pytest.raises(ConfigError, match="guardrail"):
            validate_grid({
                "grid": {"eps_scale": [1.0]},
                "objective": {"guardrails": {"clusters": 1}},
            })


class TestGridExpansion:
    def test_deterministic_order(self):
        # Axes sorted by name; the last (alphabetically) axis is fastest.
        overlays = expand_grid({"b": [1, 2], "a": [10, 20]})
        assert overlays == [
            {"a": 10, "b": 1},
            {"a": 10, "b": 2},
            {"a": 20, "b": 1},
            {"a": 20, "b": 2},
        ]

    def test_overlay_resolves_conveniences(self):
        config = overlay_config(
            {"min_card": 0},
            {"weights": [0.5, 0.5, 0.0], "eps_scale": 2.0},
            "MIA",
        )
        assert (config.wq, config.wk, config.wv) == (0.5, 0.5, 0.0)
        assert config.eps == 2.0 * REGION_BASE_EPS["MIA"]
        assert config.min_card == 0

    def test_explicit_eps_beats_region_default(self):
        config = overlay_config({"eps": 100.0}, {"eps_scale": 3.0}, "ATL")
        assert config.eps == 300.0

    def test_bad_weights_raise(self):
        with pytest.raises(ConfigError, match="triple"):
            overlay_config({}, {"weights": [0.5, 0.5]}, "ATL")

    def test_unknown_field_raises(self):
        with pytest.raises(ConfigError, match="unknown config fields"):
            overlay_config({}, {"epsilon": 800.0}, "ATL")


class TestScoring:
    ROWS = [
        {"total_s": 2.0, "clusters": 5},
        {"total_s": 1.0, "clusters": 0},   # fails min_clusters
        {"total_s": 1.5, "clusters": 3},
        {"total_s": 1.5, "clusters": 4},   # ties with index 2
    ]
    OBJECTIVE = {"minimize": "total_s", "guardrails": {"min_clusters": 1}}

    def test_guardrails_disqualify(self):
        scored = score_rows(self.ROWS, self.OBJECTIVE)
        assert [row["qualified"] for row in scored] == [
            True, False, True, True,
        ]
        assert scored[1]["guardrail_failures"] == ["min_clusters: 0 < 1"]
        # Disqualified rows keep their score for the results doc.
        assert scored[1]["score"] == 1.0

    def test_ties_elect_earliest_index(self):
        scored = score_rows(self.ROWS, self.OBJECTIVE)
        assert pick_best(scored) == 2

    def test_none_when_nothing_qualifies(self):
        scored = score_rows(
            self.ROWS, {"minimize": "total_s",
                        "guardrails": {"min_clusters": 99}},
        )
        assert pick_best(scored) is None

    def test_missing_objective_field_raises(self):
        with pytest.raises(ConfigError, match="objective field"):
            score_rows([{"clusters": 1}], {"minimize": "total_s"})


class TestConfigRoundTrip:
    def test_round_trip_defaults(self):
        config = NEATConfig()
        assert NEATConfig.from_dict(config.to_dict()) == config

    def test_infinity_encodes_as_string(self):
        document = NEATConfig().to_dict()
        assert document["beta"] == "inf"   # JSON-portable
        assert math.isinf(NEATConfig.from_dict(document).beta)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError, match="unknown config fields"):
            NEATConfig.from_dict({"nope": 1})


class TestSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return sweep_workload(FIXTURE_SPEC, TINY_GRID, "small")

    def test_report_shape(self, report):
        assert report["grid_configs"] == 4
        assert len(report["rows"]) == 4
        assert report["best_index"] is not None
        # Grid order: eps_scale before use_llb, use_llb fastest.
        assert [row["axis.eps_scale"] for row in report["rows"]] == [
            0.5, 0.5, 1.0, 1.0,
        ]
        assert [row["axis.use_llb"] for row in report["rows"]] == [
            False, True, False, True,
        ]

    def test_llb_never_changes_clusters(self, report):
        # The LLB axis is a pure acceleration: rows that differ only in
        # use_llb must carry identical digests.
        digests = [row["digest"] for row in report["rows"]]
        assert digests[0] == digests[1]
        assert digests[2] == digests[3]

    def test_best_config_reproduces_byte_identically(self, report):
        best = report["best_config"]
        assert best["schema"] == BEST_CONFIG_SCHEMA
        matches, fresh = reproduce_best_config(best)
        assert matches and fresh == best["digest"]

    def test_best_config_round_trips_through_neatconfig(self, report):
        best = report["best_config"]
        config = best_config_to_neat(best)
        assert config == NEATConfig.from_dict(best["config"])
        # A bare config mapping (repro cluster --config) works too.
        assert best_config_to_neat(best["config"]) == config


class TestCommittedArtifacts:
    @pytest.mark.parametrize("region", ["ATL", "SJ", "MIA"])
    def test_committed_best_configs_parse(self, region):
        path = REPO / "benchmarks" / "tuning" / "best_config" / f"{region}.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["schema"] == BEST_CONFIG_SCHEMA
        assert document["region"] == region
        config = best_config_to_neat(document)
        assert isinstance(config, NEATConfig)
        assert len(document["digest"]) == 64

    def test_committed_grid_expands(self):
        document = validate_grid(load_grid(REPO / "tune_grid.yaml"))
        overlays = expand_grid(document["grid"])
        assert len(overlays) == 18  # 3 weights x 3 eps_scale x 2 use_llb
