"""Unit tests for the NEAT pipeline (base/flow/opt variants)."""

from __future__ import annotations

import pytest

from repro.core.config import NEATConfig
from repro.core.model import TrajectoryDataset
from repro.core.pipeline import MODES, NEAT

from conftest import trajectory_through


class TestModes:
    def test_invalid_mode_rejected(self, line3):
        with pytest.raises(ValueError):
            NEAT(line3).run([], mode="turbo")

    def test_base_mode_stops_after_phase1(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(3)]
        result = NEAT(line3).run_base(trs)
        assert result.mode == "base"
        assert result.base_clusters
        assert result.flows == []
        assert result.clusters == []
        assert result.timings.base > 0.0
        assert result.timings.flow == 0.0

    def test_flow_mode_stops_after_phase2(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(3)]
        result = NEAT(line3, NEATConfig(min_card=0)).run_flow(trs)
        assert result.mode == "flow"
        assert result.flows
        assert result.clusters == []

    def test_opt_mode_runs_all_phases(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(3)]
        result = NEAT(line3, NEATConfig(min_card=0, eps=500.0)).run_opt(trs)
        assert result.mode == "opt"
        assert result.clusters
        assert result.timings.refine > 0.0

    def test_modes_constant(self):
        assert MODES == ("base", "flow", "opt")


class TestInputs:
    def test_accepts_dataset(self, line3):
        trs = tuple(trajectory_through(line3, i, [0, 1]) for i in range(2))
        dataset = TrajectoryDataset("d", trs)
        result = NEAT(line3, NEATConfig(min_card=0)).run_flow(dataset)
        assert result.flows

    def test_accepts_generator(self, line3):
        result = NEAT(line3, NEATConfig(min_card=0)).run_flow(
            trajectory_through(line3, i, [0, 1]) for i in range(2)
        )
        assert result.flows

    def test_empty_input(self, line3):
        result = NEAT(line3, NEATConfig(min_card=0)).run_opt([])
        assert result.base_clusters == []
        assert result.flows == []
        assert result.clusters == []


class TestResult:
    def test_summary_mentions_counts(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(3)]
        result = NEAT(line3, NEATConfig(min_card=0, eps=500.0)).run_opt(trs)
        summary = result.summary()
        assert "NEAT[opt]" in summary
        assert "flows=" in summary

    def test_counts(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(3)]
        result = NEAT(line3, NEATConfig(min_card=0, eps=500.0)).run_opt(trs)
        assert result.flow_count == len(result.flows)
        assert result.cluster_count == len(result.clusters)

    def test_total_timing_sums_phases(self, line3):
        trs = [trajectory_through(line3, i, [0, 1]) for i in range(3)]
        result = NEAT(line3, NEATConfig(min_card=0, eps=500.0)).run_opt(trs)
        timings = result.timings
        assert timings.total == pytest.approx(
            timings.base + timings.flow + timings.refine
        )


class TestEndToEnd:
    def test_on_simulated_workload(self, small_workload):
        network, dataset = small_workload
        result = NEAT(network, NEATConfig(eps=500.0)).run_opt(dataset)
        assert result.base_clusters
        assert result.flows or result.noise_flows
        # Phase 1 invariant: every fragment sits in exactly one base cluster.
        total_fragments = sum(c.density for c in result.base_clusters)
        flow_fragments = sum(f.density for f in result.flows) + sum(
            f.density for f in result.noise_flows
        )
        assert total_fragments == flow_fragments

    def test_engine_shared_across_runs(self, small_workload):
        network, dataset = small_workload
        neat = NEAT(network, NEATConfig(eps=500.0))
        neat.run_opt(dataset)
        first_computations = neat.engine.computations
        neat.run_opt(dataset)
        # Second run reuses memoized distances: no growth.
        assert neat.engine.computations == first_computations

    def test_deterministic(self, small_workload):
        network, dataset = small_workload
        r1 = NEAT(network, NEATConfig(eps=500.0)).run_opt(dataset)
        r2 = NEAT(network, NEATConfig(eps=500.0)).run_opt(dataset)
        assert [f.sids for f in r1.flows] == [f.sids for f in r2.flows]
        assert [
            sorted(tuple(f.sids) for f in c.flows) for c in r1.clusters
        ] == [sorted(tuple(f.sids) for f in c.flows) for c in r2.clusters]
