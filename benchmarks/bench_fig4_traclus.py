"""Figure 4: TraClus on the ATL workload under two parameterizations.

The paper contrasts a tuned TraClus (eps=10 m, MinLns=30 -> 81 clusters)
with a degenerate one (eps=1 m, MinLns=1 -> 460 discrete clusters); both
produce short, discontinuous clusters compared to NEAT's flows.
"""

from __future__ import annotations

from conftest import TRACLUS_COUNTS

from repro.experiments.figures import run_fig4
from repro.experiments.workloads import WorkloadSpec, build_dataset, build_network
from repro.traclus.grouping import TraClusParams
from repro.traclus.traclus import TraClus


def bench_fig4_traclus_tuned(benchmark, emit):
    """Time a tuned TraClus run; report both parameterizations' counts."""
    object_count = TRACLUS_COUNTS[len(TRACLUS_COUNTS) // 2]
    network = build_network("ATL")
    dataset = build_dataset(network, WorkloadSpec("ATL", object_count))
    clusterer = TraClus(TraClusParams(eps=10.0, min_lns=8))
    result = benchmark.pedantic(
        lambda: clusterer.run(dataset), rounds=1, iterations=1
    )
    assert result.segment_count > 0

    fig = run_fig4(object_count=object_count)
    emit("fig4_traclus", fig.render())
