"""Tests for the in-process NEAT service facade."""

from __future__ import annotations

import pytest

from repro.core.config import NEATConfig
from repro.core.serialize import result_from_dict
from repro.distributed.service import NeatService

from conftest import trajectory_through


@pytest.fixture
def service(small_workload):
    network, dataset = small_workload
    return network, list(dataset), NeatService(network, NEATConfig(eps=500.0))


class TestSubmit:
    def test_acknowledgement_fields(self, service):
        _network, trajectories, svc = service
        ack = svc.submit(trajectories[:20])
        assert ack["batch"] == 0
        assert ack["accepted"] == 20
        assert ack["total_flows"] >= ack["new_flows"] >= 0

    def test_batches_accumulate(self, service):
        _network, trajectories, svc = service
        svc.submit(trajectories[:20])
        ack = svc.submit(trajectories[20:40])
        assert ack["batch"] == 1
        stats = svc.stats()
        assert stats.batches_ingested == 2
        assert stats.trajectories_ingested == 40

    def test_clients_need_not_coordinate_ids(self, service):
        # Two clients both submit trajectories ids 0..19: the service
        # re-ids internally, no collision.
        _network, trajectories, svc = service
        svc.submit(trajectories[:20])
        svc.submit(trajectories[:20])  # same ids again
        assert svc.stats().trajectories_ingested == 40


class TestQueries:
    def test_clustering_document_round_trips(self, service):
        network, trajectories, svc = service
        svc.submit(trajectories[:30])
        document = svc.get_clustering()
        assert document["format"] == "repro-clustering"
        restored = result_from_dict(document, network)
        assert len(restored.flows) == svc.stats().flow_count

    def test_document_is_validated(self, service):
        _network, trajectories, svc = service
        svc.submit(trajectories[:30])
        svc.get_clustering()  # raises if invalid; reaching here is the test

    def test_flow_summaries(self, service):
        _network, trajectories, svc = service
        svc.submit(trajectories[:30])
        summaries = svc.get_flow_summaries()
        assert len(summaries) == svc.stats().flow_count
        for summary in summaries:
            assert summary["cardinality"] >= 1
            assert summary["route_length_m"] > 0
            assert len(summary["endpoints"]) == 2

    def test_empty_service_clustering(self, line3):
        svc = NeatService(line3, NEATConfig(min_card=0))
        document = svc.get_clustering()
        assert document["flows"] == []
        assert document["clusters"] == []


class TestEndToEnd:
    def test_streaming_session(self, line3):
        svc = NeatService(line3, NEATConfig(min_card=0, eps=500.0))
        for batch_start in range(0, 9, 3):
            batch = [
                trajectory_through(line3, batch_start + i, [0, 1, 2])
                for i in range(3)
            ]
            svc.submit(batch)
        stats = svc.stats()
        assert stats.batches_ingested == 3
        assert stats.flow_count == 3  # one flow per batch over the corridor
        document = svc.get_clustering()
        # All three flows merge into one cluster (identical routes).
        assert len(document["clusters"]) == 1
