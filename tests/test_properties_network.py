"""Property-based tests over generated road networks and NEAT phases.

Hypothesis drives the *generator parameters* (grid shape, seed, workload
size) and the tests assert structural invariants that must hold for every
generated network/trace/clustering combination — the ELB inequality, the
losslessness of Phase 1 and Phase 2, route well-formedness of flows.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base_cluster import form_base_clusters
from repro.core.config import NEATConfig
from repro.core.flow_formation import form_flow_clusters
from repro.core.fragmentation import fragment_all
from repro.mobisim.simulator import SimulationConfig, simulate_dataset
from repro.roadnet.generators import GridConfig, generate_grid_network
from repro.roadnet.shortest_path import ShortestPathEngine, dijkstra_distance

grid_configs = st.builds(
    GridConfig,
    rows=st.integers(min_value=4, max_value=9),
    cols=st.integers(min_value=4, max_value=9),
    seed=st.integers(min_value=0, max_value=10_000),
)


@st.composite
def workloads(draw):
    config = draw(grid_configs)
    network = generate_grid_network(config)
    object_count = draw(st.integers(min_value=3, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    dataset = simulate_dataset(
        network, SimulationConfig(object_count=object_count, seed=seed)
    )
    return network, dataset


class TestNetworkProperties:
    @given(grid_configs)
    @settings(max_examples=15, deadline=None)
    def test_generated_network_is_connected(self, config):
        network = generate_grid_network(config)
        from repro.roadnet.shortest_path import dijkstra_single_source

        reachable = dijkstra_single_source(network, network.node_ids()[0])
        assert len(reachable) == network.junction_count

    @given(grid_configs, st.data())
    @settings(max_examples=15, deadline=None)
    def test_euclidean_lower_bound_property(self, config, data):
        """The inequality justifying ELB: d_E(a, b) <= d_N(a, b)."""
        network = generate_grid_network(config)
        nodes = network.node_ids()
        a = data.draw(st.sampled_from(nodes))
        b = data.draw(st.sampled_from(nodes))
        euclid = network.node_point(a).distance_to(network.node_point(b))
        net_dist = dijkstra_distance(network, a, b)
        assert euclid <= net_dist + 1e-6

    @given(grid_configs, st.data())
    @settings(max_examples=10, deadline=None)
    def test_network_distance_triangle_inequality(self, config, data):
        network = generate_grid_network(config)
        engine = ShortestPathEngine(network)
        nodes = network.node_ids()
        a, b, c = (data.draw(st.sampled_from(nodes)) for _ in range(3))
        assert engine.distance(a, c) <= (
            engine.distance(a, b) + engine.distance(b, c) + 1e-6
        )


class TestPhaseInvariants:
    @given(workloads())
    @settings(max_examples=10, deadline=None)
    def test_fragments_partition_preserves_trajectories(self, workload):
        network, dataset = workload
        fragments = fragment_all(network, dataset.trajectories)
        # Every trajectory produces at least one fragment and every
        # fragment's sid exists in the network.
        assert {f.trid for f in fragments} == {tr.trid for tr in dataset}
        for fragment in fragments:
            assert network.has_segment(fragment.sid)

    @given(workloads())
    @settings(max_examples=10, deadline=None)
    def test_consecutive_fragments_are_adjacent(self, workload):
        network, dataset = workload
        from repro.core.fragmentation import fragment_trajectory

        for trajectory in dataset:
            fragments = fragment_trajectory(network, trajectory)
            for a, b in zip(fragments, fragments[1:]):
                assert a.sid == b.sid or network.are_adjacent(a.sid, b.sid)

    @given(workloads())
    @settings(max_examples=10, deadline=None)
    def test_phase2_is_lossless_partition_of_base_clusters(self, workload):
        network, dataset = workload
        base = form_base_clusters(network, dataset.trajectories)
        result = form_flow_clusters(network, base, NEATConfig(min_card=0))
        assigned = [sid for flow in result.all_flows for sid in flow.sids]
        assert sorted(assigned) == sorted(c.sid for c in base)
        assert len(assigned) == len(set(assigned))

    @given(workloads())
    @settings(max_examples=10, deadline=None)
    def test_flows_are_routes(self, workload):
        network, dataset = workload
        base = form_base_clusters(network, dataset.trajectories)
        result = form_flow_clusters(network, base, NEATConfig(min_card=0))
        for flow in result.all_flows:
            assert network.is_route(flow.sids) or len(flow.sids) == 1

    @given(workloads())
    @settings(max_examples=8, deadline=None)
    def test_refinement_is_lossless_partition_of_flows(self, workload):
        from repro.core.refinement import refine_flow_clusters

        network, dataset = workload
        base = form_base_clusters(network, dataset.trajectories)
        formation = form_flow_clusters(network, base, NEATConfig(min_card=0))
        clusters = refine_flow_clusters(
            network, formation.flows, NEATConfig(min_card=0, eps=400.0)
        )
        clustered = [id(f) for c in clusters for f in c.flows]
        assert sorted(clustered) == sorted(id(f) for f in formation.flows)

    @given(workloads())
    @settings(max_examples=8, deadline=None)
    def test_elb_never_changes_refinement_result(self, workload):
        from repro.core.refinement import refine_flow_clusters

        network, dataset = workload
        base = form_base_clusters(network, dataset.trajectories)
        formation = form_flow_clusters(network, base, NEATConfig(min_card=0))

        def shapes(use_elb):
            clusters = refine_flow_clusters(
                network,
                formation.flows,
                NEATConfig(min_card=0, eps=350.0, use_elb=use_elb),
            )
            return sorted(
                tuple(sorted(tuple(f.sids) for f in c.flows)) for c in clusters
            )

        assert shapes(True) == shapes(False)


class TestSerializationProperties:
    @given(grid_configs)
    @settings(max_examples=10, deadline=None)
    def test_network_roundtrip(self, config):
        from repro.roadnet.io import network_from_dict, network_to_dict

        network = generate_grid_network(config)
        restored = network_from_dict(network_to_dict(network))
        assert restored.segment_count == network.segment_count
        assert restored.total_length() == network.total_length()

    @given(workloads())
    @settings(max_examples=8, deadline=None)
    def test_dataset_roundtrip(self, workload):
        from repro.mobisim.io import dataset_from_dict, dataset_to_dict

        _network, dataset = workload
        restored = dataset_from_dict(dataset_to_dict(dataset))
        assert restored.total_points == dataset.total_points
        for a, b in zip(restored, dataset):
            assert a == b
