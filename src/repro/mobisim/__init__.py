"""Mobility-trace simulation substrate (GTMobiSIM equivalent).

Generates network-constrained trajectory datasets with hotspot starts,
predefined destinations, shortest-path routes and speed-limit travel —
the trace recipe of Section IV-A of the NEAT paper.
"""

from .agents import RouteWalk, WalkSample
from .dataset import dataset_summary, format_table2
from .demand import DemandProfile, DemandWindow, simulate_demand
from .hotspots import HotspotLayout, choose_layout
from .io import dataset_from_dict, dataset_to_dict, load_dataset, save_dataset
from .noise import GpsFix, RawTrace, degrade_dataset, degrade_trajectory
from .simulator import SimulationConfig, SimulationReport, simulate_dataset
from .trips import TripPlan, TripPlanner

__all__ = [
    "DemandProfile",
    "DemandWindow",
    "GpsFix",
    "HotspotLayout",
    "RawTrace",
    "RouteWalk",
    "SimulationConfig",
    "SimulationReport",
    "TripPlan",
    "TripPlanner",
    "WalkSample",
    "choose_layout",
    "dataset_from_dict",
    "dataset_summary",
    "dataset_to_dict",
    "degrade_dataset",
    "degrade_trajectory",
    "format_table2",
    "load_dataset",
    "save_dataset",
    "simulate_dataset",
    "simulate_demand",
]
