"""TraClus baseline (Lee et al., SIGMOD'07) and its network-aware variant.

The density-based partial trajectory clustering approach the NEAT paper
compares against: MDL partitioning into line segments, DBSCAN-style
grouping under a three-component Euclidean distance, and representative
trajectory extraction.
"""

from .distance import (
    angular_distance,
    parallel_distance,
    perpendicular_distance,
    segment_distance,
)
from .grouping import TraClusParams, group_segments
from .model import LineSegment, SegmentCluster
from .network_variant import (
    NetworkTraClusResult,
    base_cluster_distance,
    network_traclus,
)
from .partition import characteristic_points, partition_all, partition_trajectory
from .representative import average_direction, representative_trajectory
from .traclus import TraClus, TraClusResult

__all__ = [
    "LineSegment",
    "NetworkTraClusResult",
    "SegmentCluster",
    "TraClus",
    "TraClusParams",
    "TraClusResult",
    "angular_distance",
    "average_direction",
    "base_cluster_distance",
    "characteristic_points",
    "group_segments",
    "network_traclus",
    "parallel_distance",
    "partition_all",
    "partition_trajectory",
    "perpendicular_distance",
    "representative_trajectory",
    "segment_distance",
]
