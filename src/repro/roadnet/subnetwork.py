"""Extracting sub-networks (bounding-box crops) from a road network.

Working with a metro-scale map but clustering one district is a common
deployment pattern (the paper's MIA map is 15x its ATL map): crop the
network to the district, then run NEAT there.  The crop preserves node
ids and segment ids so trajectories matched against the full map remain
valid on the crop wherever they stay inside it.
"""

from __future__ import annotations

from ..core.model import Trajectory
from .network import RoadNetwork


def crop_network(
    network: RoadNetwork,
    min_x: float,
    min_y: float,
    max_x: float,
    max_y: float,
    name: str | None = None,
) -> RoadNetwork:
    """The sub-network induced by junctions inside a bounding box.

    A segment survives when *both* of its junctions are inside the box.
    Node and segment ids are preserved.  The result may be disconnected;
    callers who need connectivity can check with
    :func:`~repro.roadnet.shortest_path.dijkstra_single_source`.
    """
    if max_x <= min_x or max_y <= min_y:
        raise ValueError("empty bounding box")
    cropped = RoadNetwork(
        name=name if name is not None else f"{network.name}-crop"
    )
    kept_nodes = set()
    for junction in network.junctions():
        p = junction.point
        if min_x <= p.x <= max_x and min_y <= p.y <= max_y:
            cropped.add_junction(p, node_id=junction.node_id)
            kept_nodes.add(junction.node_id)
    for segment in network.segments():
        if segment.node_u in kept_nodes and segment.node_v in kept_nodes:
            cropped.add_segment(
                segment.node_u,
                segment.node_v,
                length=segment.length,
                speed_limit=segment.speed_limit,
                bidirectional=segment.bidirectional,
                road_class=segment.road_class,
                sid=segment.sid,
            )
    return cropped


def clip_trajectories(
    cropped: RoadNetwork, trajectories, min_points: int = 2
) -> list[Trajectory]:
    """Restrict trajectories to their maximal runs inside a cropped network.

    Each trajectory is cut wherever it leaves the crop (a sample on a
    segment the crop lacks); every surviving run with at least
    ``min_points`` samples becomes its own trajectory.  Run ids are
    ``original_trid * 1000 + run_index`` so provenance stays recoverable.
    """
    clipped: list[Trajectory] = []
    for trajectory in trajectories:
        runs: list[list] = [[]]
        for location in trajectory.locations:
            if cropped.has_segment(location.sid):
                runs[-1].append(location)
            elif runs[-1]:
                runs.append([])
        for index, run in enumerate(r for r in runs if len(r) >= min_points):
            clipped.append(
                Trajectory(trajectory.trid * 1000 + index, tuple(run))
            )
    return clipped
