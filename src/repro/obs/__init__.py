"""repro.obs — the unified telemetry layer.

Three zero-dependency pillars shared by every subsystem:

* :mod:`repro.obs.logging` — structured logging (``key=value`` or
  JSON-lines) over the stdlib, configured once per process;
* :mod:`repro.obs.tracing` — nested wall-clock spans collected into an
  exportable trace tree, with a no-op tracer for disabled runs;
* :mod:`repro.obs.metrics` — named counters, gauges and histograms in a
  thread-safe :class:`MetricsRegistry`, exportable as a JSON dict or
  Prometheus text.

:class:`~repro.obs.telemetry.Telemetry` bundles one tracer and one
registry and is what the NEAT pipeline, the incremental clusterer and the
service thread through their phases.  Instrument names follow the
``subsystem.phaseN.quantity`` convention documented in
``docs/observability.md``.

On top of the pillars sits the **operational plane**:

* :mod:`repro.obs.server` — an HTTP exposition server
  (``/metrics`` ``/health`` ``/statusz`` ``/tracez``);
* :mod:`repro.obs.export` — Chrome trace-event JSON and folded
  flamegraph stacks from the span forest;
* :mod:`repro.obs.profile` — a sampling profiler over
  ``sys._current_frames()`` (off by default);
* :mod:`repro.obs.slo` — windowed latency-SLO evaluation flipping
  ``service.slo_breach`` gauges.
"""

from .export import (
    chrome_trace,
    folded_stacks,
    folded_text,
    save_chrome_trace,
    save_folded,
    trace_events,
)
from .logging import (
    JsonLinesFormatter,
    KeyValueFormatter,
    StructuredLogger,
    configure_logging,
    get_logger,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import SamplingProfiler, phase_from_tracer
from .server import ObservabilityServer
from .slo import SLORule, SLOWatchdog
from .telemetry import Telemetry
from .tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "KeyValueFormatter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObservabilityServer",
    "SLORule",
    "SLOWatchdog",
    "SamplingProfiler",
    "Span",
    "StructuredLogger",
    "Telemetry",
    "Tracer",
    "chrome_trace",
    "configure_logging",
    "folded_stacks",
    "folded_text",
    "get_logger",
    "phase_from_tracer",
    "save_chrome_trace",
    "save_folded",
    "trace_events",
]
