"""Incremental (online) NEAT clustering.

Section III-C of the paper motivates the Phase 3 design with exactly this
deployment: "the first two phases of NEAT can be performed on each newly
arrived set of trajectories.  The new flow clusters are then merged with
the available flow clusters to produce compact clustering results."

:class:`IncrementalNEAT` implements that loop.  Each ``add_batch`` runs
Phases 1-2 on the newly arrived trajectories only, appends the resulting
flows to the retained flow pool, and re-refines the pool with the adapted
DBSCAN — reusing one memoized shortest-path engine across batches, so the
network distances Phase 3 needs are increasingly cache hits (the warm
server behaviour the paper's NEAT service assumes).

Trajectory ids must be unique across batches; the class offsets them
automatically when asked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..obs import Telemetry, get_logger
from ..roadnet.network import RoadNetwork
from ..roadnet.shortest_path import ShortestPathEngine
from .base_cluster import form_base_clusters
from .config import NEATConfig
from .flow_cluster import FlowCluster
from .flow_formation import form_flow_clusters
from .model import Trajectory
from .refinement import RefinementStats, TrajectoryCluster, refine_flow_clusters

_log = get_logger("core.incremental")


@dataclass
class BatchResult:
    """Outcome of one ``add_batch`` call.

    Attributes:
        batch_index: 0-based index of the batch.
        new_flows: Flows formed from this batch alone (post-``minCard``).
        new_noise_flows: This batch's flows filtered by ``minCard``.
        clusters: The refreshed global clustering over all retained flows.
        refinement_stats: Phase 3 instrumentation for this refresh.
    """

    batch_index: int
    new_flows: list[FlowCluster] = field(default_factory=list)
    new_noise_flows: list[FlowCluster] = field(default_factory=list)
    clusters: list[TrajectoryCluster] = field(default_factory=list)
    refinement_stats: RefinementStats = field(default_factory=RefinementStats)


class IncrementalNEAT:
    """Online NEAT over a stream of trajectory batches.

    Args:
        network: The road network.
        config: NEAT parameters.  ``min_card`` applies per batch; the
            Phase 3 ``eps``/``min_pts``/``use_elb`` settings apply to every
            refresh of the global clustering.
        telemetry: Optional :class:`~repro.obs.Telemetry` bundle.  Unlike
            the batch pipeline, the incremental clusterer is long-lived,
            so one bundle accumulates across every ``add_batch`` — its
            ``incremental.*`` counters and latency histogram describe the
            whole stream.  Defaults to a fresh enabled bundle.

    Example:
        >>> from repro.roadnet import line_network
        >>> from repro.core import NEATConfig
        >>> inc = IncrementalNEAT(line_network(3), NEATConfig(min_card=0))
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: NEATConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else NEATConfig()
        self.engine = ShortestPathEngine(network, directed=False)
        self.telemetry = telemetry if telemetry is not None else Telemetry.create()
        if self.telemetry.enabled:
            self.engine.bind_metrics(self.telemetry.metrics)
        self._flows: list[FlowCluster] = []
        self._noise_flows: list[FlowCluster] = []
        self._clusters: list[TrajectoryCluster] = []
        self._batches = 0
        self._seen_trids: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def flows(self) -> list[FlowCluster]:
        """All retained flows across batches, in arrival order."""
        return list(self._flows)

    @property
    def noise_flows(self) -> list[FlowCluster]:
        """Sub-``minCard`` flows across batches, in arrival order."""
        return list(self._noise_flows)

    @property
    def clusters(self) -> list[TrajectoryCluster]:
        """The current global clustering."""
        return list(self._clusters)

    @property
    def batch_count(self) -> int:
        """Number of batches ingested."""
        return self._batches

    # ------------------------------------------------------------------
    def add_batch(
        self,
        trajectories: Sequence[Trajectory],
        auto_offset_ids: bool = False,
    ) -> BatchResult:
        """Ingest a batch, update the global clustering, return the delta.

        Args:
            trajectories: Newly arrived trajectories.
            auto_offset_ids: Re-id the batch's trajectories past every id
                seen so far.  Without it, a duplicate id raises
                ``ValueError`` — cross-batch netflow would silently merge
                unrelated objects otherwise.
        """
        batch = list(trajectories)
        if auto_offset_ids:
            batch = self._offset_ids(batch)
        else:
            duplicate = {tr.trid for tr in batch} & self._seen_trids
            if duplicate:
                raise ValueError(
                    f"trajectory ids seen in earlier batches: {sorted(duplicate)[:5]}"
                    " (pass auto_offset_ids=True to re-id)"
                )

        # Snapshot mutable state so a mid-batch failure (bad input deep in
        # a phase, injected fault in a chaos drill) leaves the clusterer
        # exactly as it was: ingestion is all-or-nothing per batch, which
        # is what lets the service tier retry or queue a failed batch.
        rollback = (
            list(self._flows),
            list(self._noise_flows),
            list(self._clusters),
            set(self._seen_trids),
            self._batches,
        )
        self._seen_trids.update(tr.trid for tr in batch)

        result = BatchResult(batch_index=self._batches)
        self._batches += 1

        telemetry = self.telemetry
        metrics = telemetry.metrics if telemetry.enabled else None
        try:
            with telemetry.tracer.span("incremental.add_batch") as batch_span:
                if batch:
                    base = form_base_clusters(
                        self.network, batch,
                        keep_interior_points=self.config.keep_interior_points,
                        metrics=metrics,
                    )
                    formation = form_flow_clusters(
                        self.network, base, self.config, metrics=metrics
                    )
                    result.new_flows = formation.flows
                    result.new_noise_flows = formation.noise_flows
                    self._flows.extend(formation.flows)
                    self._noise_flows.extend(formation.noise_flows)

                stats = RefinementStats()
                with telemetry.tracer.span("incremental.refresh"):
                    self._clusters = refine_flow_clusters(
                        self.network, self._flows, self.config,
                        engine=self.engine, stats=stats, metrics=metrics,
                    )
        except BaseException:
            (
                self._flows,
                self._noise_flows,
                self._clusters,
                self._seen_trids,
                self._batches,
            ) = rollback
            if metrics is not None:
                metrics.inc(
                    "incremental.rolled_back_batches",
                    description="Batches undone after a mid-ingest failure",
                )
            _log.warning("batch rolled back", batch=result.batch_index)
            raise
        result.clusters = list(self._clusters)
        result.refinement_stats = stats

        if metrics is not None:
            metrics.counter(
                "incremental.batches", "Trajectory batches ingested"
            ).inc()
            metrics.counter(
                "incremental.trajectories", "Trajectories ingested across batches"
            ).inc(len(batch))
            metrics.gauge(
                "incremental.retained_flows", "Flows in the retained pool"
            ).set(len(self._flows))
            metrics.histogram(
                "incremental.batch_seconds",
                "End-to-end add_batch latency (Phases 1-2 plus refresh)",
            ).observe(batch_span.duration)
        _log.debug(
            "batch ingested",
            batch=result.batch_index,
            trajectories=len(batch),
            new_flows=len(result.new_flows),
            clusters=len(result.clusters),
            seconds=round(batch_span.duration, 6),
        )
        return result

    def _offset_ids(self, batch: list[Trajectory]) -> list[Trajectory]:
        offset = (max(self._seen_trids) + 1) if self._seen_trids else 0
        reindexed = []
        for index, trajectory in enumerate(batch):
            reindexed.append(
                Trajectory(offset + index, trajectory.locations)
            )
        return reindexed
