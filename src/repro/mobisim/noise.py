"""GPS noise model: turn ground-truth traces into raw GPS fixes.

The simulator produces network-constrained samples that already carry the
road segment id.  Real GPS receivers do not: they report noisy ``(x, y, t)``
fixes that a map matcher must snap back onto the network (the paper uses
the SLAMM matcher [14] as a preprocessing step).  This module strips the
segment ids and perturbs the coordinates so the map-matching substrate has
realistic input to chew on, and exists primarily to exercise/evaluate
:mod:`repro.mapmatch`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.model import Trajectory, TrajectoryDataset


@dataclass(frozen=True, slots=True)
class GpsFix:
    """A raw GPS fix: position and time, no network knowledge."""

    x: float
    y: float
    t: float


@dataclass(frozen=True, slots=True)
class RawTrace:
    """A raw GPS trace: one trajectory's fixes before map matching."""

    trid: int
    fixes: tuple[GpsFix, ...]

    def __len__(self) -> int:
        return len(self.fixes)


def degrade_trajectory(
    trajectory: Trajectory, sigma: float, rng: random.Random
) -> RawTrace:
    """Strip segment ids and add isotropic Gaussian noise of ``sigma`` m."""
    fixes = tuple(
        GpsFix(
            location.x + rng.gauss(0.0, sigma),
            location.y + rng.gauss(0.0, sigma),
            location.t,
        )
        for location in trajectory.locations
    )
    return RawTrace(trajectory.trid, fixes)


def degrade_dataset(
    dataset: TrajectoryDataset, sigma: float = 5.0, seed: int = 97
) -> list[RawTrace]:
    """Degrade every trajectory of a dataset into raw GPS traces.

    Args:
        dataset: Ground-truth dataset from the simulator.
        sigma: Noise standard deviation in metres (consumer GPS is ~5 m).
        seed: RNG seed for reproducible noise.
    """
    rng = random.Random(seed)
    return [degrade_trajectory(tr, sigma, rng) for tr in dataset.trajectories]
