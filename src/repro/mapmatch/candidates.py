"""Candidate road segments for a GPS fix.

The first stage of any map matcher: given a raw fix, find the nearby road
segments that could have produced it, with their projection distances and
positions.  Candidate search is backed by the uniform-grid spatial index.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..roadnet.geometry import Point, project_onto_segment
from ..roadnet.network import RoadNetwork
from ..roadnet.spatial_index import SegmentGridIndex


@dataclass(frozen=True, slots=True)
class Candidate:
    """One possible match of a fix onto a segment.

    Attributes:
        sid: Candidate segment id.
        distance: Perpendicular (projection) distance fix -> segment, m.
        snapped: The projected position on the segment chord.
        fraction: Projection parameter in [0, 1] from the segment's
            ``node_u`` end.
    """

    sid: int
    distance: float
    snapped: Point
    fraction: float


class CandidateFinder:
    """Finds candidate segments around fixes on one network.

    Args:
        network: Road network to match against.
        index: Optional pre-built spatial index (built on demand otherwise).
        search_radius: Initial search radius in metres; doubled until at
            least one candidate is found or ``max_radius`` is exceeded.
        max_radius: Give-up radius.
    """

    def __init__(
        self,
        network: RoadNetwork,
        index: SegmentGridIndex | None = None,
        search_radius: float = 40.0,
        max_radius: float = 640.0,
    ) -> None:
        self._network = network
        self._index = index if index is not None else SegmentGridIndex(network)
        self.search_radius = float(search_radius)
        self.max_radius = float(max_radius)

    def candidates(self, point: Point, limit: int = 8) -> list[Candidate]:
        """Up to ``limit`` nearest candidate segments for ``point``.

        Sorted by projection distance; empty when nothing lies within
        ``max_radius``.
        """
        radius = self.search_radius
        hits: list[tuple[int, float]] = []
        while radius <= self.max_radius:
            hits = self._index.segments_within(point, radius)
            if hits:
                break
            radius *= 2.0
        results: list[Candidate] = []
        for sid, _distance in hits[:limit]:
            a, b = self._network.segment_endpoints(sid)
            snapped, fraction, distance = project_onto_segment(point, a, b)
            results.append(Candidate(sid, distance, snapped, fraction))
        return results
