"""Flow clusters: ordered base-cluster lists whose segments form a route.

Implements Definition 8 of the paper.  A flow cluster grows from a seed
base cluster by appending/prepending f-neighbors, so it always maintains
its two *open endpoints* — the junctions at which Phase 2 may extend it —
and its representative route ``r_F`` (the concatenation of its members'
representative road segments).
"""

from __future__ import annotations

from typing import Iterator

from ..errors import ClusteringError
from ..roadnet.network import RoadNetwork
from .base_cluster import BaseCluster


class FlowCluster:
    """An ordered list of base clusters forming a route (Definition 8).

    Args:
        network: The road network the members' segments belong to.
        seed: The initial base cluster; both endpoints of its segment are
            open for expansion.
    """

    def __init__(self, network: RoadNetwork, seed: BaseCluster) -> None:
        segment = network.segment(seed.sid)
        self._network = network
        self._members: list[BaseCluster] = [seed]
        #: Junction at which the flow can grow by prepending.
        self.front_node: int = segment.node_u
        #: Junction at which the flow can grow by appending.
        self.end_node: int = segment.node_v
        self._participants: frozenset[int] | None = None

    @classmethod
    def from_members(
        cls, network: RoadNetwork, members: "list[BaseCluster]"
    ) -> "FlowCluster":
        """Rebuild a flow from an ordered member list (deserialization).

        The first two members fix the route orientation; a single-member
        flow keeps the seed's natural ``(node_u, node_v)`` orientation.
        """
        if not members:
            raise ClusteringError("a flow cluster needs at least one member")
        flow = cls(network, members[0])
        if len(members) > 1:
            junction = network.common_junction(members[0].sid, members[1].sid)
            if junction is None:
                raise ClusteringError(
                    f"members {members[0].sid} and {members[1].sid} are not "
                    "adjacent"
                )
            if flow.end_node != junction:
                flow.front_node, flow.end_node = flow.end_node, flow.front_node
            for member in members[1:]:
                flow.append(member)
        return flow

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def append(self, cluster: BaseCluster) -> None:
        """Extend the flow at its end junction with ``cluster``.

        The cluster's segment must be incident to the current end node
        (i.e. the cluster is an f-neighbor candidate at that node).
        """
        segment = self._network.segment(cluster.sid)
        if not segment.has_endpoint(self.end_node):
            raise ClusteringError(
                f"segment {cluster.sid} does not touch flow end junction "
                f"{self.end_node}"
            )
        self._members.append(cluster)
        self.end_node = segment.other_endpoint(self.end_node)
        self._participants = None

    def prepend(self, cluster: BaseCluster) -> None:
        """Extend the flow at its front junction with ``cluster``."""
        segment = self._network.segment(cluster.sid)
        if not segment.has_endpoint(self.front_node):
            raise ClusteringError(
                f"segment {cluster.sid} does not touch flow front junction "
                f"{self.front_node}"
            )
        self._members.insert(0, cluster)
        self.front_node = segment.other_endpoint(self.front_node)
        self._participants = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The road network the flow's segments belong to."""
        return self._network

    @property
    def members(self) -> tuple[BaseCluster, ...]:
        """The member base clusters in route order."""
        return tuple(self._members)

    @property
    def sids(self) -> tuple[int, ...]:
        """The representative route ``r_F`` as a segment-id sequence."""
        return tuple(member.sid for member in self._members)

    @property
    def endpoints(self) -> tuple[int, int]:
        """The two ends ``(front_node, end_node)`` of the representative route."""
        return (self.front_node, self.end_node)

    def route_nodes(self) -> list[int]:
        """The junction sequence of the representative route, front to end."""
        nodes = [self.front_node]
        current = self.front_node
        for member in self._members:
            current = self._network.segment(member.sid).other_endpoint(current)
            nodes.append(current)
        return nodes

    @property
    def route_length(self) -> float:
        """Length of the representative route in metres."""
        return sum(self._network.segment(sid).length for sid in self.sids)

    @property
    def participants(self) -> frozenset[int]:
        """``PTr(F)``: union of member participant sets."""
        if self._participants is None:
            union: set[int] = set()
            for member in self._members:
                union.update(member.participants)
            self._participants = frozenset(union)
        return self._participants

    @property
    def trajectory_cardinality(self) -> int:
        """``|PTr(F)|``: distinct trajectories passing through the flow."""
        return len(self.participants)

    @property
    def density(self) -> int:
        """Total t-fragment count across members."""
        return sum(member.density for member in self._members)

    def netflow_with(self, cluster: BaseCluster) -> int:
        """``f(F, S)``: trajectories shared between this flow and ``S``."""
        return sum(1 for trid in cluster.participants if trid in self.participants)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[BaseCluster]:
        return iter(self._members)

    def __repr__(self) -> str:
        return (
            f"FlowCluster(segments={len(self._members)}, "
            f"cardinality={self.trajectory_cardinality}, "
            f"route_length={self.route_length:.0f}m)"
        )
