"""Robustness policies: retries with backoff, deadlines, circuit breaking.

Three small, stdlib-only primitives the service tier composes:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic seeded jitter*: the jitter sequence is drawn from a
  ``random.Random`` seeded per call, so two identical runs back off by
  byte-identical delays (the chaos suite asserts this);
* :class:`Deadline` — a monotonic time budget with an injectable clock,
  checked between attempts (pure-Python calls cannot be preempted, so a
  deadline bounds *when the next attempt may start*, not a single
  long-running attempt);
* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine: consecutive failures trip it open, a recovery interval later a
  limited number of trial calls probe the dependency, one success closes
  it again.

Every primitive takes injectable ``clock``/``sleep`` callables so tests
and benchmarks run instantly and deterministically.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..errors import (
    CircuitOpenError,
    ConfigError,
    DeadlineExceeded,
    RetriesExhausted,
)

__all__ = ["CircuitBreaker", "Deadline", "RetryPolicy"]


class Deadline:
    """A wall-clock budget for one logical operation.

    Args:
        budget_s: Seconds allowed from construction time.
        operation: Name used in the :class:`DeadlineExceeded` message.
        clock: Monotonic clock (injectable for tests).
    """

    __slots__ = ("budget_s", "operation", "_clock", "_expires_at")

    def __init__(
        self,
        budget_s: float,
        operation: str = "operation",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s <= 0:
            raise ConfigError(f"deadline budget must be > 0, got {budget_s}")
        self.budget_s = budget_s
        self.operation = operation
        self._clock = clock
        self._expires_at = clock() + budget_s

    @classmethod
    def after(
        cls,
        budget_s: float,
        operation: str = "operation",
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline expiring ``budget_s`` seconds from now."""
        return cls(budget_s, operation=operation, clock=clock)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self._clock() >= self._expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(self.operation, self.budget_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline({self.operation!r}, budget={self.budget_s}, "
            f"remaining={self.remaining():.3f})"
        )


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Attributes:
        max_retries: Retries *after* the first attempt (0 = try once).
        base_delay_s: Backoff before the first retry.
        multiplier: Exponential growth factor between retries.
        max_delay_s: Cap on any single backoff delay (before jitter).
        jitter: Fraction of the delay added as jitter; the addition is
            drawn uniformly from ``[0, jitter * delay)`` by a
            ``random.Random(seed)`` instance created per :meth:`call`,
            making the whole backoff schedule deterministic under a seed.
        seed: Jitter seed.
    """

    max_retries: int = 2
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_s < 0:
            raise ConfigError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.multiplier < 1.0:
            raise ConfigError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay_s < self.base_delay_s:
            raise ConfigError(
                f"max_delay_s ({self.max_delay_s}) must be >= base_delay_s "
                f"({self.base_delay_s})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> Iterator[float]:
        """The jittered backoff schedule (one delay per retry)."""
        rng = random.Random(self.seed)
        delay = self.base_delay_s
        for _ in range(self.max_retries):
            capped = min(delay, self.max_delay_s)
            yield capped + (rng.random() * self.jitter * capped)
            delay *= self.multiplier

    def call(
        self,
        fn: Callable[..., Any],
        *args: Any,
        operation: str = "operation",
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        deadline: Deadline | None = None,
        sleep: Callable[[float], None] | None = None,
        on_retry: Callable[[int, float, BaseException], None] | None = None,
        **kwargs: Any,
    ) -> Any:
        """Run ``fn`` under this policy; return its result.

        Args:
            fn: The callable to protect.
            operation: Name used in raised errors.
            retry_on: Exception types that trigger a retry; anything else
                propagates immediately.
            deadline: Optional :class:`Deadline`; checked before every
                attempt and before sleeping (a backoff that cannot fit in
                the remaining budget raises :class:`DeadlineExceeded`
                without sleeping).
            sleep: Backoff sleeper (default ``time.sleep``; tests pass a
                recorder or no-op).
            on_retry: Callback ``(attempt, delay_s, error)`` invoked
                before each backoff — the hook the service tier uses to
                bump ``resilience.retries`` and log.

        Raises:
            RetriesExhausted: Every allowed attempt failed (the last
                failure is chained as ``__cause__``).
            DeadlineExceeded: The budget ran out between attempts.
        """
        sleeper = time.sleep if sleep is None else sleep
        schedule = self.delays()
        attempt = 0
        while True:
            attempt += 1
            if deadline is not None:
                deadline.check()
            try:
                return fn(*args, **kwargs)
            except retry_on as error:
                delay = next(schedule, None)
                if delay is None:
                    raise RetriesExhausted(operation, attempt, error) from error
                if deadline is not None and delay > deadline.remaining():
                    raise DeadlineExceeded(
                        deadline.operation, deadline.budget_s
                    ) from error
                if on_retry is not None:
                    on_retry(attempt, delay, error)
                sleeper(delay)


class CircuitBreaker:
    """Closed / open / half-open circuit breaker.

    Closed: calls flow; ``failure_threshold`` *consecutive* failures trip
    the circuit open.  Open: calls are rejected immediately with
    :class:`CircuitOpenError` until ``recovery_s`` elapses.  Half-open: up
    to ``half_open_max_calls`` trial calls are admitted; one success
    closes the circuit (counters reset), one failure re-opens it.

    State transitions are serialized by an internal lock, so concurrent
    callers cannot over-admit half-open probes: with
    ``half_open_max_calls=1``, exactly one of N racing :meth:`allow`
    calls passes (the check-then-increment is atomic).

    Args:
        name: Identifier used in errors and logs.
        failure_threshold: Consecutive failures that trip the breaker.
        recovery_s: Open interval before probing resumes.
        half_open_max_calls: Concurrent trial calls admitted half-open.
        clock: Monotonic clock (injectable for tests).
        on_open: Callback invoked every time the breaker trips open —
            the ``resilience.breaker_open`` counter hook.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 5,
        recovery_s: float = 30.0,
        half_open_max_calls: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_open: Callable[[], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_s < 0:
            raise ConfigError(f"recovery_s must be >= 0, got {recovery_s}")
        if half_open_max_calls < 1:
            raise ConfigError(
                f"half_open_max_calls must be >= 1, got {half_open_max_calls}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.half_open_max_calls = half_open_max_calls
        self._clock = clock
        self._on_open = on_open
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_in_flight = 0
        self._lock = threading.Lock()
        self.trip_count = 0

    # ------------------------------------------------------------------
    def _current_state(self) -> str:
        """State with recovery-interval expiry applied; lock held."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.recovery_s
        ):
            self._state = self.HALF_OPEN
            self._half_open_in_flight = 0
        return self._state

    @property
    def state(self) -> str:
        """Current state, accounting for recovery-interval expiry."""
        with self._lock:
            return self._current_state()

    def allow(self) -> bool:
        """Whether a call may proceed right now (half-open slots count).

        Atomic: the half-open slot check and the in-flight increment
        happen under the breaker's lock, so two concurrent probes can
        never both be admitted past ``half_open_max_calls``.
        """
        with self._lock:
            state = self._current_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                if self._half_open_in_flight < self.half_open_max_calls:
                    self._half_open_in_flight += 1
                    return True
                return False
            return False

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            retry_after = self.recovery_s - (self._clock() - self._opened_at)
            raise CircuitOpenError(self.name, retry_after)

    def record_success(self) -> None:
        """Report a successful protected call (closes a half-open circuit)."""
        with self._lock:
            self._consecutive_failures = 0
            self._half_open_in_flight = 0
            self._state = self.CLOSED

    def record_failure(self) -> None:
        """Report a failed protected call; may trip the circuit open."""
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._trip()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip()

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Guard one call: admission check, then success/failure recording."""
        self.check()
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        # Lock held by the caller (record_success/record_failure).
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._half_open_in_flight = 0
        self.trip_count += 1
        if self._on_open is not None:
            self._on_open()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"
