"""Tests for repro.obs.logging: configuration, formats, structure."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.logging import (
    _HANDLER_MARK,
    JsonLinesFormatter,
    KeyValueFormatter,
    configure_logging,
    get_logger,
)


@pytest.fixture(autouse=True)
def _restore_logging():
    """Leave the repro logger quiet and handler-free after each test."""
    yield
    root = logging.getLogger("repro")
    for handler in [h for h in root.handlers if getattr(h, _HANDLER_MARK, False)]:
        root.removeHandler(handler)
    root.setLevel(logging.WARNING)


def _obs_handlers():
    root = logging.getLogger("repro")
    return [h for h in root.handlers if getattr(h, _HANDLER_MARK, False)]


class TestConfigure:
    def test_installs_one_handler(self):
        configure_logging("INFO", stream=io.StringIO())
        assert len(_obs_handlers()) == 1

    def test_idempotent_reconfiguration(self):
        configure_logging("INFO", stream=io.StringIO())
        configure_logging("DEBUG", stream=io.StringIO())
        configure_logging("DEBUG", json_lines=True, stream=io.StringIO())
        assert len(_obs_handlers()) == 1
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_latest_configuration_wins(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging("INFO", stream=first)
        configure_logging("INFO", stream=second)
        get_logger("test").info("hello")
        assert first.getvalue() == ""
        assert "hello" in second.getvalue()

    def test_level_filtering(self):
        buffer = io.StringIO()
        configure_logging("WARNING", stream=buffer)
        log = get_logger("test")
        log.info("quiet")
        log.warning("loud")
        output = buffer.getvalue()
        assert "quiet" not in output
        assert "loud" in output

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("CHATTY")

    def test_formatter_selection(self):
        logger = configure_logging("INFO", json_lines=True, stream=io.StringIO())
        assert isinstance(_obs_handlers()[0].formatter, JsonLinesFormatter)
        configure_logging("INFO", stream=io.StringIO())
        assert isinstance(_obs_handlers()[0].formatter, KeyValueFormatter)
        assert logger is logging.getLogger("repro")


class TestKeyValueFormat:
    def test_fields_rendered(self):
        buffer = io.StringIO()
        configure_logging("DEBUG", stream=buffer)
        get_logger("core.pipeline").info("run complete", mode="opt", flows=12)
        line = buffer.getvalue().strip()
        assert "level=info" in line
        assert "logger=repro.core.pipeline" in line
        assert 'event="run complete"' in line
        assert "mode=opt" in line
        assert "flows=12" in line

    def test_values_with_spaces_quoted(self):
        buffer = io.StringIO()
        configure_logging("DEBUG", stream=buffer)
        get_logger("t").info("x", note="two words")
        assert 'note="two words"' in buffer.getvalue()


class TestJsonLinesFormat:
    def test_records_parse_as_json(self):
        buffer = io.StringIO()
        configure_logging("DEBUG", json_lines=True, stream=buffer)
        log = get_logger("core.pipeline")
        log.info("run complete", mode="opt", flows=12)
        log.warning("slow phase", phase="refine")
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "run complete"
        assert first["level"] == "info"
        assert first["logger"] == "repro.core.pipeline"
        assert first["mode"] == "opt"
        assert first["flows"] == 12
        assert json.loads(lines[1])["phase"] == "refine"


class TestStructuredLogger:
    def test_namespacing_under_repro(self):
        assert get_logger("roadnet").name == "repro.roadnet"
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger().name == "repro"

    def test_bind_carries_fields(self):
        buffer = io.StringIO()
        configure_logging("DEBUG", stream=buffer)
        bound = get_logger("svc").bind(shard=3)
        bound.info("tick", batch=1)
        line = buffer.getvalue()
        assert "shard=3" in line
        assert "batch=1" in line

    def test_call_fields_override_bound(self):
        buffer = io.StringIO()
        configure_logging("DEBUG", json_lines=True, stream=buffer)
        get_logger("svc").bind(k="old").info("e", k="new")
        assert json.loads(buffer.getvalue())["k"] == "new"

    def test_disabled_level_is_cheap_and_silent(self):
        buffer = io.StringIO()
        configure_logging("ERROR", stream=buffer)
        get_logger("t").debug("invisible", huge=object())
        assert buffer.getvalue() == ""
