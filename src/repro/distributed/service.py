"""The NEAT server facade (Section II-C, in-process), fault-tolerant.

The paper sketches a 3-tier system: clients "send trajectories to a NEAT
server and make requests to the server to get trajectory clustering
results for a particular road network".  :class:`NeatService` is that
server tier as a library object, composing the pieces built elsewhere:

* ingestion goes through :class:`~repro.core.incremental.IncrementalNEAT`
  (batched Phases 1-2, warm Phase 3 refreshes);
* query responses are the serialized wire format of
  :mod:`repro.core.serialize`;
* every response is checked by :mod:`repro.core.validate` before leaving
  the service (a malformed answer is a bug, not a payload).

A production server must keep answering when an ingest or refresh
misbehaves, so the facade adds a robustness layer
(:mod:`repro.resilience`):

* **admission control** — malformed batches are rejected at the door
  (:func:`~repro.core.validate.validate_trajectories`), and a bounded
  pending-batch queue rejects new work with
  :class:`~repro.errors.ServiceOverloaded` once ``max_pending`` batches
  are stuck;
* **retry / deadline / breaker** — each ingest runs under a
  :class:`~repro.resilience.RetryPolicy` and an optional per-call
  :class:`~repro.resilience.Deadline`; consecutive ingest failures trip
  a :class:`~repro.resilience.CircuitBreaker` that sheds load fast;
* **degraded mode** — when a query's refresh fails, the service serves
  the last validated snapshot flagged ``"stale": true`` in the wire
  format instead of raising (:class:`~repro.errors.ServiceUnavailable`
  only when no snapshot exists yet);
* **latency SLO watchdog** — when the config sets ``slo_ingest_p99_s``
  / ``slo_query_p99_s``, an :class:`~repro.obs.slo.SLOWatchdog`
  evaluates the windowed p99 of the submit/query latency histograms
  after every request (inline, so chaos runs are deterministic).  A
  breached ingest SLO *sheds load* (the pending-queue admission bound
  halves); a breached query SLO *serves stale* (queries answer from the
  last validated snapshot without refreshing) — both clear when the
  windowed p99 recovers, and the ``service.slo_breach*`` gauges flip
  with them;
* **fault injection** — the ``ingest`` and ``refresh`` operations are
  named injection points on :attr:`NeatService.faults`, so chaos tests
  script failures deterministically (arm a latency plan with a real
  sleeper against ``ingest`` to drill the SLO watchdog).

Everything is synchronous and in-process; transports (HTTP, gRPC) would
wrap this object without changing it — and the **observability plane**
(:meth:`NeatService.serve_obs`) exposes ``/metrics`` ``/health``
``/statusz`` ``/tracez`` over HTTP without touching the serving paths.
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from ..core.config import NEATConfig
from ..core.incremental import BatchResult, IncrementalNEAT
from ..core.model import Trajectory
from ..core.result import NEATResult
from ..core.serialize import result_to_dict
from ..core.validate import validate_result, validate_trajectories
from ..errors import (
    CorruptSnapshot,
    DeadlineExceeded,
    RetriesExhausted,
    ServiceOverloaded,
    ServiceUnavailable,
    TrajectoryError,
)
from ..obs import Telemetry, get_logger
from ..obs.server import ObservabilityServer
from ..obs.slo import SLORule, SLOWatchdog
from ..persist.store import SnapshotStore
from ..resilience import CircuitBreaker, Deadline, FaultInjector, RetryPolicy
from ..roadnet.network import RoadNetwork

_log = get_logger("distributed.service")


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """Operational counters of a service instance.

    A derived view over the service's metrics registry: every field is
    readable (with histograms for the latencies) from
    :meth:`NeatService.metrics_snapshot` as well.
    """

    batches_ingested: int
    trajectories_ingested: int
    queries_served: int
    flow_count: int
    cluster_count: int
    shortest_path_computations: int
    warm_distance_hits: int
    submit_seconds_total: float
    query_seconds_total: float
    pending_batches: int
    stale_queries: int
    rejected_batches: int
    quarantined_trajectories: int
    overload_rejections: int
    retries: int
    breaker_trips: int
    deadline_exceeded: int
    slo_breaches: int
    slo_stale_queries: int


class NeatService:
    """An in-process NEAT server for one road network.

    Args:
        network: The road network clients' trajectories travel on.
        config: NEAT parameters applied to every ingest/refresh; its
            ``max_retries`` / ``deadline_s`` / ``max_pending`` knobs seed
            the robustness layer.
        telemetry: Optional :class:`~repro.obs.Telemetry` bundle shared
            with the underlying incremental clusterer; the service adds
            ``service.*`` and ``resilience.*`` counters and latency
            histograms to it.  Defaults to a fresh enabled bundle.
        retry_policy: Retry policy for ingest/refresh operations.  The
            default retries ``config.max_retries`` times with zero
            backoff (in-process calls have no transport to wait out);
            pass a policy with real delays when fronting remote work.
        breaker: Circuit breaker guarding ingestion.  The default trips
            after 5 consecutive batch failures and probes again 30 s
            later.
        clock: Monotonic clock for deadlines and the breaker
            (injectable for tests).
        sleep: Backoff sleeper for retries (injectable for tests).

    Example:
        >>> from repro.roadnet import line_network
        >>> service = NeatService(line_network(3))
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: NEATConfig | None = None,
        telemetry: Telemetry | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] | None = None,
        state_dir: str | Path | None = None,
    ) -> None:
        self.network = network
        self.config = config if config is not None else NEATConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry.create()
        # The injector exists before the clusterer so recovery itself runs
        # through the same snapshot.*/journal.* fault points chaos tests
        # arm (a service restart is exactly when those faults matter).
        self.faults = FaultInjector()
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self._documents: SnapshotStore | None = None
        if self.state_dir is None:
            self._incremental = IncrementalNEAT(
                network, self.config, telemetry=self.telemetry
            )
        else:
            # Recover clustering state (empty directory = fresh start with
            # persistence enabled) and the last validated serving document,
            # so a restarted service degrades to stale serving instead of
            # ServiceUnavailable.  Corruption raises typed errors here —
            # construction must never succeed on silently-wrong state.
            # Recovery also warm-loads the persisted distance cache: with
            # an unchanged network, journal replay performs zero
            # shortest-path computations (ServiceStats.warm_distance_hits
            # counts the queries the warm cache answers).
            self._incremental = IncrementalNEAT.recover(
                self.state_dir / "incremental",
                network,
                self.config,
                telemetry=self.telemetry,
                faults=self.faults,
            )
            self._documents = SnapshotStore(
                self.state_dir / "service",
                keep=2,
                faults=self.faults,
                metrics=(
                    self.telemetry.metrics if self.telemetry.enabled else None
                ),
            )
        self._clock = clock
        self._sleep = sleep
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                max_retries=self.config.max_retries,
                base_delay_s=0.0, jitter=0.0,
            )
        )
        metrics = self.telemetry.metrics
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(
                "service.ingest", failure_threshold=5, recovery_s=30.0,
                clock=clock,
            )
        )
        self._pending: deque[list[Trajectory]] = deque()
        self._last_document: dict[str, Any] | None = None
        if self._documents is not None:
            latest = self._documents.read_latest()
            if latest is not None:
                generation, payload = latest
                try:
                    self._last_document = json.loads(payload.decode("utf-8"))
                except ValueError as error:
                    raise CorruptSnapshot(
                        generation.path,
                        f"sealed payload is not JSON: {error}",
                    ) from error
                _log.info(
                    "serving document recovered",
                    generation=generation.number,
                    stale_until_first_refresh=True,
                )

        self._submitted_batches = metrics.counter(
            "service.batches_ingested", "Trajectory batches accepted by submit()"
        )
        self._submitted_trajectories = metrics.counter(
            "service.trajectories_ingested", "Trajectories accepted by submit()"
        )
        self._queries = metrics.counter(
            "service.queries_served", "Clustering/flow-summary queries answered"
        )
        self._submit_latency = metrics.histogram(
            "service.submit_latency_seconds", "End-to-end submit() latency"
        )
        self._query_latency = metrics.histogram(
            "service.query_latency_seconds", "End-to-end query latency"
        )
        self._stale_queries = metrics.counter(
            "service.stale_queries",
            "Queries answered from the last snapshot because a refresh failed",
        )
        self._rejected_batches = metrics.counter(
            "service.rejected_batches", "Malformed batches rejected at admission"
        )
        self._quarantined = metrics.counter(
            "service.quarantined_trajectories",
            "Bad trajectories skipped at admission while the rest of "
            "their batch was ingested",
        )
        self._overload_rejections = metrics.counter(
            "service.overload_rejections",
            "Batches rejected because the pending queue was full",
        )
        self._retries = metrics.counter(
            "resilience.retries", "Attempts retried by a RetryPolicy"
        )
        self._breaker_open = metrics.counter(
            "resilience.breaker_open", "Circuit-breaker trips to the open state"
        )
        self._deadline_exceeded = metrics.counter(
            "service.deadline_exceeded", "Calls aborted by their deadline"
        )
        self._pending_gauge = metrics.gauge(
            "service.pending_batches", "Batches queued awaiting (re)ingestion"
        )
        self._slo_stale_queries = metrics.counter(
            "service.slo_stale_queries",
            "Queries answered from the last snapshot because the query "
            "SLO is breached (refresh skipped, not failed)",
        )
        # Route breaker trips into telemetry without the breaker knowing
        # about metrics (a user-supplied on_open hook is kept as-is).
        if self.breaker._on_open is None:
            self.breaker._on_open = self._record_breaker_trip

        # Latency SLO watchdog: rules exist only for configured
        # objectives, evaluated inline after each request so two
        # identical (chaos) runs produce byte-identical verdicts.
        self.slo_watchdog = SLOWatchdog(
            metrics,
            on_breach=self._on_slo_breach,
            on_clear=self._on_slo_clear,
        )
        if self.config.slo_ingest_p99_s is not None:
            self.slo_watchdog.add_rule(SLORule(
                "ingest", self._submit_latency, self.config.slo_ingest_p99_s,
            ))
        if self.config.slo_query_p99_s is not None:
            self.slo_watchdog.add_rule(SLORule(
                "query", self._query_latency, self.config.slo_query_p99_s,
            ))
        self._slo_verdicts: dict[str, bool] = {}
        self._started_at = clock()
        self._obs_server: ObservabilityServer | None = None

    # ------------------------------------------------------------------
    # Ingestion (the client -> server direction)
    # ------------------------------------------------------------------
    def submit(
        self,
        trajectories: Sequence[Trajectory],
        deadline_s: float | None = None,
    ) -> dict[str, Any]:
        """Ingest a trajectory batch; returns an acknowledgement summary.

        Trajectory ids are re-assigned server-side (clients should not
        need to coordinate id spaces).

        The batch is validated, admitted into the bounded pending queue,
        then the queue is drained oldest-first (a previously failed batch
        is retried before the new one).  Failure of any batch leaves it
        queued and raises; :meth:`flush_pending` retries without new work.

        Args:
            trajectories: The batch.
            deadline_s: Per-call budget override (default:
                ``config.deadline_s``; ``None`` = no deadline).

        Raises:
            TrajectoryError: The batch is malformed (admission check).
            ServiceOverloaded: The pending queue is full.
            RetriesExhausted: Ingestion kept failing past the policy.
            DeadlineExceeded: The time budget ran out.
            CircuitOpenError: The ingest breaker is open.
        """
        with self.telemetry.tracer.span("service.submit") as span:
            batch = list(trajectories)
            report = validate_trajectories(self.network, batch)
            quarantined = 0
            if not report.ok:
                # Per-trajectory defects are quarantined (counted and
                # skipped); batch-level defects (duplicate ids) or a batch
                # with nothing admissible left still reject wholesale.
                admitted = [
                    tr for tr in batch if tr.trid not in report.bad_trids
                ]
                if report.batch_errors or not admitted:
                    self._rejected_batches.inc()
                    _log.warning(
                        "batch rejected", errors=len(report.errors),
                        first=report.errors[0],
                    )
                    raise TrajectoryError(
                        "malformed trajectory batch:\n  "
                        + "\n  ".join(report.errors)
                    )
                quarantined = len(batch) - len(admitted)
                self._quarantined.inc(quarantined)
                _log.warning(
                    "trajectories quarantined",
                    quarantined=quarantined,
                    admitted=len(admitted),
                    reasons=dict(list(report.bad_trids.items())[:5]),
                )
                batch = admitted
            max_pending = self.effective_max_pending
            if len(self._pending) >= max_pending:
                self._overload_rejections.inc()
                _log.warning(
                    "batch rejected by admission control",
                    pending=len(self._pending),
                    max_pending=max_pending,
                    slo_shed=self._slo_verdicts.get("ingest", False),
                )
                raise ServiceOverloaded(len(self._pending), max_pending)
            self._pending.append(batch)
            self._pending_gauge.set(len(self._pending))
            ack = self._drain(self._deadline_for("service.submit", deadline_s))
            ack["quarantined"] = quarantined
        self._submit_latency.observe(span.duration)
        self._evaluate_slo()
        _log.info(
            "batch accepted",
            batch=ack["batch"], trajectories=ack["accepted"],
            new_flows=ack["new_flows"], seconds=round(span.duration, 6),
        )
        return ack

    def flush_pending(self, deadline_s: float | None = None) -> int:
        """Retry queued batches without submitting new work.

        Returns the number of batches still pending afterwards; raises
        like :meth:`submit` when a batch keeps failing.
        """
        if self._pending:
            self._drain(self._deadline_for("service.flush", deadline_s))
        return len(self._pending)

    @property
    def pending_batches(self) -> int:
        """Batches queued awaiting (re)ingestion."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Queries (the server -> client direction)
    # ------------------------------------------------------------------
    def get_clustering(
        self, deadline_s: float | None = None
    ) -> dict[str, Any]:
        """The current global clustering as a serialized document.

        The response is validated against the framework invariants before
        being returned.  When the refresh fails (after retries), the last
        validated snapshot is served instead with ``"stale": true`` —
        degraded, not down.  While the query latency SLO is breached the
        refresh is skipped outright and the snapshot is served flagged
        ``"slo_degraded": true`` — the watchdog's load-shedding answer to
        a slow query path.

        Raises:
            ServiceUnavailable: The refresh failed and no snapshot has
                ever been validated.
            DeadlineExceeded: The time budget ran out (no stale fallback:
                a deadline is the caller's own abort request).
        """
        with self.telemetry.tracer.span("service.get_clustering") as span:
            if (
                self._slo_verdicts.get("query", False)
                and self._last_document is not None
            ):
                # SLO shedding: skip the refresh entirely — the stale
                # snapshot keeps the query path fast, which is what lets
                # the windowed p99 (and the breach) recover.
                self._slo_stale_queries.inc()
                _log.warning("serving stale snapshot: query SLO breached")
                response = dict(self._last_document)
                response["stale"] = True
                response["slo_degraded"] = True
            else:
                deadline = self._deadline_for(
                    "service.get_clustering", deadline_s
                )
                try:
                    document = self.retry_policy.call(
                        self._refresh_document,
                        operation="service.refresh",
                        deadline=deadline,
                        sleep=self._sleep,
                        on_retry=self._on_retry,
                    )
                    self._last_document = document
                    response = dict(document)
                except DeadlineExceeded:
                    self._deadline_exceeded.inc()
                    raise
                except Exception as error:
                    if self._last_document is None:
                        raise ServiceUnavailable(
                            "refresh failed and no validated snapshot exists"
                        ) from error
                    self._stale_queries.inc()
                    _log.warning(
                        "serving stale snapshot", error=repr(error),
                    )
                    response = dict(self._last_document)
                    response["stale"] = True
        self._queries.inc()
        self._query_latency.observe(span.duration)
        self._evaluate_slo()
        return response

    def get_flow_summaries(self) -> list[dict[str, Any]]:
        """Lightweight per-flow digests (for map UIs / previews)."""
        with self.telemetry.tracer.span("service.get_flow_summaries") as span:
            summaries = [
                {
                    "flow": index,
                    "segments": list(flow.sids),
                    "endpoints": list(flow.endpoints),
                    "cardinality": flow.trajectory_cardinality,
                    "route_length_m": round(flow.route_length, 1),
                }
                for index, flow in enumerate(self._incremental.flows)
            ]
        self._queries.inc()
        self._query_latency.observe(span.duration)
        self._evaluate_slo()
        return summaries

    def stats(self) -> ServiceStats:
        """Operational counters (a view over the metrics registry)."""
        return ServiceStats(
            batches_ingested=int(self._submitted_batches.value),
            trajectories_ingested=int(self._submitted_trajectories.value),
            queries_served=int(self._queries.value),
            flow_count=len(self._incremental.flows),
            cluster_count=len(self._incremental.clusters),
            shortest_path_computations=self._incremental.engine.computations,
            warm_distance_hits=self._incremental.engine.warm_hits,
            submit_seconds_total=self._submit_latency.sum,
            query_seconds_total=self._query_latency.sum,
            pending_batches=len(self._pending),
            stale_queries=int(self._stale_queries.value),
            rejected_batches=int(self._rejected_batches.value),
            quarantined_trajectories=int(self._quarantined.value),
            overload_rejections=int(self._overload_rejections.value),
            retries=int(self._retries.value),
            breaker_trips=int(self._breaker_open.value),
            deadline_exceeded=int(self._deadline_exceeded.value),
            slo_breaches=int(
                self.telemetry.metrics.value("service.slo_breaches")
            ),
            slo_stale_queries=int(self._slo_stale_queries.value),
        )

    def metrics_snapshot(self) -> dict[str, Any]:
        """The full telemetry snapshot (trace forest + every instrument)."""
        return self.telemetry.snapshot()

    # ------------------------------------------------------------------
    def _deadline_for(
        self, operation: str, deadline_s: float | None
    ) -> Deadline | None:
        budget = deadline_s if deadline_s is not None else self.config.deadline_s
        if budget is None:
            return None
        return Deadline(budget, operation, clock=self._clock)

    def _on_retry(self, attempt: int, delay: float, error: BaseException) -> None:
        self._retries.inc()
        _log.warning(
            "operation retrying",
            attempt=attempt, delay_s=round(delay, 6), error=repr(error),
        )

    def _record_breaker_trip(self) -> None:
        self._breaker_open.inc()
        _log.error("ingest circuit opened", breaker=self.breaker.name)

    # ------------------------------------------------------------------
    # Latency SLO watchdog
    # ------------------------------------------------------------------
    @property
    def effective_max_pending(self) -> int:
        """The admission bound in force right now.

        ``config.max_pending`` normally; halved (floor 1) while the
        ingest latency SLO is breached — the watchdog's load-shedding
        answer to a slow ingest path.
        """
        if self._slo_verdicts.get("ingest", False):
            return max(1, self.config.max_pending // 2)
        return self.config.max_pending

    def _evaluate_slo(self) -> None:
        """One inline watchdog evaluation (no-op without configured rules)."""
        if not self.slo_watchdog.rules:
            return
        self._slo_verdicts = self.slo_watchdog.evaluate()

    def _on_slo_breach(self, rule: SLORule) -> None:
        _log.warning(
            "latency SLO breached",
            rule=rule.name,
            threshold_s=rule.threshold_s,
            quantile=rule.quantile,
        )

    def _on_slo_clear(self, rule: SLORule) -> None:
        _log.info("latency SLO recovered", rule=rule.name)

    def _drain(self, deadline: Deadline | None) -> dict[str, Any]:
        """Process the pending queue oldest-first; ack the last batch done.

        A failing batch stays at the head of the queue (ingestion rolls
        back on failure, so a retry starts clean) and its error
        propagates to the caller.
        """
        ack: dict[str, Any] = {}
        while self._pending:
            batch = self._pending[0]
            self.breaker.check()
            try:
                result = self.retry_policy.call(
                    self._ingest_once,
                    batch,
                    operation="service.ingest",
                    deadline=deadline,
                    sleep=self._sleep,
                    on_retry=self._on_retry,
                )
            except DeadlineExceeded:
                self._deadline_exceeded.inc()
                raise
            except RetriesExhausted:
                self.breaker.record_failure()
                raise
            self.breaker.record_success()
            self._pending.popleft()
            self._pending_gauge.set(len(self._pending))
            self._submitted_batches.inc()
            self._submitted_trajectories.inc(len(batch))
            ack = {
                "batch": result.batch_index,
                "accepted": len(batch),
                "new_flows": len(result.new_flows),
                "total_flows": len(self._incremental.flows),
                "clusters": len(result.clusters),
            }
        self._capture_snapshot()
        return ack

    def _ingest_once(self, batch: list[Trajectory]) -> BatchResult:
        """One ingest attempt, through the ``ingest`` injection point."""
        return self.faults.run(
            "ingest",
            self._incremental.add_batch,
            batch,
            auto_offset_ids=True,
        )

    def _capture_snapshot(self) -> None:
        """Best-effort refresh of the degraded-mode snapshot after ingest.

        Deliberately *not* routed through the ``refresh`` injection point
        — chaos tests arm that against queries; the post-ingest capture
        is what those queries then fall back to.  With a state directory,
        the validated document is also persisted so a restarted service
        can serve it stale; a failed write keeps the in-memory copy (the
        incremental journal is the durable source of truth).
        """
        try:
            self._last_document = self._build_document()
        except Exception as error:  # pragma: no cover - defensive
            _log.warning("post-ingest snapshot failed", error=repr(error))
            return
        if self._documents is None:
            return
        try:
            payload = json.dumps(
                self._last_document, sort_keys=True
            ).encode("utf-8")
            self._documents.write(
                payload, watermark=self._incremental.batch_count
            )
        except Exception as error:
            _log.warning("serving-document persist failed", error=repr(error))

    def _refresh_document(self) -> dict[str, Any]:
        """One query-path refresh attempt (the ``refresh`` injection point)."""
        return self.faults.run("refresh", self._build_document)

    def _build_document(self) -> dict[str, Any]:
        result = self._snapshot()
        validate_result(
            result, self.network, allow_shared_segments=True
        ).raise_if_invalid()
        return result_to_dict(result, network_name=self.network.name)

    def _snapshot(self) -> NEATResult:
        """The service's current state as a NEATResult.

        Delegates to :meth:`IncrementalNEAT.snapshot_result`, the same
        view checkpointing is built on — served and durable state cannot
        drift apart.
        """
        return self._incremental.snapshot_result()

    def checkpoint(self) -> int:
        """Force a snapshot generation of the clustering state now.

        Requires a ``state_dir``; see :meth:`IncrementalNEAT.checkpoint`.
        """
        return self._incremental.checkpoint()

    # ------------------------------------------------------------------
    # Observability plane (/metrics /health /statusz /tracez)
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """The ``/health`` document: admission, breaker and SLO state.

        ``status`` is ``"degraded"`` while the ingest breaker is not
        closed or any latency SLO is breached — still serving (HTTP 200),
        but shedding load or answering stale.
        """
        breaker_state = self.breaker.state
        degraded = (
            breaker_state != CircuitBreaker.CLOSED
            or self.slo_watchdog.breached
        )
        return {
            "status": "degraded" if degraded else "ok",
            "breaker": breaker_state,
            "pending_batches": len(self._pending),
            "max_pending": self.config.max_pending,
            "effective_max_pending": self.effective_max_pending,
            "slo": self.slo_watchdog.snapshot(),
            "flows": len(self._incremental.flows),
            "clusters": len(self._incremental.clusters),
            "has_snapshot": self._last_document is not None,
            "uptime_s": round(self._clock() - self._started_at, 3),
        }

    def statusz(self) -> dict[str, Any]:
        """The ``/statusz`` document: full stats plus effective config."""
        return {
            "stats": asdict(self.stats()),
            "config": {
                key: (value if _json_safe(value) else repr(value))
                for key, value in asdict(self.config).items()
            },
            "network": {
                "name": self.network.name,
                "junctions": self.network.junction_count,
                "segments": self.network.segment_count,
            },
            "batches": self._incremental.batch_count,
            "uptime_s": round(self._clock() - self._started_at, 3),
        }

    def serve_obs(
        self, port: int = 0, host: str = "127.0.0.1"
    ) -> ObservabilityServer:
        """Start (or return) the HTTP observability plane for this service.

        Binds ``host:port`` (``port=0`` picks an ephemeral port — read it
        back from the returned server's ``.port``) and serves
        ``/metrics``, ``/health``, ``/statusz`` and ``/tracez`` from this
        service's telemetry on daemon threads.  Idempotent while running.
        """
        if self._obs_server is not None and self._obs_server.running:
            return self._obs_server
        self._obs_server = ObservabilityServer(
            self.telemetry,
            health=self.health,
            statusz=self.statusz,
            host=host,
            port=port,
        )
        return self._obs_server.start()

    def stop_obs(self) -> None:
        """Stop the observability plane if it is running (idempotent)."""
        if self._obs_server is not None:
            self._obs_server.stop()
            self._obs_server = None


def _json_safe(value: Any) -> bool:
    """Whether ``value`` survives strict JSON round-tripping as-is."""
    if isinstance(value, float):
        return math.isfinite(value)
    return isinstance(value, (bool, int, str, type(None)))
