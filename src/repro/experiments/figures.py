"""One driver per paper table/figure.

Each ``run_*`` function regenerates the data behind one table or figure of
the paper's evaluation (Section IV) on the scaled synthetic workloads and
returns a result object whose ``render()`` produces the "paper vs
measured" text the benchmark modules print.  ``EXPERIMENTS.md`` records
one captured rendering per experiment.

Absolute numbers differ from the paper by design (CPython vs Java, scaled
synthetic maps vs USGS/TIGER extracts); the *shapes* — who wins, scaling
curves, crossovers — are the reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.metrics import ComparisonRow, compare_results
from ..analysis.visualize import render_svg
from ..core.config import NEATConfig
from ..core.pipeline import NEAT
from ..roadnet.stats import NetworkStats, format_table1, network_stats
from ..traclus.network_variant import network_traclus
from ..traclus.traclus import TraClus, TraClusParams
from .harness import format_seconds, format_table, timed
from .workloads import (
    BENCH_OBJECT_COUNTS,
    PAPER_TABLE2_POINTS,
    REGIONS,
    WorkloadSpec,
    build_dataset,
    build_network,
    build_suite,
)

#: Phase 3 distance thresholds per region at the default network scales.
#: Chosen small relative to the scaled maps' extent so the ELB filter has
#: real pruning power (as on the paper's full-size maps); Figure 3's
#: hotspot-merging visualization passes its own larger radius, mirroring
#: the paper's eps = 6500 m choice there.
DEFAULT_EPS = {"ATL": 800.0, "SJ": 800.0, "MIA": 1000.0}

#: Figure 3 merges flows between hotspot areas, which needs a generous
#: radius (the paper uses 6500 m on full-size ATL).  1600 m at the 0.1
#: default scale reproduces the paper's two-cluster outcome.
FIG3_EPS = 1600.0


def _neat_config(region: str, eps: float | None = None, use_elb: bool = True) -> NEATConfig:
    """The experiment-default NEAT configuration for a region."""
    return NEATConfig(
        eps=eps if eps is not None else DEFAULT_EPS[region],
        use_elb=use_elb,
    )


# ----------------------------------------------------------------------
# Table I — road networks
# ----------------------------------------------------------------------

PAPER_TABLE1 = (
    ("North West Atlanta, GA", "1384.4km", 9187, 6979, "150.7m", "avg: 2.6, max: 6"),
    ("West San Jose, CA", "1821.2km", 14600, 10929, "124.7m", "avg: 2.7, max: 6"),
    ("Miami-Dade, FL", "26148.3km", 154681, 103377, "169.0m", "avg: 3.0, max: 9"),
)


@dataclass
class Table1Result:
    """Measured network statistics next to the paper's Table I."""

    stats: list[NetworkStats]

    def render(self) -> str:
        lines = ["Paper (Table I):"]
        lines.append(
            format_table(
                ("Regions", "Total length", "# Segments", "# Junctions",
                 "Avg. seg len", "Junction degree"),
                PAPER_TABLE1,
            )
        )
        lines.append("")
        lines.append("Measured (synthetic, scaled):")
        lines.append(format_table1(self.stats))
        return "\n".join(lines)


def run_table1(network_scale: float | None = None, seed: int = 7) -> Table1Result:
    """Regenerate Table I for the three synthetic region networks."""
    stats = [
        network_stats(build_network(region, network_scale, seed))
        for region in REGIONS
    ]
    return Table1Result(stats)


# ----------------------------------------------------------------------
# Table II — dataset sizes
# ----------------------------------------------------------------------

@dataclass
class Table2Result:
    """Measured dataset point counts next to the paper's Table II."""

    object_counts: tuple[int, ...]
    points: dict[str, list[int]]

    def render(self) -> str:
        header = ["Datasets"] + list(self.points)
        rows = []
        for i, count in enumerate(self.object_counts):
            rows.append(
                [f"*{count}"] + [str(self.points[r][i]) for r in self.points]
            )
        paper_rows = [
            [f"*{count}"] + [str(PAPER_TABLE2_POINTS[r][i]) for r in PAPER_TABLE2_POINTS]
            for i, count in enumerate((500, 1000, 2000, 3000, 5000))
        ]
        return (
            "Paper (Table II, # points):\n"
            + format_table(["Datasets", "ATL", "SJ", "MIA"], paper_rows)
            + "\n\nMeasured (scaled workloads, # points):\n"
            + format_table(header, rows)
        )


def run_table2(
    object_counts: tuple[int, ...] = BENCH_OBJECT_COUNTS, seed: int = 7
) -> Table2Result:
    """Regenerate Table II: total points per (region, object count)."""
    points: dict[str, list[int]] = {}
    for region in REGIONS:
        _network, datasets = build_suite(region, object_counts, seed=seed)
        points[region] = [ds.total_points for ds in datasets]
    return Table2Result(object_counts, points)


# ----------------------------------------------------------------------
# Figure 3 — visualization of NEAT results on ATL500
# ----------------------------------------------------------------------

@dataclass
class Fig3Result:
    """ATL500 clustering visualization artifacts and headline counts."""

    dataset_name: str
    trajectory_count: int
    flow_count: int
    noise_flow_count: int
    min_card_used: int
    cluster_count: int
    svg_paths: list[Path] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            "Paper (Figure 3, ATL500): 500 trajectories -> 31 flow clusters "
            "(minCard = 5 = avg cardinality) -> 2 final clusters (eps = 6500 m)",
            f"Measured ({self.dataset_name}): {self.trajectory_count} trajectories -> "
            f"{self.flow_count} flow clusters (minCard = {self.min_card_used} = "
            f"avg cardinality, +{self.noise_flow_count} filtered) -> "
            f"{self.cluster_count} final clusters",
        ]
        for path in self.svg_paths:
            lines.append(f"  wrote {path}")
        return "\n".join(lines)


def run_fig3(
    out_dir: str | Path | None = None,
    object_count: int = 500,
    eps: float | None = None,
    seed: int = 7,
) -> Fig3Result:
    """Regenerate Figure 3: input, flow clusters, refined clusters (SVG)."""
    spec = WorkloadSpec("ATL", object_count, seed=seed)
    network = build_network("ATL", seed=seed)
    dataset = build_dataset(network, spec)
    neat = NEAT(network, _neat_config("ATL", FIG3_EPS if eps is None else eps))
    result = neat.run_opt(dataset)

    fig = Fig3Result(
        dataset_name=spec.name,
        trajectory_count=len(dataset),
        flow_count=result.flow_count,
        noise_flow_count=len(result.noise_flows),
        min_card_used=result.min_card_used,
        cluster_count=result.cluster_count,
    )
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        destinations = dataset.metadata.get("destinations", [])
        fig.svg_paths = [
            render_svg(network, out / "fig3a_input.svg",
                       trajectories=dataset.trajectories, markers=destinations),
            render_svg(network, out / "fig3b_flows.svg",
                       flows=result.flows, markers=destinations),
            render_svg(network, out / "fig3c_clusters.svg",
                       clusters=result.clusters, markers=destinations),
        ]
    return fig


# ----------------------------------------------------------------------
# Figure 4 — TraClus on ATL500 under two parameterizations
# ----------------------------------------------------------------------

@dataclass
class Fig4Result:
    """TraClus cluster counts for the paper's two parameter choices."""

    rows: list[tuple[str, float, int, int, float]]  # label, eps, min_lns, clusters, secs
    svg_paths: list[Path] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            "Paper (Figure 4, ATL500): eps=10m/MinLns=30 -> 81 clusters; "
            "eps=1m/MinLns=1 -> 460 discrete clusters",
            format_table(
                ("setting", "eps", "MinLns", "clusters", "time"),
                [
                    (label, eps, min_lns, clusters, format_seconds(seconds))
                    for label, eps, min_lns, clusters, seconds in self.rows
                ],
            ),
        ]
        for path in self.svg_paths:
            lines.append(f"  wrote {path}")
        return "\n".join(lines)


def run_fig4(
    object_count: int = 100,
    tuned: tuple[float, int] = (10.0, 8),
    degenerate: tuple[float, int] = (1.0, 1),
    seed: int = 7,
) -> Fig4Result:
    """Regenerate Figure 4: TraClus under tuned vs degenerate parameters.

    The degenerate setting (tiny eps, MinLns=1) shatters the data into
    many short discrete clusters, the tuned one finds fewer, denser ones —
    and neither captures route continuity.  ``MinLns`` scales with the
    (scaled-down) object count.
    """
    spec = WorkloadSpec("ATL", object_count, seed=seed)
    network = build_network("ATL", seed=seed)
    dataset = build_dataset(network, spec)

    rows = []
    for label, (eps, min_lns) in (("tuned", tuned), ("degenerate", degenerate)):
        result, seconds = timed(
            lambda e=eps, m=min_lns: TraClus(TraClusParams(eps=e, min_lns=m)).run(dataset)
        )
        rows.append((label, eps, min_lns, result.cluster_count, seconds))
    return Fig4Result(rows)


# ----------------------------------------------------------------------
# Figure 5 — flow-NEAT vs TraClus across ATL dataset sizes
# ----------------------------------------------------------------------

@dataclass
class Fig5Result:
    """The four panels of Figure 5 as one row per dataset size."""

    rows: list[ComparisonRow]

    def render(self) -> str:
        header = (
            "dataset", "points",
            "NEAT avg rt(m)", "TraClus avg rt(m)",
            "NEAT max rt(m)", "TraClus max rt(m)",
            "NEAT #cl", "TraClus #cl",
            "NEAT time", "TraClus time", "speedup",
        )
        body = [
            (
                row.dataset, row.points,
                f"{row.neat_avg_route_m:.0f}", f"{row.traclus_avg_route_m:.0f}",
                f"{row.neat_max_route_m:.0f}", f"{row.traclus_max_route_m:.0f}",
                row.neat_clusters, row.traclus_clusters,
                format_seconds(row.neat_seconds),
                format_seconds(row.traclus_seconds),
                f"{row.speedup:.0f}x",
            )
            for row in self.rows
        ]
        return (
            "Paper (Figure 5, ATL): flow-NEAT routes are longer (5a/5b), "
            "clusters fewer (5c), and NEAT runs >1000x faster (5d, semi-log)\n"
            + format_table(header, body)
        )


def run_fig5(
    object_counts: tuple[int, ...] = (50, 100, 200),
    traclus_params: TraClusParams | None = None,
    seed: int = 7,
) -> Fig5Result:
    """Regenerate Figure 5: flow-NEAT vs TraClus on growing ATL datasets.

    TraClus is O(n^2) in line segments, so the default sweep stops at 200
    objects; pass larger counts to push the gap further (it only grows).
    """
    network, datasets = build_suite("ATL", object_counts, seed=seed)
    params = traclus_params if traclus_params is not None else TraClusParams(
        eps=10.0, min_lns=5
    )
    rows = []
    for dataset in datasets:
        neat = NEAT(network, _neat_config("ATL"))
        neat_result = neat.run_flow(dataset)
        traclus_result = TraClus(params).run(dataset)
        row = compare_results(
            dataset.name, dataset.total_points, neat_result, traclus_result
        )
        rows.append(row)
    return Fig5Result(rows)


# ----------------------------------------------------------------------
# Figure 6 — NEAT phase scaling
# ----------------------------------------------------------------------

@dataclass
class Fig6Result:
    """Runtimes of base/flow/opt-NEAT and the Phase1:Phase2 ratio."""

    region: str
    rows: list[tuple[str, int, float, float, float, float, float]]
    # (dataset, points, base_s, flow_s, opt_s, phase1_s, phase2_s)

    def render(self) -> str:
        header = (
            "dataset", "points", "base-NEAT", "flow-NEAT", "opt-NEAT",
            "phase1", "phase2", "p1/p2",
        )
        body = [
            (
                name, points,
                format_seconds(base_s), format_seconds(flow_s),
                format_seconds(opt_s), format_seconds(p1), format_seconds(p2),
                f"{(p1 / p2):.1f}" if p2 > 0 else "inf",
            )
            for name, points, base_s, flow_s, opt_s, p1, p2 in self.rows
        ]
        return (
            f"Paper (Figure 6, {self.region}): near-linear scaling; opt-NEAT "
            "curve nearly overlaps flow-NEAT (Phase 3 cheap); Phase 1 "
            "dominates Phase 2\n" + format_table(header, body)
        )


def run_fig6(
    region: str = "MIA",
    object_counts: tuple[int, ...] = BENCH_OBJECT_COUNTS,
    seed: int = 7,
) -> Fig6Result:
    """Regenerate Figure 6: per-variant runtimes across dataset sizes."""
    network, datasets = build_suite(region, object_counts, seed=seed)
    rows = []
    for dataset in datasets:
        neat = NEAT(network, _neat_config(region))
        base_result, base_seconds = timed(lambda: neat.run_base(dataset))
        flow_result, flow_seconds = timed(lambda: neat.run_flow(dataset))
        opt_result, opt_seconds = timed(lambda: neat.run_opt(dataset))
        rows.append(
            (
                dataset.name,
                dataset.total_points,
                base_seconds,
                flow_seconds,
                opt_seconds,
                opt_result.timings.base,
                opt_result.timings.flow,
            )
        )
    return Fig6Result(region, rows)


# ----------------------------------------------------------------------
# Figure 7 + Table III — ELB effectiveness and flow counts
# ----------------------------------------------------------------------

@dataclass
class Fig7Result:
    """opt-NEAT with ELB vs with exhaustive Dijkstra, per dataset size."""

    region: str
    rows: list[tuple[str, int, int, float, float, int, int]]
    # (dataset, points, flows, elb_total_s, dijkstra_total_s, sp_elb, sp_dijkstra)

    def render(self) -> str:
        header = (
            "dataset", "points", "#flows", "opt-NEAT-ELB", "opt-NEAT-Dijkstra",
            "SP(ELB)", "SP(Dijkstra)",
        )
        body = [
            (
                name, points, flows,
                format_seconds(elb_s), format_seconds(dij_s), sp_elb, sp_dij,
            )
            for name, points, flows, elb_s, dij_s, sp_elb, sp_dij in self.rows
        ]
        return (
            f"Paper (Figure 7, {self.region}): ELB prunes most shortest-path "
            "computations; Phase 3 cost tracks the number of flows, not the "
            "data size (Table III)\n" + format_table(header, body)
        )

    def flow_counts(self) -> list[tuple[str, int]]:
        """The Table III series: flows per dataset."""
        return [(name, flows) for name, _p, flows, *_rest in self.rows]


def run_fig7(
    region: str = "SJ",
    object_counts: tuple[int, ...] = BENCH_OBJECT_COUNTS,
    seed: int = 7,
) -> Fig7Result:
    """Regenerate Figure 7: ELB on vs off, plus Table III flow counts."""
    network, datasets = build_suite(region, object_counts, seed=seed)
    rows = []
    for dataset in datasets:
        neat_elb = NEAT(network, _neat_config(region, use_elb=True))
        elb_result, elb_seconds = timed(lambda: neat_elb.run_opt(dataset))
        neat_dij = NEAT(network, _neat_config(region, use_elb=False))
        dij_result, dij_seconds = timed(lambda: neat_dij.run_opt(dataset))
        rows.append(
            (
                dataset.name,
                dataset.total_points,
                elb_result.flow_count,
                elb_seconds,
                dij_seconds,
                elb_result.refinement_stats.shortest_path_computations,
                dij_result.refinement_stats.shortest_path_computations,
            )
        )
    return Fig7Result(region, rows)


@dataclass
class Table3Result:
    """Flow-cluster counts of opt-NEAT on SJ datasets (Table III)."""

    rows: list[tuple[str, int]]

    def render(self) -> str:
        paper = (("SJ500", 73), ("SJ1000", 156), ("SJ2000", 55),
                 ("SJ3000", 52), ("SJ5000", 180))
        return (
            "Paper (Table III): "
            + ", ".join(f"{name}={count}" for name, count in paper)
            + "\nMeasured: "
            + ", ".join(f"{name}={count}" for name, count in self.rows)
            + "\n(The paper's point: flow count is workload-dependent and "
            "non-monotonic in dataset size; Phase 3 cost follows it.)"
        )


def run_table3(
    object_counts: tuple[int, ...] = BENCH_OBJECT_COUNTS, seed: int = 7
) -> Table3Result:
    """Regenerate Table III from the Figure 7 sweep on SJ."""
    fig7 = run_fig7("SJ", object_counts, seed=seed)
    return Table3Result(fig7.flow_counts())


# ----------------------------------------------------------------------
# Section IV-C text experiment — the network-aware TraClus variant
# ----------------------------------------------------------------------

@dataclass
class VariantResult:
    """Network-aware TraClus variant vs NEAT on one dataset."""

    dataset_name: str
    t_fragments: int
    base_clusters: int
    variant_clusters: int
    variant_seconds: float
    variant_sp: int
    neat_flows: int
    neat_clusters: int
    neat_seconds: float

    def render(self) -> str:
        return (
            "Paper (Sec IV-C, SJ2000): variant TraClus on 901 base clusters -> "
            "117 clusters in 6396.79s; NEAT -> 42 flows + 14 clusters in 11.68s\n"
            f"Measured ({self.dataset_name}): {self.base_clusters} base clusters "
            f"({self.t_fragments} t-fragments); variant -> "
            f"{self.variant_clusters} clusters in "
            f"{format_seconds(self.variant_seconds)} ({self.variant_sp} shortest "
            f"paths); NEAT -> {self.neat_flows} flows + {self.neat_clusters} "
            f"clusters in {format_seconds(self.neat_seconds)}"
        )


def run_variant(
    object_count: int = 200, eps: float = 150.0, seed: int = 7
) -> VariantResult:
    """Regenerate the Section IV-C network-aware TraClus comparison."""
    spec = WorkloadSpec("SJ", object_count, seed=seed)
    network = build_network("SJ", seed=seed)
    dataset = build_dataset(network, spec)

    neat = NEAT(network, _neat_config("SJ"))
    neat_result, neat_seconds = timed(lambda: neat.run_opt(dataset))

    fragments = sum(len(flow) for flow in neat_result.flows) + sum(
        len(flow) for flow in neat_result.noise_flows
    )
    variant, variant_seconds = timed(
        lambda: network_traclus(network, neat_result.base_clusters, eps=eps, min_lns=2)
    )
    return VariantResult(
        dataset_name=spec.name,
        t_fragments=sum(bc.density for bc in neat_result.base_clusters),
        base_clusters=len(neat_result.base_clusters),
        variant_clusters=variant.cluster_count,
        variant_seconds=variant_seconds,
        variant_sp=variant.shortest_path_computations,
        neat_flows=neat_result.flow_count,
        neat_clusters=neat_result.cluster_count,
        neat_seconds=neat_seconds,
    )
