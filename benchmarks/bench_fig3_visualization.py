"""Figure 3: visualization of NEAT clustering results on ATL500.

Runs the full three-phase pipeline on the ATL500-equivalent workload,
writes the three SVG panels (input trajectories, flow clusters, final
clusters) to ``benchmarks/output/`` and reports the headline counts the
paper quotes (31 flows at minCard = average cardinality; 2 final clusters
at the hotspot-merging eps).
"""

from __future__ import annotations

from conftest import OUTPUT_DIR

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.experiments.figures import FIG3_EPS, run_fig3
from repro.experiments.workloads import WorkloadSpec, build_dataset, build_network


def bench_fig3_opt_neat_atl500(benchmark, emit):
    """Time opt-NEAT on ATL500; write the three Figure 3 SVG panels."""
    network = build_network("ATL")
    dataset = build_dataset(network, WorkloadSpec("ATL", 500))
    neat = NEAT(network, NEATConfig(eps=FIG3_EPS))
    result = benchmark.pedantic(
        lambda: neat.run_opt(dataset), rounds=3, iterations=1
    )
    assert result.cluster_count >= 1

    fig = run_fig3(out_dir=OUTPUT_DIR)
    emit("fig3_visualization", fig.render())
