"""Tests for the command-line interface."""

from __future__ import annotations

import json
import logging

import pytest

from repro.cli import main
from repro.obs.logging import _HANDLER_MARK


@pytest.fixture(autouse=True)
def _drop_cli_log_handlers():
    """main() configures repro logging; detach handlers bound to capsys."""
    yield
    root = logging.getLogger("repro")
    for handler in [h for h in root.handlers if getattr(h, _HANDLER_MARK, False)]:
        root.removeHandler(handler)
    root.setLevel(logging.WARNING)


@pytest.fixture
def saved_network(tmp_path):
    path = tmp_path / "net.json"
    assert main([
        "generate-network", "--region", "ATL", "--scale", "0.03",
        "--out", str(path),
    ]) == 0
    return path


@pytest.fixture
def saved_traces(tmp_path, saved_network):
    path = tmp_path / "traces.json"
    assert main([
        "simulate", "--network", str(saved_network),
        "--objects", "30", "--out", str(path),
    ]) == 0
    return path


class TestGenerateNetwork:
    def test_writes_valid_json(self, saved_network):
        data = json.loads(saved_network.read_text())
        assert data["format"] == "repro-roadnet"
        assert data["segments"]

    def test_output_message(self, saved_network, capsys):
        main(["stats", str(saved_network)])
        out = capsys.readouterr().out
        assert "Regions" in out


class TestSimulate:
    def test_writes_traces(self, saved_traces):
        data = json.loads(saved_traces.read_text())
        assert data["format"] == "repro-trajectories"
        assert len(data["trajectories"]) > 0

    def test_seed_controls_output(self, tmp_path, saved_network):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["simulate", "--network", str(saved_network), "--objects", "10",
              "--seed", "1", "--out", str(a)])
        main(["simulate", "--network", str(saved_network), "--objects", "10",
              "--seed", "1", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestCluster:
    def test_opt_mode(self, saved_network, saved_traces, capsys):
        code = main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--mode", "opt",
            "--eps", "500", "--min-card", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "NEAT[opt]" in out
        assert "flow 0:" in out

    def test_svg_output(self, saved_network, saved_traces, tmp_path, capsys):
        svg = tmp_path / "map.svg"
        main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--svg", str(svg),
            "--min-card", "0",
        ])
        assert svg.exists()
        assert svg.read_text().startswith("<svg")

    def test_weight_flags(self, saved_network, saved_traces, capsys):
        code = main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces),
            "--wq", "1.0", "--wk", "0.0", "--wv", "0.0", "--min-card", "0",
        ])
        assert code == 0

    def test_json_output_is_single_document(
        self, saved_network, saved_traces, capsys
    ):
        code = main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--mode", "opt",
            "--min-card", "0", "--json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["mode"] == "opt"
        assert document["flows"]
        assert document["network_name"]

    def test_metrics_out_writes_snapshot(
        self, saved_network, saved_traces, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.json"
        code = main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--mode", "opt",
            "--min-card", "0", "--metrics-out", str(metrics),
        ])
        assert code == 0
        snapshot = json.loads(metrics.read_text())
        assert snapshot["trace"][0]["name"] == "neat.run"
        counters = snapshot["metrics"]["counters"]
        assert counters["neat.phase1.t_fragments"] > 0
        assert "neat.phase3.pair_checks" in counters


class TestLoggingFlags:
    def test_log_level_emits_run_records(
        self, saved_network, saved_traces, capsys
    ):
        code = main([
            "--log-level", "INFO",
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--min-card", "0",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "event=" in err
        assert "run complete" in err

    def test_log_json_emits_json_lines(
        self, saved_network, saved_traces, capsys
    ):
        code = main([
            "--log-level", "INFO", "--log-json",
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--min-card", "0",
        ])
        assert code == 0
        lines = [
            line for line in capsys.readouterr().err.splitlines() if line
        ]
        records = [json.loads(line) for line in lines]
        assert any(r["event"] == "run complete" for r in records)

    def test_default_level_is_quiet(self, saved_network, saved_traces, capsys):
        main([
            "cluster", "--network", str(saved_network),
            "--traces", str(saved_traces), "--min-card", "0",
        ])
        assert "run complete" not in capsys.readouterr().err


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])
