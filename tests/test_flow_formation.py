"""Unit tests for Phase 2 flow cluster formation."""

from __future__ import annotations

import math

import pytest

from repro.core.base_cluster import form_base_clusters
from repro.core.config import (
    NEATConfig,
    PRESET_DENSEST,
    PRESET_FASTEST,
    PRESET_MAX_FLOW,
)
from repro.core.flow_formation import (
    _apply_domination,
    form_flow_clusters,
)
from repro.roadnet.builder import network_from_edges

from conftest import trajectory_through


def config(min_card: int = 0, **kwargs) -> NEATConfig:
    return NEATConfig(min_card=min_card, **kwargs)


class TestBasicFormation:
    def test_single_stream_single_flow(self, line3):
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(4)]
        clusters = form_base_clusters(line3, trs)
        result = form_flow_clusters(line3, clusters, config())
        assert len(result.flows) == 1
        flow = result.flows[0]
        assert set(flow.sids) == {0, 1, 2}
        assert line3.is_route(flow.sids)
        assert flow.trajectory_cardinality == 4

    def test_every_base_cluster_assigned(self, star4):
        trs = [
            trajectory_through(star4, 0, [0, 1]),
            trajectory_through(star4, 1, [2, 3]),
        ]
        clusters = form_base_clusters(star4, trs)
        result = form_flow_clusters(star4, clusters, config())
        assigned = [sid for flow in result.all_flows for sid in flow.sids]
        assert sorted(assigned) == sorted(c.sid for c in clusters)
        # No base cluster in two flows.
        assert len(assigned) == len(set(assigned))

    def test_disjoint_streams_get_separate_flows(self, star4):
        trs = [
            trajectory_through(star4, 0, [0, 1]),
            trajectory_through(star4, 1, [0, 1]),
            trajectory_through(star4, 2, [2, 3]),
        ]
        clusters = form_base_clusters(star4, trs)
        result = form_flow_clusters(star4, clusters, config())
        assert len(result.flows) == 2
        routes = sorted(tuple(sorted(f.sids)) for f in result.flows)
        assert routes == [(0, 1), (2, 3)]

    def test_deterministic_over_runs(self, small_workload):
        network, dataset = small_workload
        clusters1 = form_base_clusters(network, dataset.trajectories)
        clusters2 = form_base_clusters(network, dataset.trajectories)
        result1 = form_flow_clusters(network, clusters1, config())
        result2 = form_flow_clusters(network, clusters2, config())
        assert [f.sids for f in result1.flows] == [f.sids for f in result2.flows]

    def test_empty_input(self, line3):
        result = form_flow_clusters(line3, [], config())
        assert result.flows == [] and result.noise_flows == []


class TestMinCard:
    def test_explicit_threshold_filters(self, star4):
        trs = [trajectory_through(star4, i, [0, 1]) for i in range(5)]
        trs.append(trajectory_through(star4, 9, [2, 3]))
        clusters = form_base_clusters(star4, trs)
        result = form_flow_clusters(star4, clusters, config(min_card=3))
        assert len(result.flows) == 1
        assert result.flows[0].trajectory_cardinality == 5
        assert len(result.noise_flows) == 1
        assert result.min_card_used == 3

    def test_auto_threshold_uses_mean(self, star4):
        trs = [trajectory_through(star4, i, [0, 1]) for i in range(5)]
        trs.append(trajectory_through(star4, 9, [2, 3]))
        clusters = form_base_clusters(star4, trs)
        result = form_flow_clusters(star4, clusters, NEATConfig(min_card=None))
        # Mean cardinality of flows {5, 1} -> threshold 3 -> one kept.
        assert result.min_card_used == 3
        assert len(result.flows) == 1

    def test_zero_threshold_keeps_all(self, star4):
        trs = [
            trajectory_through(star4, 0, [0, 1]),
            trajectory_through(star4, 1, [2, 3]),
        ]
        clusters = form_base_clusters(star4, trs)
        result = form_flow_clusters(star4, clusters, config(min_card=0))
        assert result.noise_flows == []


class TestSeedSelection:
    def test_densest_seed_first(self, star4):
        # The dense stream (0,1) must seed the first flow even though
        # another stream exists.
        trs = [trajectory_through(star4, i, [0, 1]) for i in range(4)]
        trs += [trajectory_through(star4, 10 + i, [2, 3]) for i in range(2)]
        clusters = form_base_clusters(star4, trs)
        result = form_flow_clusters(star4, clusters, config())
        assert set(result.flows[0].sids) == {0, 1}


class TestWeights:
    def _y_network(self):
        """A fork: stem 0-1, branches to 2 (fast, sparse) and 3 (slow, dense)."""
        net = network_from_edges(
            [(0, 0), (100, 0), (200, 50), (200, -50)],
            [(0, 1)],
        )
        fast = net.add_segment(1, 2, speed_limit=30.0)
        slow = net.add_segment(1, 3, speed_limit=10.0)
        return net, 0, fast, slow

    def test_max_flow_weighting_follows_traffic(self):
        net, stem, fast, slow = self._y_network()
        trs = [trajectory_through(net, i, [stem, slow]) for i in range(3)]
        trs.append(trajectory_through(net, 9, [stem, fast]))
        clusters = form_base_clusters(net, trs)
        result = form_flow_clusters(
            net, clusters, NEATConfig(wq=1.0, wk=0.0, wv=0.0, min_card=0)
        )
        # With pure flow weighting the seed flow follows the 3 objects.
        assert slow in result.flows[0].sids

    def test_speed_weighting_prefers_fast_road(self):
        net, stem, fast, slow = self._y_network()
        # Equal traffic on both branches so only speed discriminates.
        trs = [trajectory_through(net, i, [stem, slow]) for i in range(2)]
        trs += [trajectory_through(net, 10 + i, [stem, fast]) for i in range(2)]
        clusters = form_base_clusters(net, trs)
        result = form_flow_clusters(
            net, clusters, NEATConfig(wq=0.0, wk=0.0, wv=1.0, min_card=0)
        )
        assert fast in result.flows[0].sids

    def test_density_weighting_prefers_dense_neighbor(self):
        net, stem, fast, slow = self._y_network()
        # One trajectory continues to `fast`, but `slow` is denser thanks
        # to extra traffic that does not reach the stem.
        trs = [trajectory_through(net, 0, [stem, fast])]
        trs.append(trajectory_through(net, 1, [stem, slow]))
        trs += [trajectory_through(net, 10 + i, [slow]) for i in range(3)]
        clusters = form_base_clusters(net, trs)
        result = form_flow_clusters(
            net, clusters, NEATConfig(wq=0.0, wk=1.0, wv=0.0, min_card=0)
        )
        assert slow in result.flows[0].sids

    @pytest.mark.parametrize(
        "preset", [PRESET_MAX_FLOW, PRESET_DENSEST, PRESET_FASTEST]
    )
    def test_presets_run(self, preset, small_workload):
        from dataclasses import replace

        network, dataset = small_workload
        clusters = form_base_clusters(network, dataset.trajectories)
        result = form_flow_clusters(
            network, clusters, replace(preset, min_card=0)
        )
        assert result.all_flows


class TestDomination:
    def _clusters(self, star4, spread):
        """Build S (sid 0) with neighbors sid 1, 2, 3 at the center.

        ``spread`` maps sid -> list of trids travelling stem+branch.
        """
        trs = []
        trid = 0
        for sid, count in spread.items():
            for _ in range(count):
                trs.append(trajectory_through(star4, trid, [0, sid]))
                trid += 1
        return form_base_clusters(star4, trs)

    def test_beta_inf_keeps_all(self, star4):
        clusters = self._clusters(star4, {1: 3, 2: 1})
        by_sid = {c.sid: c for c in clusters}
        kept = _apply_domination(
            by_sid[0], [by_sid[1], by_sid[2]], beta=math.inf
        )
        assert {c.sid for c in kept} == {1, 2}

    def test_dominating_pair_removed(self, star4):
        # Neighbors 1 and 2 share heavy mutual traffic (trajectories that
        # run 1 -> 2 without using the frontier's own flows dominating).
        trs = []
        # Frontier S = segment 0 with its own participants.
        trs += [trajectory_through(star4, i, [0, 3]) for i in range(2)]
        # One shared trajectory between S and each of 1, 2 (f(S,1)=f(S,2)=1)
        trs.append(trajectory_through(star4, 10, [0, 1]))
        trs.append(trajectory_through(star4, 11, [0, 2]))
        # Massive 1 <-> 2 flow: f(1,2) = 5 dominates maxFlow(S) = 1.
        trs += [trajectory_through(star4, 20 + i, [1, 2]) for i in range(5)]
        clusters = form_base_clusters(star4, trs)
        by_sid = {c.sid: c for c in clusters}
        # maxFlow(S) = f(S, S3) = 2; f(S1, S2) = 5; 5/2 >= beta = 2.
        kept = _apply_domination(
            by_sid[0], [by_sid[1], by_sid[2], by_sid[3]], beta=2.0
        )
        assert {c.sid for c in kept} == {3}

    def test_formation_with_beta_separates_dominant_flow(self, star4):
        # The paper's motivating example: f(S,S1)=5, f(S,S2)=2, f(S1,S2)=50.
        # With beta small, S must not grab S1; the S1-S2 stream forms its
        # own flow.
        trs = []
        trid = 0
        for _ in range(5):
            trs.append(trajectory_through(star4, trid, [0, 1])); trid += 1
        for _ in range(2):
            trs.append(trajectory_through(star4, trid, [0, 2])); trid += 1
        for _ in range(50):
            trs.append(trajectory_through(star4, trid, [1, 2])); trid += 1
        # Extra solo traffic makes S (segment 0) the dense-core, so it is
        # the flow being expanded when the domination question arises.
        for _ in range(60):
            trs.append(trajectory_through(star4, trid, [0])); trid += 1
        clusters = form_base_clusters(star4, trs)
        result = form_flow_clusters(
            star4, clusters, NEATConfig(beta=5.0, min_card=0, wq=1.0, wk=0.0, wv=0.0)
        )
        routes = [tuple(sorted(f.sids)) for f in result.all_flows]
        assert (1, 2) in routes  # the dominant stream survives as a flow
        # Without domination handling, S would swallow S1 instead.
        greedy = form_flow_clusters(
            star4,
            form_base_clusters(star4, trs),
            NEATConfig(beta=math.inf, min_card=0, wq=1.0, wk=0.0, wv=0.0),
        )
        greedy_routes = [tuple(sorted(f.sids)) for f in greedy.all_flows]
        assert (1, 2) not in greedy_routes
