"""WorkerPool lifecycle: reuse, resources, crashes, shutdown, no leaks.

The persistent pool replaces the old executor-per-call fan-out; these
tests pin the lifecycle guarantees the zero-copy core depends on:
workers are reused across batches, registering new shared resources
restarts them exactly once, a crashed batch recovers (retry, then
inline fallback) without wrong answers, shutdown is idempotent, and no
shared-memory segment outlives its owner.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro import parallel
from repro.parallel import (
    WorkerPool,
    available_cpus,
    csr_resource,
    get_pool,
    map_chunked,
    map_flat,
    pool_counters,
    resolve_workers,
    shared_object,
    shutdown_pool,
)
from repro.roadnet import GridConfig, generate_grid_network

_PARENT_PID = os.getpid()


def _double_chunk(chunk):
    return [2 * x for x in chunk]


def _lookup_chunk(table, chunk):
    return [table[x] for x in chunk]


def _crash_in_worker_chunk(chunk):
    """Dies in any pool worker; computes normally in the parent.

    The pid guard matters: after two crashed attempts the pool falls
    back to inline execution in the parent, which must not be killed.
    """
    if os.getpid() != _PARENT_PID:
        os._exit(1)
    return [x + 1 for x in chunk]


def _pair_distance_kernel(graph, view, lo, hi):
    return [
        graph.bidirectional_distance_counted(view[i], view[i + 1])
        for i in range(lo, hi, 2)
    ]


@pytest.fixture(autouse=True)
def _clean_pool():
    """Every test starts and ends without a live global pool."""
    shutdown_pool()
    yield
    shutdown_pool()


def _delta(before: dict, name: str) -> int:
    return pool_counters()[name] - before[name]


class TestAffinityAwareResolution:
    def test_available_cpus_positive(self):
        assert available_cpus() >= 1

    def test_auto_uses_affinity_not_machine_count(self):
        # On Linux the affinity mask is authoritative; auto must agree
        # with it even when os.cpu_count() reports more.
        try:
            affinity = len(os.sched_getaffinity(0))
        except (AttributeError, OSError):
            pytest.skip("no sched_getaffinity on this platform")
        if hasattr(os, "process_cpu_count"):
            assert resolve_workers(None) == os.process_cpu_count()
        else:
            assert resolve_workers(None) == affinity


class TestPoolReuse:
    def test_batches_reuse_workers(self):
        before = pool_counters()
        items = list(range(20))
        first = map_chunked(_double_chunk, items, workers=2, min_items_per_worker=1)
        second = map_chunked(_double_chunk, items, workers=2, min_items_per_worker=1)
        assert first == second == [2 * x for x in items]
        assert _delta(before, "pool.starts") == 1
        assert _delta(before, "pool.batches") == 2
        assert _delta(before, "pool.reuses") == 1
        assert _delta(before, "pool.bytes_shipped") > 0

    def test_get_pool_is_singleton_and_grows(self):
        pool = get_pool(2)
        assert get_pool() is pool
        get_pool(3)
        assert pool.max_workers == 3
        get_pool(2)  # never shrinks
        assert pool.max_workers == 3


class TestResources:
    def test_object_resource_broadcast_once(self):
        table = {x: -x for x in range(30)}
        resource = shared_object(("table", id(table)), 0, table)
        before = pool_counters()
        out = map_chunked(
            _lookup_chunk,
            list(range(30)),
            workers=2,
            min_items_per_worker=1,
            resource=resource,
        )
        assert out == [-x for x in range(30)]
        assert _delta(before, "pool.broadcast_bytes") > 0
        # Same resource again: no new broadcast, no restart.
        map_chunked(
            _lookup_chunk,
            list(range(30)),
            workers=2,
            min_items_per_worker=1,
            resource=resource,
        )
        assert _delta(before, "pool.broadcast_bytes") == pool_counters()[
            "pool.broadcast_bytes"
        ] - before["pool.broadcast_bytes"]
        assert _delta(before, "pool.restarts") == 0

    def test_new_resource_after_start_restarts_once(self):
        pool = get_pool(2)
        before = pool_counters()
        map_chunked(_double_chunk, list(range(10)), workers=2, min_items_per_worker=1)
        assert _delta(before, "pool.starts") == 1
        late = shared_object(("late", 1), 0, {"x": 1})
        pool.ensure_resource(late)
        assert _delta(before, "pool.restarts") == 1
        assert pool.resource_value(late.key) == {"x": 1}

    def test_new_version_evicts_stale_ident(self):
        pool = WorkerPool(2)
        try:
            v0 = shared_object(("thing", 7), 0, "old")
            v1 = shared_object(("thing", 7), 1, "new")
            key0 = pool.ensure_resource(v0)
            key1 = pool.ensure_resource(v1)
            assert key0 != key1
            assert pool.resource_value(key1) == "new"
            with pytest.raises(KeyError):
                pool.resource_value(key0)
        finally:
            pool.shutdown()


class TestSharedSegments:
    def test_csr_segment_unlinked_on_shutdown(self):
        from repro.roadnet.sharedcsr import SharedCSR

        network = generate_grid_network(GridConfig(rows=5, cols=5, seed=1))
        pool = WorkerPool(2)
        resource = csr_resource(network, directed=False)
        key = pool.ensure_resource(resource)
        name = pool._published[key].name
        # Alive while registered...
        SharedCSR.attach(name).close()
        pool.shutdown()
        # ...gone after shutdown: the owner reclaimed it.
        with pytest.raises(FileNotFoundError):
            SharedCSR.attach(name)

    def test_map_flat_parity_and_batch_segment_cleanup(self, tmp_path):
        from array import array
        from multiprocessing import shared_memory

        network = generate_grid_network(GridConfig(rows=6, cols=6, seed=2))
        resource = csr_resource(network, directed=False)
        ids = network.node_ids()
        pairs = [(ids[i], ids[-1 - i]) for i in range(12)]
        flat = array("q", [n for pair in pairs for n in pair])
        boundaries = range(0, 2 * len(pairs) + 1, 2)
        serial = map_flat(
            _pair_distance_kernel, "q", flat, boundaries,
            workers=1, resource=resource,
        )
        before = pool_counters()
        fanned = map_flat(
            _pair_distance_kernel, "q", flat, boundaries,
            workers=3, min_items_per_worker=1, resource=resource,
        )
        assert serial == fanned
        assert _delta(before, "pool.shm_segments") >= 1
        shutdown_pool()
        # The transient batch segment and the published CSR are both
        # reclaimed; nothing of ours is left in /dev/shm.
        leaked = []
        for name in os.listdir("/dev/shm") if os.path.isdir("/dev/shm") else []:
            if name.startswith("psm_"):
                try:
                    segment = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                segment.close()
                leaked.append(name)
        assert leaked == []


class TestCrashRecovery:
    def test_crash_mid_batch_recovers_with_correct_results(self):
        items = list(range(8))
        before = pool_counters()
        out = map_chunked(
            _crash_in_worker_chunk, items, workers=2, min_items_per_worker=1
        )
        assert out == [x + 1 for x in items]
        assert _delta(before, "pool.crash_recoveries") >= 1
        assert _delta(before, "pool.serial_fallbacks") == 1

    def test_pool_usable_after_crash(self):
        map_chunked(
            _crash_in_worker_chunk, list(range(4)), workers=2, min_items_per_worker=1
        )
        out = map_chunked(
            _double_chunk, list(range(10)), workers=2, min_items_per_worker=1
        )
        assert out == [2 * x for x in range(10)]


class TestShutdown:
    def test_double_shutdown_is_safe(self):
        pool = get_pool(2)
        map_chunked(_double_chunk, list(range(6)), workers=2, min_items_per_worker=1)
        pool.shutdown()
        pool.shutdown()
        shutdown_pool()
        shutdown_pool()

    def test_pool_restarts_after_global_shutdown(self):
        first = get_pool(2)
        shutdown_pool()
        second = get_pool(2)
        assert second is not first
        out = map_chunked(
            _double_chunk, list(range(6)), workers=2, min_items_per_worker=1
        )
        assert out == [2 * x for x in range(6)]


class TestInlineFallbackPayloads:
    def test_run_inline_matches_worker_results(self):
        # The serial fallback decodes the same pre-pickled payloads the
        # workers would have: exercise both payload kinds directly.
        from array import array

        network = generate_grid_network(GridConfig(rows=5, cols=5, seed=4))
        pool = WorkerPool(2)
        try:
            resource = csr_resource(network, directed=False)
            key = pool.ensure_resource(resource)
            chunk_payload = pickle.dumps(
                ("chunk", _double_chunk, None, [1, 2, 3]),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            assert pool._run_inline(chunk_payload) == [2, 4, 6]

            ids = network.node_ids()
            flat = array("q", [ids[0], ids[-1], ids[1], ids[-2]])
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=len(flat) * 8)
            try:
                segment.buf[:] = flat.tobytes()
                span_payload = pickle.dumps(
                    ("span", _pair_distance_kernel, key, segment.name, "q", 0, 4),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                graph = network.csr(False)
                expected = [
                    graph.bidirectional_distance_counted(ids[0], ids[-1]),
                    graph.bidirectional_distance_counted(ids[1], ids[-2]),
                ]
                assert pool._run_inline(span_payload) == expected
            finally:
                segment.close()
                segment.unlink()
        finally:
            pool.shutdown()
