"""Cluster-quality and comparison metrics.

The quantities Figures 4 and 5 of the paper compare between flow-NEAT and
TraClus: representative-route lengths (average and maximum), resulting
cluster counts, and running times; plus coverage/continuity diagnostics
useful when exploring parameter settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.flow_cluster import FlowCluster
from ..core.refinement import TrajectoryCluster
from ..core.result import NEATResult
from ..traclus.traclus import TraClusResult


@dataclass(frozen=True, slots=True)
class RouteLengthSummary:
    """Average/maximum representative route lengths, in metres."""

    count: int
    average_m: float
    maximum_m: float


def flow_route_lengths(flows: Sequence[FlowCluster]) -> RouteLengthSummary:
    """Route-length summary of a set of flow clusters (Figure 5a/5b)."""
    lengths = [flow.route_length for flow in flows]
    return RouteLengthSummary(
        count=len(lengths),
        average_m=(sum(lengths) / len(lengths)) if lengths else 0.0,
        maximum_m=max(lengths, default=0.0),
    )


def traclus_route_lengths(result: TraClusResult) -> RouteLengthSummary:
    """Representative-trajectory length summary of a TraClus result."""
    lengths = result.representative_lengths()
    return RouteLengthSummary(
        count=len(lengths),
        average_m=(sum(lengths) / len(lengths)) if lengths else 0.0,
        maximum_m=max(lengths, default=0.0),
    )


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One row of the Figure 5 comparison (one dataset size)."""

    dataset: str
    points: int
    neat_avg_route_m: float
    neat_max_route_m: float
    neat_clusters: int
    neat_seconds: float
    traclus_avg_route_m: float
    traclus_max_route_m: float
    traclus_clusters: int
    traclus_seconds: float

    @property
    def speedup(self) -> float:
        """TraClus time divided by NEAT time."""
        return self.traclus_seconds / self.neat_seconds if self.neat_seconds else 0.0


def compare_results(
    dataset_name: str,
    points: int,
    neat: NEATResult,
    traclus: TraClusResult,
) -> ComparisonRow:
    """Assemble a Figure 5 row from a NEAT run and a TraClus run."""
    neat_summary = flow_route_lengths(neat.flows)
    traclus_summary = traclus_route_lengths(traclus)
    return ComparisonRow(
        dataset=dataset_name,
        points=points,
        neat_avg_route_m=neat_summary.average_m,
        neat_max_route_m=neat_summary.maximum_m,
        neat_clusters=len(neat.flows),
        neat_seconds=neat.timings.total,
        traclus_avg_route_m=traclus_summary.average_m,
        traclus_max_route_m=traclus_summary.maximum_m,
        traclus_clusters=traclus.cluster_count,
        traclus_seconds=traclus.total_seconds,
    )


# ----------------------------------------------------------------------
# Quality diagnostics
# ----------------------------------------------------------------------

def fragment_coverage(result: NEATResult) -> float:
    """Fraction of all t-fragments absorbed into kept flows.

    The remainder sits in noise flows (sub-``minCard`` traffic).
    """
    kept = sum(flow.density for flow in result.flows)
    noise = sum(flow.density for flow in result.noise_flows)
    total = kept + noise
    return kept / total if total else 0.0


def trajectory_coverage(result: NEATResult, trajectory_count: int) -> float:
    """Fraction of input trajectories participating in some kept flow."""
    if trajectory_count <= 0:
        return 0.0
    covered: set[int] = set()
    for flow in result.flows:
        covered.update(flow.participants)
    return len(covered) / trajectory_count


def flow_continuity(flow: FlowCluster) -> float:
    """Mean consecutive-member netflow, normalized by flow cardinality.

    1.0 means every trajectory in the flow traverses every consecutive
    segment pair — a perfectly continuous stream; values near 0 flag flows
    stitched together from barely-overlapping traffic.
    """
    members = flow.members
    if len(members) < 2 or flow.trajectory_cardinality == 0:
        return 1.0
    from ..core.base_cluster import netflow as base_netflow

    total = sum(
        base_netflow(members[i], members[i + 1]) for i in range(len(members) - 1)
    )
    return total / ((len(members) - 1) * flow.trajectory_cardinality)


def cluster_summary(clusters: Sequence[TrajectoryCluster]) -> list[dict[str, object]]:
    """Per-cluster digest rows for reports and examples."""
    return [
        {
            "cluster_id": cluster.cluster_id,
            "flows": len(cluster.flows),
            "segments": sum(len(flow) for flow in cluster.flows),
            "cardinality": cluster.trajectory_cardinality,
            "total_route_m": round(cluster.total_route_length, 1),
        }
        for cluster in clusters
    ]
