"""ALT (A*, Landmarks, Triangle inequality) distance acceleration.

Phase 3 of NEAT repeatedly computes node-pair network distances.  The
paper prunes *whole computations* with the Euclidean lower bound; this
module additionally accelerates the computations that remain: distances
to a few precomputed *landmark* nodes give, via the triangle inequality,
a lower bound ``|d(L, t) - d(L, s)| <= d(s, t)`` that is usually much
tighter than the Euclidean bound on road networks, and drives a goal-
directed A* (Goldberg & Harrelson, SODA'05).

Landmarks are chosen by farthest-point sampling, the standard heuristic.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from ..errors import UnknownNodeError
from .network import RoadNetwork
from .shortest_path import INFINITY


class LandmarkOracle:
    """Precomputed landmark distances and the ALT lower bound / search.

    Args:
        network: The road network (undirected view; Phase 3's setting).
        landmark_count: Number of landmarks to select.
        seed_node: Starting node for farthest-point sampling; defaults to
            the lowest node id for determinism.
    """

    def __init__(
        self,
        network: RoadNetwork,
        landmark_count: int = 8,
        seed_node: int | None = None,
    ) -> None:
        if landmark_count < 1:
            raise ValueError("landmark_count must be >= 1")
        self._network = network
        #: Mutation version of the network the tables were swept on;
        #: consumers memoizing an oracle (the engine's LLB tier) compare
        #: it against ``network.version`` to detect staleness.
        self.network_version = network.version
        node_ids = network.node_ids()
        if not node_ids:
            raise ValueError("cannot build landmarks on an empty network")
        start = seed_node if seed_node is not None else node_ids[0]
        if not network.has_node(start):
            raise UnknownNodeError(start)
        self.landmarks: list[int] = []
        self._tables: list[dict[int, float]] = []
        self._select_landmarks(start, min(landmark_count, len(node_ids)))

    def _select_landmarks(self, start: int, count: int) -> None:
        """Farthest-point sampling: each landmark maximizes the minimum
        distance to the ones already chosen."""
        current = start
        best_min: dict[int, float] = {}
        # Landmark tables are whole-graph single-source sweeps — the CSR
        # flat-array walker settles them several times faster than the
        # dict adjacency, with identical distances.
        graph = self._network.csr(directed=False)
        for _ in range(count):
            table = graph.single_source(current)
            self.landmarks.append(current)
            self._tables.append(table)
            for node, distance in table.items():
                previous = best_min.get(node, INFINITY)
                if distance < previous:
                    best_min[node] = distance
            # Next landmark: reachable node farthest from all landmarks.
            current = max(
                best_min, key=lambda n: (best_min[n], -n), default=current
            )
            if current in self.landmarks:
                break

    # ------------------------------------------------------------------
    def lower_bound(self, source: int, target: int) -> float:
        """ALT lower bound on ``d(source, target)``.

        The maximum over landmarks of ``|d(L, target) - d(L, source)|``;
        0.0 when neither side is covered (disconnected components).
        """
        best = 0.0
        for table in self._tables:
            ds = table.get(source)
            dt = table.get(target)
            if ds is None or dt is None:
                continue
            bound = abs(dt - ds)
            if bound > best:
                best = bound
        return best

    def landmark_table_rows(self, nodes: Sequence[int]) -> list[list[float]]:
        """Per node, its distance to every landmark (``nan`` = uncovered).

        The batch view of the tables behind :meth:`lower_bound`, used by
        the vectorized bound kernels: row ``i`` lists ``d(L, nodes[i])``
        for each landmark ``L`` in :attr:`landmarks` order, with
        ``math.nan`` marking nodes a landmark's sweep never reached.
        """
        import math

        return [
            [table.get(node, math.nan) for table in self._tables]
            for node in nodes
        ]

    def is_current(self) -> bool:
        """Whether the tables still describe the network (no mutations)."""
        return self.network_version == self._network.version

    def distance(self, source: int, target: int) -> float:
        """Exact distance via ALT-guided A* (undirected).

        Optimal because the ALT bound is a consistent heuristic.
        """
        if source == target:
            return 0.0
        network = self._network
        if not network.has_node(source):
            raise UnknownNodeError(source)
        if not network.has_node(target):
            raise UnknownNodeError(target)
        dist: dict[int, float] = {source: 0.0}
        done: set[int] = set()
        heap: list[tuple[float, float, int]] = [
            (self.lower_bound(source, target), 0.0, source)
        ]
        while heap:
            _f, d, node = heapq.heappop(heap)
            if node in done:
                continue
            if node == target:
                return d
            done.add(node)
            for neighbor, _sid, length in network.undirected_neighbors(node):
                nd = d + length
                if nd < dist.get(neighbor, INFINITY):
                    dist[neighbor] = nd
                    heapq.heappush(
                        heap, (nd + self.lower_bound(neighbor, target), nd, neighbor)
                    )
        return INFINITY

    def settled_estimate(self, source: int, target: int) -> int:
        """Nodes settled by the ALT search (for the acceleration bench)."""
        if source == target:
            return 0
        network = self._network
        dist: dict[int, float] = {source: 0.0}
        done: set[int] = set()
        heap: list[tuple[float, float, int]] = [
            (self.lower_bound(source, target), 0.0, source)
        ]
        while heap:
            _f, d, node = heapq.heappop(heap)
            if node in done:
                continue
            if node == target:
                return len(done)
            done.add(node)
            for neighbor, _sid, length in network.undirected_neighbors(node):
                nd = d + length
                if nd < dist.get(neighbor, INFINITY):
                    dist[neighbor] = nd
                    heapq.heappush(
                        heap, (nd + self.lower_bound(neighbor, target), nd, neighbor)
                    )
        return len(done)


def _source_tables_kernel(
    graph, view, lo: int, hi: int
) -> list[list[float]]:
    """Span kernel: per source in ``view[lo:hi]``, distances to targets.

    The batch is flat-encoded as ``[n_targets, targets..., sources...]``,
    so every span kernel reads the shared target header at offset 0 and
    walks only its own source slots.  ``graph`` is the worker's zero-copy
    attached CSR snapshot.
    """
    n_targets = view[0]
    targets = tuple(view[1:1 + n_targets])
    rows: list[list[float]] = []
    for i in range(lo, hi):
        table = graph.single_source(view[i])
        rows.append([table.get(target, INFINITY) for target in targets])
    return rows


def many_to_many_distances(
    network: RoadNetwork,
    sources: Sequence[int],
    targets: Sequence[int],
    workers: int | None = 1,
) -> dict[tuple[int, int], float]:
    """All source-target distances via one Dijkstra per source.

    The bulk primitive behind batched Phase 3 refreshes: with ``S``
    sources it costs ``S`` single-source searches (over the flat-array
    CSR snapshot) instead of ``S*T`` point queries.  Parallel sweeps
    attach the network's shared-memory CSR snapshot zero-copy and read
    their source ids out of a span descriptor — no graph pickling.

    Args:
        workers: Fan the per-source sweeps out over a process pool
            (``None``/``0`` = one per CPU, ``<=1`` serial); results are
            identical at any setting.
    """
    from array import array

    from ..parallel import csr_resource, map_flat

    source_list = list(sources)
    target_tuple = tuple(targets)
    if not source_list:
        return {}
    header = 1 + len(target_tuple)
    flat = array("q", [len(target_tuple), *target_tuple, *source_list])
    rows = map_flat(
        _source_tables_kernel,
        "q",
        flat,
        range(header, header + len(source_list) + 1),
        workers=workers,
        min_items_per_worker=4,
        resource=csr_resource(network, directed=False),
    )
    results: dict[tuple[int, int], float] = {}
    for source, row in zip(source_list, rows):
        for target, distance in zip(target_tuple, row):
            results[(source, target)] = distance
    return results
