"""Convenience builders for constructing road networks from plain data.

These helpers cover the common patterns tests and examples need: building a
network from coordinate/edge lists, and small canned topologies used in the
paper's figures (e.g. the star junction of Figure 1(b)).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .geometry import Point
from .network import RoadNetwork
from .segment import DEFAULT_SPEED_LIMIT


def network_from_edges(
    coordinates: Sequence[tuple[float, float]],
    edges: Iterable[tuple[int, int]],
    speed_limit: float = DEFAULT_SPEED_LIMIT,
    name: str = "road-network",
) -> RoadNetwork:
    """Build a network from a coordinate list and ``(u, v)`` index pairs.

    Node ids are assigned ``0..len(coordinates)-1`` in order; segment ids
    are assigned in edge order.  Segment lengths default to the Euclidean
    distance between endpoints.

    Example:
        >>> net = network_from_edges(
        ...     [(0, 0), (100, 0), (200, 0)], [(0, 1), (1, 2)]
        ... )
        >>> net.segment_count
        2
    """
    network = RoadNetwork(name=name)
    for x, y in coordinates:
        network.add_junction(Point(float(x), float(y)))
    for u, v in edges:
        network.add_segment(u, v, speed_limit=speed_limit)
    return network


def line_network(
    segment_count: int,
    segment_length: float = 100.0,
    speed_limit: float = DEFAULT_SPEED_LIMIT,
    name: str = "line",
) -> RoadNetwork:
    """A straight chain of ``segment_count`` equal-length segments."""
    if segment_count < 1:
        raise ValueError("segment_count must be >= 1")
    coordinates = [(i * segment_length, 0.0) for i in range(segment_count + 1)]
    edges = [(i, i + 1) for i in range(segment_count)]
    return network_from_edges(coordinates, edges, speed_limit=speed_limit, name=name)


def star_network(
    branch_count: int = 4,
    branch_length: float = 100.0,
    speed_limit: float = DEFAULT_SPEED_LIMIT,
    name: str = "star",
) -> RoadNetwork:
    """One central junction with ``branch_count`` radiating segments.

    This is the topology of Figure 1(b) in the paper (junction ``n2`` with
    segments to ``n1``, ``n3``, ``n4``, ``n5``) and is heavily used by unit
    tests of the f-neighborhood operators.
    """
    if branch_count < 1:
        raise ValueError("branch_count must be >= 1")
    import math

    coordinates = [(0.0, 0.0)]
    for i in range(branch_count):
        angle = 2.0 * math.pi * i / branch_count
        coordinates.append(
            (branch_length * math.cos(angle), branch_length * math.sin(angle))
        )
    edges = [(0, i + 1) for i in range(branch_count)]
    return network_from_edges(coordinates, edges, speed_limit=speed_limit, name=name)
