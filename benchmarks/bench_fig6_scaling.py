"""Figure 6: scaling of base-/flow-/opt-NEAT and the Phase 1/2 split.

(a) all three NEAT variants scale near-linearly with dataset size, with
the opt-NEAT curve close to flow-NEAT (Phase 3 is cheap thanks to ELB);
(b) Phase 1 (point-scanning) costs more than Phase 2 (base-cluster
merging) because it touches every location sample.
"""

from __future__ import annotations

from conftest import NEAT_COUNTS

from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.experiments.figures import DEFAULT_EPS, run_fig6
from repro.experiments.harness import result_metrics
from repro.experiments.workloads import build_suite


def bench_fig6_opt_neat_mia(benchmark, emit):
    """Time opt-NEAT on the largest MIA dataset; report the sweep."""
    network, datasets = build_suite("MIA", NEAT_COUNTS)
    neat = NEAT(network, NEATConfig(eps=DEFAULT_EPS["MIA"]))
    result = benchmark.pedantic(
        lambda: neat.run_opt(datasets[-1]), rounds=3, iterations=1
    )
    assert result.base_clusters

    fig = run_fig6("MIA", object_counts=NEAT_COUNTS)
    emit("fig6_scaling", fig.render(), metrics=result_metrics(result))
    _emit_chart(fig)

    # Shape assertion: Phase 1 dominates Phase 2 on the larger datasets
    # (Figure 6b), where fixed overheads no longer mask the point scan.
    large_rows = fig.rows[len(fig.rows) // 2:]
    assert sum(r[5] for r in large_rows) > sum(r[6] for r in large_rows)


def _emit_chart(fig) -> None:
    """Regenerate Figure 6(a)'s scaling plot as SVG."""
    from conftest import OUTPUT_DIR

    from repro.analysis.charts import LineChart

    chart = LineChart(
        "Figure 6(a): NEAT variant scaling (MIA)",
        x_label="points in dataset",
        y_label="seconds",
    )
    chart.add_series("base-NEAT", [(r[1], r[2]) for r in fig.rows])
    chart.add_series("flow-NEAT", [(r[1], r[3]) for r in fig.rows])
    chart.add_series("opt-NEAT", [(r[1], r[4]) for r in fig.rows])
    chart.save(OUTPUT_DIR / "fig6a_scaling.svg")


def bench_fig6_base_neat_mia(benchmark):
    """Phase 1 alone on the largest MIA dataset (the 6(b) numerator)."""
    network, datasets = build_suite("MIA", NEAT_COUNTS)
    neat = NEAT(network, NEATConfig(eps=DEFAULT_EPS["MIA"]))
    result = benchmark.pedantic(
        lambda: neat.run_base(datasets[-1]), rounds=3, iterations=1
    )
    assert result.base_clusters
