"""Tests for the distributed preprocessing tier (Section II-C)."""

from __future__ import annotations

import pytest

from repro.core.base_cluster import form_base_clusters
from repro.core.config import NEATConfig
from repro.core.pipeline import NEAT
from repro.distributed import (
    DataNode,
    NeatCoordinator,
    merge_base_clusters,
    shard_round_robin,
)

from conftest import trajectory_through


class TestSharding:
    def test_round_robin_balances(self, line3):
        trs = [trajectory_through(line3, i, [0]) for i in range(10)]
        shards = shard_round_robin(trs, 3)
        assert [len(s) for s in shards] == [4, 3, 3]

    def test_all_trajectories_assigned_once(self, line3):
        trs = [trajectory_through(line3, i, [0]) for i in range(7)]
        shards = shard_round_robin(trs, 2)
        flattened = [tr.trid for shard in shards for tr in shard]
        assert sorted(flattened) == list(range(7))

    def test_rejects_zero_shards(self, line3):
        with pytest.raises(ValueError):
            shard_round_robin([], 0)


class TestMerge:
    def test_merge_equals_centralized(self, small_workload):
        network, dataset = small_workload
        trajectories = list(dataset)
        shards = shard_round_robin(trajectories, 4)
        partials = [form_base_clusters(network, shard) for shard in shards]
        merged = merge_base_clusters(partials)
        central = form_base_clusters(network, trajectories)
        assert [(c.sid, c.density) for c in merged] == [
            (c.sid, c.density) for c in central
        ]
        for m, c in zip(merged, central):
            assert m.participants == c.participants

    def test_merge_is_order_independent(self, small_workload):
        network, dataset = small_workload
        shards = shard_round_robin(list(dataset), 3)
        partials = [form_base_clusters(network, shard) for shard in shards]
        forward = merge_base_clusters(partials)
        backward = merge_base_clusters(list(reversed(partials)))
        assert [(c.sid, c.density) for c in forward] == [
            (c.sid, c.density) for c in backward
        ]

    def test_merge_empty(self):
        assert merge_base_clusters([]) == []


class TestDataNode:
    def test_preprocess_local_shard(self, line3):
        node = DataNode(0, line3)
        node.ingest([trajectory_through(line3, i, [0, 1]) for i in range(3)])
        clusters = node.preprocess()
        assert {c.sid for c in clusters} == {0, 1}


class TestCoordinator:
    @pytest.mark.parametrize("node_count", [1, 2, 5])
    def test_distributed_equals_centralized(self, small_workload, node_count):
        network, dataset = small_workload
        config = NEATConfig(eps=500.0)
        central = NEAT(network, config).run_opt(dataset)
        distributed = NeatCoordinator(
            network, config, node_count=node_count
        ).run(list(dataset), mode="opt")
        assert [f.sids for f in distributed.flows] == [
            f.sids for f in central.flows
        ]
        assert [
            sorted(tuple(f.sids) for f in c.flows) for c in distributed.clusters
        ] == [sorted(tuple(f.sids) for f in c.flows) for c in central.clusters]

    def test_modes(self, small_workload):
        network, dataset = small_workload
        coordinator = NeatCoordinator(network, NEATConfig(eps=500.0), node_count=2)
        base = coordinator.run(list(dataset), mode="base")
        assert base.base_clusters and not base.flows
        flow = coordinator.run(list(dataset), mode="flow")
        assert flow.flows and not flow.clusters

    def test_invalid_mode(self, small_workload):
        network, dataset = small_workload
        with pytest.raises(ValueError):
            NeatCoordinator(network).run(list(dataset), mode="hyper")

    def test_rerun_clears_previous_shards(self, small_workload):
        network, dataset = small_workload
        coordinator = NeatCoordinator(network, NEATConfig(eps=500.0), node_count=2)
        first = coordinator.run(list(dataset), mode="base")
        second = coordinator.run(list(dataset), mode="base")
        total_first = sum(c.density for c in first.base_clusters)
        total_second = sum(c.density for c in second.base_clusters)
        assert total_first == total_second  # no double ingestion

    def test_rejects_zero_nodes(self, line3):
        with pytest.raises(ValueError):
            NeatCoordinator(line3, node_count=0)

    def test_rejects_invalid_quorum(self, line3):
        with pytest.raises(ValueError):
            NeatCoordinator(line3, min_quorum=1.5)

    def test_more_nodes_than_trajectories(self, line3):
        # Regression: with node_count > len(trajectories), round-robin
        # produces empty surplus shards; those must be skipped, not
        # dispatched (they used to be preprocessed as empty work units).
        trs = [trajectory_through(line3, i, [0, 1, 2]) for i in range(3)]
        config = NEATConfig(min_card=0, eps=500.0)
        central = NEAT(line3, config).run_opt(trs)
        coordinator = NeatCoordinator(line3, config, node_count=5)
        distributed = coordinator.run(trs, mode="opt")
        assert [f.sids for f in distributed.flows] == [
            f.sids for f in central.flows
        ]
        assert distributed.dropped_shards == []
        # Surplus nodes got no shard and stay healthy and idle.
        assert coordinator.node_health() == {i: True for i in range(5)}
        assert [len(node.trajectories) for node in coordinator.nodes] == [
            1, 1, 1, 0, 0
        ]

    def test_empty_input_with_many_nodes(self, line3):
        result = NeatCoordinator(
            line3, NEATConfig(min_card=0), node_count=4
        ).run([], mode="base")
        assert result.base_clusters == []
        assert result.dropped_shards == []


class TestAltEngineIntegration:
    def test_neat_with_alt_engine_matches_plain(self, small_workload):
        from repro.roadnet.landmarks import LandmarkOracle
        from repro.roadnet.shortest_path import ShortestPathEngine

        network, dataset = small_workload
        config = NEATConfig(eps=500.0)
        plain = NEAT(network, config).run_opt(dataset)
        alt_engine = ShortestPathEngine(
            network, oracle=LandmarkOracle(network, landmark_count=6)
        )
        accelerated = NEAT(network, config, engine=alt_engine).run_opt(dataset)
        assert [
            sorted(tuple(f.sids) for f in c.flows) for c in accelerated.clusters
        ] == [sorted(tuple(f.sids) for f in c.flows) for c in plain.clusters]

    def test_directed_engine_rejected(self, line3):
        from repro.roadnet.shortest_path import ShortestPathEngine

        with pytest.raises(ValueError):
            NEAT(line3, engine=ShortestPathEngine(line3, directed=True))

    def test_oracle_on_directed_engine_rejected(self, line3):
        from repro.roadnet.landmarks import LandmarkOracle
        from repro.roadnet.shortest_path import ShortestPathEngine

        with pytest.raises(ValueError):
            ShortestPathEngine(
                line3, directed=True, oracle=LandmarkOracle(line3, 2)
            )
